"""An order-fulfilment workload exercising cross-case synchronization.

One business object (an *order*) fans out into ``1 + N`` cases sharing one
object key: a parent case playing the ``order`` role and ``N`` line-item
cases playing the ``item`` role.  All cases execute the **same** process
model; two guards split the roles:

* ``is_item = T`` — the case is a line item: quality-check it
  (``item_ok``), then pick and pack it, or drop it when the check fails
  (a *cancelled* child);
* ``is_item = F`` — the case is the order itself: approve, then ship,
  then invoice.

The cross-case constraints (``ORDERS_OBJECTS_DSCL``) tie the roles
together:

* ``item.pack_item ->A order.ship_order`` — the order ships only after
  **every** declared line item resolved packing (packed or dropped), and
  the ship start time is exactly the latest such resolution;
* ``order.invoice_order ->1 order`` — one invoice per order, ever.

:func:`orders_plans` generates the parent/child case plans plus their
:class:`~repro.objects.model.ObjectBinding`\\ s, with knobs for
cancelling a subset of children (``cancel_every``) and for *withholding*
children (declare ``fan_out`` but submit fewer — the stranded-barrier /
under-sync scenario).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.pipeline import extract_all_dependencies
from repro.deps.cooperation import CooperationRegistry
from repro.deps.registry import DependencySet
from repro.dscl import parse
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess
from repro.objects.model import ObjectBinding, ObjectSpec, spec_from_program

#: The cross-case constraint declaration for the orders workload.
ORDERS_OBJECTS_DSCL = (
    "object order 1..* item;\n"
    "item.pack_item ->A order.ship_order;\n"
    "order.invoice_order ->1 order;\n"
)


def build_orders_process() -> BusinessProcess:
    """Construct the shared per-case process (roles split by ``is_item``)."""
    builder = (
        ProcessBuilder("OrderFulfilment")
        .receive("rec_case", writes=["order"])
        .guard("is_item", reads=["order"])
        # Item role: quality-check, then pick+pack or drop.
        .guard("item_ok", reads=["order"])
        .compute("pick_item", reads=["order"], writes=["picked"], duration=2.0)
        .compute("pack_item", reads=["picked"], writes=["result"], duration=1.0)
        .assign("drop_item", reads=["order"], writes=["result"])
        # Order role: approve -> ship -> invoice.
        .compute("approve_order", reads=["order"], writes=["approved"], duration=1.0)
        .compute("ship_order", reads=["approved"], writes=["shipped"], duration=2.0)
        .compute("invoice_order", reads=["shipped"], writes=["result"], duration=1.0)
        .reply("close_case", reads=["result"])
    )
    builder.branch(
        "item_ok",
        cases={"T": ["pick_item", "pack_item"], "F": ["drop_item"]},
        join="close_case",
    )
    builder.branch(
        "is_item",
        cases={
            "T": ["item_ok"],
            "F": ["approve_order", "ship_order", "invoice_order"],
        },
        join="close_case",
    )
    return builder.build()


def orders_dependency_set() -> DependencySet:
    """All single-case dependencies of the order-fulfilment process."""
    process = build_orders_process()
    return extract_all_dependencies(
        process, cooperation=CooperationRegistry(process).dependencies
    )


def orders_object_spec() -> ObjectSpec:
    """The validated cross-case spec parsed from :data:`ORDERS_OBJECTS_DSCL`."""
    return spec_from_program(parse(ORDERS_OBJECTS_DSCL))


def orders_plans(
    orders: int,
    fan_out: int,
    cancel_every: int = 0,
    withhold: int = 0,
) -> Tuple[Dict[str, Dict[str, str]], Dict[str, ObjectBinding]]:
    """Case plans and object bindings for ``orders`` objects.

    Each object ``ord-%04d`` gets one parent case (``…-order``, declaring
    ``fan_out`` children) and ``fan_out - withhold`` child cases
    (``…-item-%03d``).  ``cancel_every=k`` makes every k-th item fail its
    quality check (a cancelled child — still resolves the barrier);
    ``withhold=w`` submits ``w`` fewer children than declared, which
    strands the order's ship barrier.
    """
    if fan_out < 0 or withhold < 0 or withhold > fan_out:
        raise ValueError("need 0 <= withhold <= fan_out")
    plans: Dict[str, Dict[str, str]] = {}
    bindings: Dict[str, ObjectBinding] = {}
    for index in range(orders):
        key = "ord-%04d" % index
        parent = "%s-order" % key
        plans[parent] = {"is_item": "F", "item_ok": "T"}
        bindings[parent] = ObjectBinding(
            object_key=key, role="order", children=fan_out
        )
        for item in range(fan_out - withhold):
            child = "%s-item-%03d" % (key, item)
            cancelled = bool(cancel_every) and (item + 1) % cancel_every == 0
            plans[child] = {"is_item": "T", "item_ok": "F" if cancelled else "T"}
            bindings[child] = ObjectBinding(object_key=key, role="item")
    return plans, bindings


def orders_case_order(plans: Dict[str, Dict[str, str]]) -> List[str]:
    """Submission order interleaving parents before their items (sorted)."""
    return sorted(plans)
