"""An insurance claim-handling process with *nested* conditionals.

Exercises the machinery the Purchasing example does not: a branch inside a
branch.  The outer guard decides whether the claim is valid at all; within
valid claims, an inner guard splits fast-track settlement from full
investigation.  Nested guards produce *transitive* execution guards
(``payFastTrack`` runs only when ``if_valid = T`` **and**
``if_severity = T``), which drive the guard-aware closure semantics, the
Petri skip-propagation (a skipped inner guard skips its dependents), and
the scheduler's fate resolution.
"""

from __future__ import annotations

from repro.core.pipeline import extract_all_dependencies
from repro.deps.cooperation import CooperationRegistry
from repro.deps.registry import DependencySet
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess

#: Activities of the inner (severity) branch.
FAST_TRACK = ("payFastTrack",)
INVESTIGATION = ("invInspector_claim", "recInspector_report", "settleClaim")


def build_insurance_process() -> BusinessProcess:
    """Construct the claim-handling process."""
    builder = (
        ProcessBuilder("InsuranceClaims")
        .service("Registry")
        .service("Inspector", asynchronous=True, latency=2.0)
        .service("Archive")
        .receive("recClient_claim", writes=["claim"])
        .compute("validate", reads=["claim"], writes=["validity"])
        .guard("if_valid", reads=["validity"])
        # Valid claims: register, then triage severity.
        .invoke("invRegistry_claim", service="Registry", reads=["claim"])
        .compute("triage", reads=["claim"], writes=["severity"])
        .guard("if_severity", reads=["severity"])
        # Inner T branch: low severity -> fast-track payment.
        .assign("payFastTrack", reads=["claim"], writes=["payment"])
        # Inner F branch: full investigation through the Inspector service.
        .invoke("invInspector_claim", service="Inspector", reads=["claim"])
        .receive("recInspector_report", service="Inspector", writes=["report"])
        .assign("settleClaim", reads=["report"], writes=["payment"])
        # Invalid claims.
        .assign("rejectClaim", writes=["payment"])
        # Archival and reply happen for every claim.
        .invoke("invArchive_outcome", service="Archive", reads=["payment"])
        .reply("replyClient_outcome", reads=["payment"])
    )
    builder.branch(
        "if_severity",
        cases={"T": list(FAST_TRACK), "F": list(INVESTIGATION)},
        join="invArchive_outcome",
    )
    builder.branch(
        "if_valid",
        cases={
            # The inner guard and its shared prelude belong to the outer
            # T case; inner-branch members are governed by the inner guard
            # only (their outer condition is transitive).
            "T": ["invRegistry_claim", "triage", "if_severity"],
            "F": ["rejectClaim"],
        },
        join="replyClient_outcome",
    )
    return builder.build()


def insurance_cooperation(process: BusinessProcess) -> CooperationRegistry:
    """The archive must be written before the customer hears back."""
    registry = CooperationRegistry(process)
    registry.require_before(
        "invArchive_outcome",
        "replyClient_outcome",
        rationale="regulatory: the outcome must be archived before disclosure",
        analyst="claims compliance",
    )
    return registry


def insurance_dependency_set() -> DependencySet:
    """All dependencies of the claim-handling process."""
    process = build_insurance_process()
    return extract_all_dependencies(
        process, cooperation=insurance_cooperation(process).dependencies
    )
