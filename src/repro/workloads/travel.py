"""A travel-booking process — an extra realistic workload.

Three independent reservation services (flight, hotel, car) are invoked
concurrently — the canonical dataflow fan-out the paper's approach extracts
automatically — then a state-aware payment service authorizes and captures
in sequence, and the consolidated confirmation is returned.  Cooperation
dependencies require every reservation to be confirmed before the reply,
partly duplicating the data dependencies (redundancy the minimizer removes).
"""

from __future__ import annotations

from repro.core.pipeline import extract_all_dependencies
from repro.deps.cooperation import CooperationRegistry
from repro.deps.registry import DependencySet
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess

#: The activities whose completion the reply must wait for.
CONFIRMATIONS = ("recFlight_conf", "recHotel_conf", "recCar_conf")


def build_travel_process() -> BusinessProcess:
    """Construct the travel-booking process."""
    return (
        ProcessBuilder("TravelBooking")
        .service("Flight", asynchronous=True)
        .service("Hotel", asynchronous=True)
        .service("Car", asynchronous=True)
        .service("Payment", ports=["Pay1", "Pay2"], asynchronous=True, sequential=True)
        .receive("recClient_trip", writes=["trip"])
        .invoke("invFlight_trip", service="Flight", reads=["trip"])
        .receive("recFlight_conf", service="Flight", writes=["fconf"])
        .invoke("invHotel_trip", service="Hotel", reads=["trip"])
        .receive("recHotel_conf", service="Hotel", writes=["hconf"])
        .invoke("invCar_trip", service="Car", reads=["trip"])
        .receive("recCar_conf", service="Car", writes=["cconf"])
        .invoke("invPay_auth", service="Payment", port="Pay1", reads=["trip"])
        .compute("assembleTotal", reads=["fconf", "hconf", "cconf"], writes=["total"])
        .invoke("invPay_capture", service="Payment", port="Pay2", reads=["total"])
        .receive("recPay_receipt", service="Payment", writes=["receipt"])
        .reply("replyClient_conf", reads=["receipt"])
        .build()
    )


def travel_cooperation(process: BusinessProcess) -> CooperationRegistry:
    """Every reservation must be confirmed before the reply."""
    registry = CooperationRegistry(process)
    registry.require_all_before(
        CONFIRMATIONS,
        "replyClient_conf",
        rationale="no confirmation may be returned while any reservation "
        "is still pending",
    )
    return registry


def travel_dependency_set() -> DependencySet:
    """All dependencies of the travel-booking process."""
    process = build_travel_process()
    return extract_all_dependencies(
        process, cooperation=travel_cooperation(process).dependencies
    )
