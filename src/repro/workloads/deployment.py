"""The Deployment process of Figure 6.

After receiving a deployment configuration, the process invokes the Deploy
service twice: once with the middleware configuration and once with the
application configuration.  There is neither a data nor a control
dependency between the two invocations, yet the middleware installation
must precede the application installation (it creates the directory
structure the application lands in — the Tomcat ``$Tomcat/webapp``
example).  That implicit happen-before is exactly what a *cooperation*
dependency captures.
"""

from __future__ import annotations

from repro.core.pipeline import extract_all_dependencies
from repro.deps.cooperation import CooperationRegistry
from repro.deps.registry import DependencySet
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess


def build_deployment_process() -> BusinessProcess:
    """Construct the Deployment process model of Figure 6."""
    return (
        ProcessBuilder("Deployment")
        .service("Deploy", ports=["Deploy1", "Deploy2"])
        .receive("recClient_Config", writes=["config"])
        .assign("extract_midConfig", reads=["config"], writes=["midConfig"])
        .assign("extract_appConfig", reads=["config"], writes=["appConfig"])
        .invoke("invDeploy_midConfig", service="Deploy", port="Deploy1", reads=["midConfig"])
        .invoke("invDeploy_appConfig", service="Deploy", port="Deploy2", reads=["appConfig"])
        .build()
    )


def deployment_cooperation(process: BusinessProcess) -> CooperationRegistry:
    """The implicit middleware-before-application constraint."""
    registry = CooperationRegistry(process)
    registry.require_before(
        "invDeploy_midConfig",
        "invDeploy_appConfig",
        rationale="middleware install creates the directory structure "
        "the application package is installed into",
        analyst="deployment engineer",
    )
    return registry


def deployment_dependency_set() -> DependencySet:
    """All dependencies of the Deployment process."""
    process = build_deployment_process()
    return extract_all_dependencies(
        process, cooperation=deployment_cooperation(process).dependencies
    )
