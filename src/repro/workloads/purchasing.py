"""The Purchasing process — the paper's running example (Section 2).

The process receives a purchase order, authorizes it against the Credit
service and, on success, runs three synchronized subprocesses against the
Purchase, Ship and Production services before replying with the invoice;
on failure it replies with a failure invoice.

Reference values reproduced by the test suite and benchmarks:

* Table 1 — 40 dependencies: 9 data, 10 control, 6 cooperation, 15 service;
* Table 2 — 17 constraints in the minimal set, 23 removed;
* Figure 8 — the six translated service constraints;
* Figure 9 — the 17-edge minimal graph.
"""

from __future__ import annotations

from typing import List

from repro.deps.cooperation import CooperationRegistry
from repro.deps.registry import DependencySet
from repro.deps.types import Dependency
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess

#: Activities executed only when credit authorization succeeds.
SUCCESS_BRANCH = (
    "invPurchase_po",
    "invPurchase_si",
    "recPurchase_oi",
    "invShip_po",
    "recShip_si",
    "recShip_ss",
    "invProduction_po",
    "invProduction_ss",
)

#: Activities whose completion the invoice reply must wait for (the
#: cooperation requirement that Ship and Production subprocesses finish).
REPLY_PREREQUISITES = (
    "recPurchase_oi",
    "invShip_po",
    "recShip_si",
    "recShip_ss",
    "invProduction_po",
    "invProduction_ss",
)


def build_purchasing_process() -> BusinessProcess:
    """Construct the Purchasing process model of Figure 1."""
    builder = (
        ProcessBuilder("Purchasing")
        # Remote services (Section 2): Credit and Ship are single-port
        # asynchronous services; Purchase is state-aware (sequential ports)
        # and asynchronous; Production is invoked at two ports and never
        # calls back.
        .service("Credit", asynchronous=True)
        .service(
            "Purchase",
            ports=["Purchase1", "Purchase2"],
            asynchronous=True,
            sequential=True,
        )
        .service("Ship", asynchronous=True)
        .service("Production", ports=["Production1", "Production2"])
        # Order intake and credit authorization.
        .receive("recClient_po", writes=["po"])
        .invoke("invCredit_po", service="Credit", reads=["po"])
        .receive("recCredit_au", service="Credit", writes=["au"])
        .guard("if_au", reads=["au"])
        # PurchaseSubprocess.
        .invoke("invPurchase_po", service="Purchase", port="Purchase1", reads=["po"])
        .invoke("invPurchase_si", service="Purchase", port="Purchase2", reads=["si"])
        .receive("recPurchase_oi", service="Purchase", writes=["oi"])
        # ShipSubprocess.
        .invoke("invShip_po", service="Ship", reads=["po"])
        .receive("recShip_si", service="Ship", writes=["si"])
        .receive("recShip_ss", service="Ship", writes=["ss"])
        # ProductionSubprocess.
        .invoke("invProduction_po", service="Production", port="Production1", reads=["po"])
        .invoke("invProduction_ss", service="Production", port="Production2", reads=["ss"])
        # Failure path and reply.
        .assign("set_oi", writes=["oi"])
        .reply("replyClient_oi", reads=["oi"])
    )
    builder.branch(
        "if_au",
        cases={"T": list(SUCCESS_BRANCH), "F": ["set_oi"]},
        join="replyClient_oi",
    )
    return builder.build()


def purchasing_cooperation_dependencies(
    process: BusinessProcess,
) -> List[Dependency]:
    """The six cooperation dependencies of Table 1.

    The process analyst requires the invoice to be returned only after both
    the Ship and Production subprocesses have finished — a guarantee that a
    customer who receives an invoice will receive her product.
    """
    registry = CooperationRegistry(process)
    registry.require_all_before(
        REPLY_PREREQUISITES,
        "replyClient_oi",
        rationale="invoice only after Ship and Production subprocesses finish",
    )
    return registry.dependencies


def purchasing_dependency_set() -> DependencySet:
    """The complete Table 1 dependency set (data + control + cooperation +
    service), extracted from the process model."""
    from repro.core.pipeline import extract_all_dependencies

    process = build_purchasing_process()
    return extract_all_dependencies(
        process, cooperation=purchasing_cooperation_dependencies(process)
    )
