"""The toy process of Figures 3-4: branch ``a1``, activities ``a2..a7``.

``a1`` evaluates ``flag``; the T branch runs ``a2 -> a3 -> a4`` (with a
definition-use dependency on ``y`` between ``a2`` and ``a3``), the F branch
runs ``a5 -> a6``; ``a7`` joins both paths.  Because ``a7`` dominates every
path from ``a1`` to stop, it is *not* control dependent on ``a1`` — the
post-dominator subtlety Figure 4 illustrates.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.graphs import DirectedGraph
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess

#: Sentinel CFG nodes.
ENTRY = "start"
EXIT = "stop"


def build_figure3_process() -> BusinessProcess:
    """The declared-model form of the Figure 3 process."""
    builder = (
        ProcessBuilder("Figure3")
        .receive("a0", writes=["flag"])
        .guard("a1", reads=["flag"])
        .compute("a2", writes=["y"])
        .compute("a3", reads=["y"])
        .compute("a4")
        .compute("a5", writes=["z"])
        .compute("a6", reads=["z"])
        .compute("a7")
    )
    builder.branch("a1", cases={"T": ["a2", "a3", "a4"], "F": ["a5", "a6"]}, join="a7")
    return builder.build()


def build_figure3_cfg() -> Tuple[DirectedGraph, Dict[Tuple[str, str], str]]:
    """The control-flow graph of Figure 3 plus its branch-edge labels.

    Returns ``(cfg, branch_labels)`` suitable for
    :func:`repro.deps.controlflow.extract_control_dependencies_from_cfg`.
    """
    cfg = DirectedGraph()
    edges = [
        (ENTRY, "a0"),
        ("a0", "a1"),
        ("a1", "a2"),
        ("a2", "a3"),
        ("a3", "a4"),
        ("a4", "a7"),
        ("a1", "a5"),
        ("a5", "a6"),
        ("a6", "a7"),
        ("a7", EXIT),
    ]
    for source, target in edges:
        cfg.add_edge(source, target)
    branch_labels = {("a1", "a2"): "T", ("a1", "a5"): "F"}
    return cfg, branch_labels
