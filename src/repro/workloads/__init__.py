"""Workloads: the paper's example processes plus synthetic generators.

* :mod:`repro.workloads.purchasing` — the Purchasing process (Figure 1,
  Table 1), the running example of the whole paper;
* :mod:`repro.workloads.deployment` — the Deployment process (Figure 6)
  with its implicit cooperation dependency;
* :mod:`repro.workloads.figure3` — the toy ``a1..a7`` process of Figures
  3-4 used to illustrate data/control dependency extraction;
* :mod:`repro.workloads.loan` — a loan-approval process (extra realistic
  workload in the style of the BPEL specification examples);
* :mod:`repro.workloads.travel` — a travel-booking process exercising
  multi-service fan-out with cooperation constraints;
* :mod:`repro.workloads.synthetic` — parameterized random process
  generator for scaling benchmarks.
"""

from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
    purchasing_dependency_set,
)
from repro.workloads.deployment import (
    build_deployment_process,
    deployment_dependency_set,
)
from repro.workloads.figure3 import build_figure3_cfg, build_figure3_process
from repro.workloads.insurance import (
    build_insurance_process,
    insurance_dependency_set,
)
from repro.workloads.loan import build_loan_process, loan_dependency_set
from repro.workloads.travel import build_travel_process, travel_dependency_set
from repro.workloads.synthetic import SyntheticSpec, generate_process

__all__ = [
    "SyntheticSpec",
    "build_deployment_process",
    "build_figure3_cfg",
    "build_figure3_process",
    "build_insurance_process",
    "build_loan_process",
    "build_purchasing_process",
    "build_travel_process",
    "deployment_dependency_set",
    "generate_process",
    "insurance_dependency_set",
    "loan_dependency_set",
    "purchasing_cooperation_dependencies",
    "purchasing_dependency_set",
    "travel_dependency_set",
]
