"""Workloads: the paper's example processes plus synthetic generators.

* :mod:`repro.workloads.purchasing` — the Purchasing process (Figure 1,
  Table 1), the running example of the whole paper;
* :mod:`repro.workloads.deployment` — the Deployment process (Figure 6)
  with its implicit cooperation dependency;
* :mod:`repro.workloads.figure3` — the toy ``a1..a7`` process of Figures
  3-4 used to illustrate data/control dependency extraction;
* :mod:`repro.workloads.loan` — a loan-approval process (extra realistic
  workload in the style of the BPEL specification examples);
* :mod:`repro.workloads.travel` — a travel-booking process exercising
  multi-service fan-out with cooperation constraints;
* :mod:`repro.workloads.orders` — an order-fulfilment workload where one
  order object fans out into many line-item cases tied together by
  cross-case synchronization (``repro.objects``);
* :mod:`repro.workloads.synthetic` — parameterized random process
  generator for scaling benchmarks.
"""

from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
    purchasing_dependency_set,
)
from repro.workloads.deployment import (
    build_deployment_process,
    deployment_dependency_set,
)
from repro.workloads.figure3 import build_figure3_cfg, build_figure3_process
from repro.workloads.insurance import (
    build_insurance_process,
    insurance_dependency_set,
)
from repro.workloads.loan import build_loan_process, loan_dependency_set
from repro.workloads.orders import (
    ORDERS_OBJECTS_DSCL,
    build_orders_process,
    orders_dependency_set,
    orders_object_spec,
    orders_plans,
)
from repro.workloads.travel import build_travel_process, travel_dependency_set
from repro.workloads.synthetic import SyntheticSpec, generate_process

__all__ = [
    "ORDERS_OBJECTS_DSCL",
    "SyntheticSpec",
    "build_deployment_process",
    "build_figure3_cfg",
    "build_figure3_process",
    "build_insurance_process",
    "build_loan_process",
    "build_orders_process",
    "build_purchasing_process",
    "build_travel_process",
    "deployment_dependency_set",
    "generate_process",
    "insurance_dependency_set",
    "loan_dependency_set",
    "orders_dependency_set",
    "orders_object_spec",
    "orders_plans",
    "purchasing_cooperation_dependencies",
    "purchasing_dependency_set",
    "travel_dependency_set",
]
