"""Figure 2: the Purchasing process coded in sequencing constructs.

This is the imperative baseline implementation (BPEL-style) the paper
criticizes: a top-level sequence, a switch on the authorization outcome,
and a flow of three subprocess sequences wired together by two links.  The
specification analysis reproduces the paper's diagnosis: the sequencing
``invProduction_po -> invProduction_ss`` is over-specified, while the
superficially similar ``invPurchase_po -> invPurchase_si`` is required by
the Purchase service dependency.
"""

from __future__ import annotations

from repro.constructs.ast import Act, Flow, Link, Sequence, Switch


def build_purchasing_constructs() -> Sequence:
    """The construct tree of Figure 2."""
    purchase_subprocess = Sequence(
        Act("invPurchase_po"),
        Act("invPurchase_si"),
        Act("recPurchase_oi"),
    )
    ship_subprocess = Sequence(
        Act("invShip_po"),
        Act("recShip_si"),
        Act("recShip_ss"),
    )
    production_subprocess = Sequence(
        Act("invProduction_po"),
        Act("invProduction_ss"),  # the over-specified sequencing
    )
    concurrent_subprocesses = Flow(
        purchase_subprocess,
        ship_subprocess,
        production_subprocess,
        links=[
            Link("recShip_si", "invPurchase_si"),
            Link("recShip_ss", "invProduction_ss"),
        ],
    )
    return Sequence(
        Act("recClient_po"),
        Act("invCredit_po"),
        Act("recCredit_au"),
        Switch(
            "if_au",
            cases={"T": concurrent_subprocesses, "F": Act("set_oi")},
        ),
        Act("replyClient_oi"),
    )
