"""Parameterized random process generator for scaling benchmarks.

Generates layered processes whose dependencies all point forward in
activity-index order, guaranteeing an acyclic merged constraint set.  The
generator controls the knobs the scaling benchmarks sweep: activity count,
dataflow density, number of remote services, number of conditional
branches, and the amount of (frequently redundant) cooperation
dependencies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.deps.registry import DependencySet
from repro.deps.types import Dependency, DependencyKind
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess


@dataclass(frozen=True)
class SyntheticSpec:
    """Generation parameters.

    ``n_activities``
        Number of internal activities (excluding service ports).
    ``n_services``
        Number of asynchronous single-port services (each consumes one
        invoke and one receive activity slot).
    ``data_density``
        Expected number of readers per written variable.
    ``n_branches``
        Number of disjoint conditional regions.
    ``branch_width``
        Activities per conditional region (split between T and F cases).
    ``coop_density``
        Expected number of cooperation dependencies, as a fraction of
        ``n_activities`` (values above ~0.5 produce many redundant ones).
    ``seed``
        RNG seed; generation is fully deterministic given the spec.
    """

    n_activities: int = 40
    n_services: int = 4
    data_density: float = 1.5
    n_branches: int = 2
    branch_width: int = 6
    coop_density: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        minimum = 2 + 2 * self.n_services + self.n_branches * (self.branch_width + 1)
        if self.n_activities < minimum:
            raise ValueError(
                "n_activities=%d too small for the requested structure "
                "(needs at least %d)" % (self.n_activities, minimum)
            )


def generate_process(
    spec: SyntheticSpec,
) -> Tuple[BusinessProcess, List[Dependency]]:
    """Generate ``(process, cooperation_dependencies)`` from ``spec``."""
    rng = random.Random(spec.seed)
    n = spec.n_activities
    builder = ProcessBuilder("Synthetic_%d_%d" % (n, spec.seed))

    # --- plan the layout -------------------------------------------------
    # Index 0 is always the intake receive; the last index always a reply.
    roles: Dict[int, Tuple[str, Optional[str]]] = {0: ("intake", None)}
    free = list(range(1, n - 1))
    rng.shuffle(free)

    # Disjoint branch windows: guard index followed by `branch_width` members.
    branch_plans: List[Tuple[int, List[int]]] = []
    used: Set[int] = {0, n - 1}
    window = spec.branch_width + 1
    cursor = 1
    for _ in range(spec.n_branches):
        # Find the next run of `window` consecutive unused indices.
        while cursor + window <= n - 1:
            span = list(range(cursor, cursor + window))
            if not any(index in used for index in span):
                break
            cursor += 1
        else:
            break
        guard_index, member_indices = span[0], span[1:]
        branch_plans.append((guard_index, member_indices))
        used.update(span)
        cursor += window

    # Service invoke/receive pairs in the remaining free slots.
    remaining = sorted(set(range(1, n - 1)) - used)
    service_pairs: List[Tuple[int, int]] = []
    for service_index in range(spec.n_services):
        if len(remaining) < 2:
            break
        invoke_position = remaining.pop(0)
        receive_position = remaining.pop(rng.randrange(len(remaining)))
        if invoke_position > receive_position:
            invoke_position, receive_position = receive_position, invoke_position
        service_pairs.append((invoke_position, receive_position))
        used.update((invoke_position, receive_position))

    for service_index, _pair in enumerate(service_pairs):
        builder.service("Svc%d" % service_index, asynchronous=True)

    # --- emit activities in index order -----------------------------------
    written: List[Tuple[int, str]] = []  # (writer index, variable)

    def pick_reads(position: int, expected: float = 1.0) -> List[str]:
        candidates = [variable for index, variable in written if index < position]
        if not candidates:
            return []
        count = min(len(candidates), max(0, int(round(rng.expovariate(1.0 / expected)))))
        count = max(count, 1) if rng.random() < 0.8 else count
        return rng.sample(candidates, min(count, len(candidates)))

    guard_indices = {guard for guard, _ in branch_plans}
    member_of: Dict[int, Tuple[int, str]] = {}
    for guard, members in branch_plans:
        for offset, member in enumerate(members):
            outcome = "T" if offset < (len(members) + 1) // 2 else "F"
            member_of[member] = (guard, outcome)
    invoke_at = {pair[0]: index for index, pair in enumerate(service_pairs)}
    receive_at = {pair[1]: index for index, pair in enumerate(service_pairs)}

    for position in range(n):
        name = "act%d" % position
        variable = "v%d" % position
        if position == 0:
            builder.receive(name, writes=[variable])
            written.append((position, variable))
        elif position == n - 1:
            builder.reply(name, reads=pick_reads(position, spec.data_density))
        elif position in guard_indices:
            reads = pick_reads(position) or []
            builder.guard(name, reads=reads)
        elif position in invoke_at:
            builder.invoke(
                name,
                service="Svc%d" % invoke_at[position],
                reads=pick_reads(position),
            )
        elif position in receive_at:
            builder.receive(
                name, service="Svc%d" % receive_at[position], writes=[variable]
            )
            written.append((position, variable))
        else:
            writes = [variable] if rng.random() < 0.7 else []
            builder.compute(name, reads=pick_reads(position, spec.data_density), writes=writes)
            if writes:
                written.append((position, variable))

    for guard, members in branch_plans:
        cases: Dict[str, List[str]] = {"T": [], "F": []}
        for member in members:
            _, outcome = member_of[member]
            cases[outcome].append("act%d" % member)
        join: Optional[str] = "act%d" % (n - 1)
        builder.branch("act%d" % guard, cases={k: v for k, v in cases.items() if v}, join=join)

    process = builder.build()

    # --- cooperation dependencies ------------------------------------------
    cooperation: List[Dependency] = []
    target_count = int(spec.coop_density * n)
    seen: Set[Tuple[str, str]] = set()
    attempts = 0
    while len(cooperation) < target_count and attempts < target_count * 20:
        attempts += 1
        source = rng.randrange(0, n - 1)
        target = rng.randrange(source + 1, n)
        pair = ("act%d" % source, "act%d" % target)
        if pair in seen:
            continue
        seen.add(pair)
        cooperation.append(
            Dependency(
                DependencyKind.COOPERATION,
                pair[0],
                pair[1],
                rationale="synthetic business constraint",
            )
        )
    return process, cooperation


def generate_dependency_set(spec: SyntheticSpec) -> Tuple[BusinessProcess, DependencySet]:
    """Generate a process and its full merged dependency set."""
    from repro.core.pipeline import extract_all_dependencies

    process, cooperation = generate_process(spec)
    return process, extract_all_dependencies(process, cooperation=cooperation)
