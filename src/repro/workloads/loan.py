"""A loan-approval process — an extra realistic workload.

Modeled after the classic loan-approval example of the BPEL specification,
extended with a state-aware risk-assessment service (its profile port must
be invoked before its assessment port, like the paper's Purchase service)
and a notification service whose completion gates the reply through a
cooperation dependency.
"""

from __future__ import annotations

from repro.core.pipeline import extract_all_dependencies
from repro.deps.cooperation import CooperationRegistry
from repro.deps.registry import DependencySet
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess

#: Activities on the approval (high-score) branch.
APPROVAL_BRANCH = (
    "invRisk_profile",
    "invRisk_score",
    "recRisk_assessment",
    "setApproved",
)


def build_loan_process() -> BusinessProcess:
    """Construct the loan-approval process."""
    builder = (
        ProcessBuilder("LoanApproval")
        .service("CreditBureau", asynchronous=True)
        .service(
            "RiskAssessor",
            ports=["Risk1", "Risk2"],
            asynchronous=True,
            sequential=True,
        )
        .service("Notifier")
        .receive("recClient_app", writes=["app"])
        .invoke("invBureau_app", service="CreditBureau", reads=["app"])
        .receive("recBureau_score", service="CreditBureau", writes=["score"])
        .guard("if_score", reads=["score"])
        .invoke("invRisk_profile", service="RiskAssessor", port="Risk1", reads=["app"])
        .invoke("invRisk_score", service="RiskAssessor", port="Risk2", reads=["score"])
        .receive("recRisk_assessment", service="RiskAssessor", writes=["assessment"])
        .assign("setApproved", reads=["assessment"], writes=["decision"])
        .assign("setRejected", writes=["decision"])
        .invoke("invNotify_decision", service="Notifier", reads=["decision"])
        .reply("replyClient_decision", reads=["decision"])
    )
    builder.branch(
        "if_score",
        cases={"T": list(APPROVAL_BRANCH), "F": ["setRejected"]},
        join="replyClient_decision",
    )
    return builder.build()


def loan_cooperation(process: BusinessProcess) -> CooperationRegistry:
    """The customer must be notified before the reply goes out."""
    registry = CooperationRegistry(process)
    registry.require_before(
        "invNotify_decision",
        "replyClient_decision",
        rationale="regulatory notification must be dispatched before the "
        "decision is returned to the applicant",
        analyst="compliance officer",
    )
    return registry


def loan_dependency_set() -> DependencySet:
    """All dependencies of the loan-approval process."""
    process = build_loan_process()
    return extract_all_dependencies(
        process, cooperation=loan_cooperation(process).dependencies
    )
