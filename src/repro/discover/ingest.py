"""Log ingestion for mining: format sniffing and journal tolerance.

The miner accepts every trace format the repository produces:

* JSONL / CSV / XES conformance logs (:mod:`repro.conformance.events`);
* runtime WAL journals (:mod:`repro.runtime.journal`) — a journal
  stripped of its ``{"rt": ...}`` control records *is* a conformance
  log, so ``dscweaver discover --log wal.jsonl`` mines a production run
  directly.

Journals are read in non-strict mode: a journal that survived a crash
and recovery may (by the write-ahead contract: record first, state
transition second) contain a re-journaled duplicate of the record that
was in flight when the process died.  Such duplicates are deduplicated
by ``(case, activity, lifecycle)`` on read — first occurrence wins —
so crash/recover journals replay and mine cleanly.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.conformance.events import Event, EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

#: Formats :func:`load_log` understands.
LOG_FORMATS = ("jsonl", "csv", "xes", "journal")


def sniff_format(path: str, sample: Optional[str] = None) -> str:
    """Guess a log's on-disk format from its extension and first record.

    ``.csv`` / ``.xes`` / ``.xml`` are decided by extension; anything
    else is JSON Lines, further classified as a runtime journal when the
    file contains an ``{"rt": ...}`` control record in its head — the
    marker no conformance event carries.
    """
    lowered = path.lower()
    if lowered.endswith(".csv"):
        return "csv"
    if lowered.endswith((".xes", ".xml")):
        return "xes"
    if sample is None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sample = handle.read(8192)
        except OSError:
            return "jsonl"
    for line in sample.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            return "jsonl"
        if isinstance(payload, dict) and "rt" in payload:
            return "journal"
        return "jsonl"
    return "jsonl"


def dedupe_events(events: Iterable[Event]) -> List[Event]:
    """Drop repeated ``(case, activity, lifecycle)`` records, keeping the
    first occurrence — the write-ahead copy — of each."""
    seen = set()
    unique: List[Event] = []
    for event in events:
        key = (event.case, event.activity, event.lifecycle)
        if key in seen:
            continue
        seen.add(key)
        unique.append(event)
    return unique


def log_from_journal(path: str) -> EventLog:
    """A runtime WAL journal as a deduplicated conformance event log."""
    from repro.runtime.journal import read_journal

    state = read_journal(path, strict=False)
    return EventLog(dedupe_events(state.event_stream))


def load_log(
    path: str,
    log_format: Optional[str] = None,
    obs: Optional["Observability"] = None,
) -> EventLog:
    """Read an event log of any supported format.

    ``log_format`` forces a parser; ``None`` sniffs via
    :func:`sniff_format`.  Raises ``ValueError`` for unknown formats and
    propagates ``OSError`` for unreadable paths.
    """
    if log_format is None:
        log_format = sniff_format(path)
    if log_format not in LOG_FORMATS:
        raise ValueError(
            "unknown log format %r (expected one of %s)"
            % (log_format, ", ".join(LOG_FORMATS))
        )
    tracer = obs.tracer if obs is not None else None
    if tracer is not None:
        with tracer.span("discover.ingest").set(format=log_format, path=path):
            return _load(path, log_format)
    return _load(path, log_format)


def _load(path: str, log_format: str) -> EventLog:
    if log_format == "journal":
        return log_from_journal(path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if log_format == "csv":
        return EventLog.from_csv(text)
    if log_format == "xes":
        return EventLog.from_xes(text)
    return EventLog.from_jsonl(text)
