"""Round-trip evaluation: simulate → mine → re-weave → compare → verify.

The acceptance loop for the miner (ROADMAP item 3): simulate a workload
whose dependency set is known, rediscover a set from the recorded log,
and score the rediscovery against the declaration.

**Why the jitter is shaped the way it is.**  A noise-free simulation is
*too* deterministic: with fixed durations, activities that merely happen
to be scheduled apart are ordered in every case, and the miner cannot
tell a timing coincidence from a constraint.  Uniform duration jitter is
not enough either — a coincidental pair whose per-case violation
probability is a few percent survives 200 cases intact often enough to
show up as a spurious edge.  The harness therefore uses a heavy-tailed
mixture: every activity's duration is scaled by ``25x`` with probability
``0.1`` (else uniformly in ``[0.5, 2.0]``), one designated *straggler*
activity per case is always scaled ``25x``-plus, and service latencies
are jittered the same way.  Under that load profile every
timing-coincidental ordering is violated in some case, while true
constraint edges — enforced by the scheduler regardless of timing —
remain always-ordered, so the always-ordered relation converges exactly
to the guard-aware closure of the reference set (validated over all five
bundled workloads across seeds).

Precision/recall are **entailment-level** (see the package docstring):
a candidate is a true positive iff the reference closure entails it, a
reference constraint is recovered iff the discovered closure entails it,
and the headline check is ``transitive_equivalent`` between the
rediscovered and declared constraint sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.conformance.adapter import events_from_trace
from repro.conformance.events import Event, EventLog
from repro.conformance.perturb import Perturbation, PerturbationError, perturb
from repro.core.closure import Semantics, closure_map
from repro.core.equivalence import fact_set_covers, transitive_equivalent
from repro.discover.mine import (
    REFERENCE_DIVERGENCE,
    Candidate,
    DiscoveryResult,
    MinerConfig,
    mine,
)
from repro.discover.stats import LogStatistics
from repro.errors import CycleError
from repro.lint.diagnostics import Diagnostic, Severity, constraint_location
from repro.scheduler.engine import ConstraintScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import WeaveResult
    from repro.model.process import BusinessProcess
    from repro.obs import Observability

#: Heavy-tail duration multiplier and its per-activity probability.
HEAVY_SCALE = 25.0
HEAVY_RATE = 0.1

#: Perturbation kinds applied by default at a given noise rate
#: (``dead_branch`` is excluded: it needs guard knowledge the evaluator
#: is pretending not to have).
DEFAULT_PERTURB_KINDS = (
    "swap",
    "drop_finish",
    "duplicate",
    "orphan_finish",
    "alien",
    "truncate",
)


class _StragglerScheduler(ConstraintScheduler):
    """A scheduler whose activity durations stretch per case.

    ``scales`` maps activity name → duration multiplier for the current
    case; unlisted activities (including synthetic ``__`` nodes) keep
    their declared duration.
    """

    scales: Dict[str, float] = {}

    def _duration(self, name: str) -> float:
        return super()._duration(name) * self.scales.get(name, 1.0)


def guard_outcome_plans(
    process: "BusinessProcess", count: int
) -> List[Dict[str, str]]:
    """``count`` outcome plans enumerating every guard-domain combination.

    The case index is read as a mixed-radix number over the guards'
    outcome domains (the ``dscweaver serve`` pattern), so any run of
    ``product(|domains|)`` consecutive cases exercises every branch
    combination.
    """
    guards = [a for a in process.activities if a.is_guard]
    names = [g.name for g in guards]
    domains = [sorted(g.outcomes) for g in guards]
    plans: List[Dict[str, str]] = []
    for index in range(count):
        plan: Dict[str, str] = {}
        shift = index
        for name, domain in zip(names, domains):
            plan[name] = domain[shift % len(domain)]
            shift //= len(domain)
        plans.append(plan)
    return plans


def simulate_log(
    process: "BusinessProcess",
    result: "WeaveResult",
    cases: int = 200,
    seed: int = 0,
    jitter: bool = True,
    case_prefix: str = "case",
) -> EventLog:
    """Simulate ``cases`` runs of the woven process into one event log.

    Guard outcomes are enumerated mixed-radix; with ``jitter`` (the
    default) durations and latencies follow the heavy-tailed straggler
    profile described in the module docstring.  Service latencies are
    restored to their declared values afterwards.
    """
    scheduler = _StragglerScheduler(
        process,
        result.minimal,
        fine_grained=result.fine_grained,
        exclusives=result.exclusives,
        strict_services=False,
    )
    rng = random.Random(seed)
    names = [activity.name for activity in process.activities]
    base_latency = {service.name: service.latency for service in process.services}
    events: List[Event] = []
    try:
        for index, plan in enumerate(guard_outcome_plans(process, cases)):
            if jitter:
                scales = {
                    name: (
                        HEAVY_SCALE
                        if rng.random() < HEAVY_RATE
                        else rng.uniform(0.5, 2.0)
                    )
                    for name in names
                }
                straggler = rng.choice(names)
                scales[straggler] = HEAVY_SCALE * rng.uniform(1.0, 2.0)
                scheduler.scales = scales
                for service in process.services:
                    service.latency = base_latency[service.name] * (
                        HEAVY_SCALE
                        if rng.random() < HEAVY_RATE
                        else rng.uniform(0.5, 2.0)
                    )
            run = scheduler.run(plan)
            events.extend(
                events_from_trace(run.trace, "%s-%05d" % (case_prefix, index))
            )
    finally:
        for service in process.services:
            service.latency = base_latency[service.name]
        scheduler.scales = {}
    return EventLog(events)


def perturb_log(
    log: EventLog,
    rate: float,
    seed: int = 0,
    constraints: Sequence = (),
    guards: Optional[Dict] = None,
    kinds: Optional[Sequence[str]] = None,
) -> Tuple[EventLog, List[Perturbation]]:
    """Perturb a ``rate`` fraction of the log's cases, one defect each.

    Each selected case gets one random perturbation kind (falling back
    through the kinds without an injection site in that case); cases are
    re-assembled in their original order.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("perturbation rate must be in [0.0, 1.0]")
    kind_pool = tuple(kinds) if kinds else DEFAULT_PERTURB_KINDS
    rng = random.Random(seed)
    case_order = list(dict.fromkeys(event.case for event in log.events))
    by_case: Dict[str, List[Event]] = {case: [] for case in case_order}
    for event in log.events:
        by_case[event.case].append(event)
    count = round(rate * len(case_order)) if rate else 0
    if rate and not count:
        count = 1  # a nonzero rate perturbs at least one case
    chosen = rng.sample(case_order, min(count, len(case_order)))
    applied: List[Perturbation] = []
    for case in chosen:
        shuffled = list(kind_pool)
        rng.shuffle(shuffled)
        for kind in shuffled:
            try:
                broken, perturbation = perturb(
                    EventLog(by_case[case]),
                    kind,
                    constraints=constraints,
                    guards=guards,
                    seed=rng.randrange(2**31),
                )
            except PerturbationError:
                continue
            by_case[case] = list(broken.events)
            applied.append(perturbation)
            break
    return (
        EventLog([event for case in case_order for event in by_case[case]]),
        applied,
    )


@dataclass
class RoundTripReport:
    """The scored outcome of one rediscovery round trip."""

    workload: Optional[str]
    cases: int
    events: int
    candidates: int
    #: entailment-level: candidates the reference closure entails.
    precision: float
    #: entailment-level: reference minimal constraints the discovered
    #: closure entails.
    recall: float
    #: ``transitive_equivalent(mined asc, reference asc)`` (guard-aware).
    equivalent: bool
    #: the rediscovered minimal program verified deadlock-free with no
    #: dead activities (``None`` when verification was skipped or the
    #: mined set did not weave).
    verify_ok: Optional[bool]
    minimal_mined: int
    minimal_reference: int
    spurious: Tuple[str, ...]
    missed: Tuple[str, ...]
    discovery: DiscoveryResult
    notes: Tuple[str, ...] = ()
    perturbations: Tuple[Perturbation, ...] = field(default=())

    def summary_lines(self) -> List[str]:
        lines = [
            "round trip%s: %d case(s), %d event(s), %d candidate(s)"
            % (
                " [%s]" % self.workload if self.workload else "",
                self.cases,
                self.events,
                self.candidates,
            ),
            "precision=%.3f recall=%.3f (entailment-level)"
            % (self.precision, self.recall),
            "transitively equivalent to reference: %s"
            % ("yes" if self.equivalent else "NO"),
            "minimal sets: mined=%d reference=%d"
            % (self.minimal_mined, self.minimal_reference),
        ]
        if self.verify_ok is not None:
            lines.append(
                "rediscovered program verification: %s"
                % ("proven" if self.verify_ok else "REFUTED")
            )
        lines.extend(self.notes)
        return lines


def round_trip(
    discovery: DiscoveryResult,
    process: "BusinessProcess",
    reference: "WeaveResult",
    verify: bool = True,
    obs: Optional["Observability"] = None,
) -> RoundTripReport:
    """Score a mined result against a reference weave of ``process``.

    Feeds the weavable candidates through merge → translate → minimize,
    compares closures in both directions, checks transitive equivalence
    and (optionally) verifies the rediscovered minimal program.  DIS005
    reference-divergence diagnostics are appended to
    ``discovery.diagnostics`` for every spurious candidate and missed
    reference constraint.
    """
    tracer = obs.tracer if obs is not None else None
    if tracer is not None:
        with tracer.span("discover.roundtrip"):
            report = _round_trip(discovery, process, reference, verify, obs)
    else:
        report = _round_trip(discovery, process, reference, verify, obs)
    if obs is not None:
        obs.metrics.gauge(
            "repro_discover_precision_ratio", "entailment-level precision"
        ).set(report.precision)
        obs.metrics.gauge(
            "repro_discover_recall_ratio", "entailment-level recall"
        ).set(report.recall)
    return report


def _round_trip(
    discovery: DiscoveryResult,
    process: "BusinessProcess",
    reference: "WeaveResult",
    verify: bool,
    obs: Optional["Observability"],
) -> RoundTripReport:
    from repro.core.pipeline import DSCWeaver

    reference_closure = closure_map(reference.asc, Semantics.GUARD_AWARE)
    notes: List[str] = []

    # Precision: is each candidate entailed by the reference closure?
    spurious: List[str] = []
    for candidate in discovery.candidates:
        entailed = fact_set_covers(
            reference_closure.get(candidate.source, frozenset()),
            {(candidate.target, candidate.annotation)},
        )
        if not entailed:
            spurious.append(str(candidate))
    total = len(discovery.candidates)
    precision = (total - len(spurious)) / total if total else 1.0

    # Re-weave the mined set (dropping candidates the process model
    # cannot express, e.g. pairs involving perturbation-injected alien
    # activities — they already count against precision above).
    weavable = [c for c in discovery.candidates if _weavable(process, c)]
    dropped = total - len(weavable)
    if dropped:
        notes.append(
            "%d candidate(s) not expressible against the process model "
            "were excluded from the re-weave" % dropped
        )
    mined_result = None
    try:
        mined_result = DSCWeaver().weave(
            process,
            DiscoveryResult(
                config=discovery.config,
                stats=discovery.stats,
                candidates=tuple(weavable),
                guards=discovery.guards,
            ).dependency_set(),
        )
    except CycleError as error:
        notes.append("mined set is cyclic and did not weave: %s" % error)

    # Recall: is each reference minimal constraint entailed by the
    # discovered closure?
    missed: List[str] = []
    reference_minimal = sorted(reference.minimal)
    if mined_result is not None:
        discovered_closure = closure_map(mined_result.asc, Semantics.GUARD_AWARE)
        for constraint in reference_minimal:
            recovered = fact_set_covers(
                discovered_closure.get(constraint.source, frozenset()),
                {(constraint.target, constraint.annotation)},
            )
            if not recovered:
                missed.append(str(constraint))
        recall = (
            (len(reference_minimal) - len(missed)) / len(reference_minimal)
            if reference_minimal
            else 1.0
        )
        equivalent = transitive_equivalent(
            mined_result.asc, reference.asc, Semantics.GUARD_AWARE
        )
        minimal_mined = len(mined_result.minimal)
    else:
        missed = [str(constraint) for constraint in reference_minimal]
        recall = 0.0
        equivalent = False
        minimal_mined = 0

    verify_ok: Optional[bool] = None
    if verify and mined_result is not None:
        from repro.programs import program_from_weave
        from repro.verify import verify_program

        program = program_from_weave(mined_result, which="minimal", target="runtime")
        verification = verify_program(program, obs=obs)
        verify_ok = verification.ok
        if not verify_ok:
            notes.extend(verification.summary_lines())

    for description in spurious:
        discovery.diagnostics.append(
            Diagnostic(
                code=REFERENCE_DIVERGENCE,
                severity=Severity.WARNING,
                message="spurious candidate not entailed by the reference "
                "set: %s" % description,
                location=constraint_location("discover", "reference"),
            )
        )
    for description in missed:
        discovery.diagnostics.append(
            Diagnostic(
                code=REFERENCE_DIVERGENCE,
                severity=Severity.WARNING,
                message="reference constraint not recovered from the log: %s"
                % description,
                location=constraint_location("reference", "discover"),
            )
        )

    return RoundTripReport(
        workload=getattr(process, "name", None),
        cases=discovery.stats.case_count,
        events=discovery.stats.event_count,
        candidates=total,
        precision=precision,
        recall=recall,
        equivalent=equivalent,
        verify_ok=verify_ok,
        minimal_mined=minimal_mined,
        minimal_reference=len(reference_minimal),
        spurious=tuple(spurious),
        missed=tuple(missed),
        discovery=discovery,
        notes=tuple(notes),
    )


def _weavable(process: "BusinessProcess", candidate: Candidate) -> bool:
    """Can the process model express this candidate as a dependency?"""
    if not (
        process.has_activity(candidate.source)
        and process.has_activity(candidate.target)
    ):
        return False
    if candidate.condition is not None:
        source = process.activity(candidate.source)
        return source.is_guard and candidate.condition in source.outcomes
    return True


def evaluate_workload(
    workload: str,
    cases: int = 200,
    seed: int = 0,
    perturb_rate: float = 0.0,
    perturb_kinds: Optional[Sequence[str]] = None,
    config: Optional[MinerConfig] = None,
    jitter: bool = True,
    verify: bool = True,
    obs: Optional["Observability"] = None,
) -> RoundTripReport:
    """The full harness for one bundled workload.

    Simulate ``cases`` runs (straggler jitter on by default), optionally
    perturb a fraction of them with PR 2 defect generators, mine the log
    and round-trip the result against the workload's declared set.
    """
    from repro.cli import _weave  # the canonical workload registry

    process, reference = _weave(workload)
    log = simulate_log(process, reference, cases=cases, seed=seed, jitter=jitter)
    perturbations: List[Perturbation] = []
    if perturb_rate:
        log, perturbations = perturb_log(
            log,
            perturb_rate,
            seed=seed,
            constraints=list(reference.minimal),
            guards=reference.minimal.guards,
            kinds=perturb_kinds,
        )
    stats = LogStatistics.from_log(log, obs=obs)
    discovery = mine(stats, config=config, obs=obs)
    report = round_trip(discovery, process, reference, verify=verify, obs=obs)
    report.workload = workload
    report.perturbations = tuple(perturbations)
    if perturbations:
        report.notes = report.notes + (
            "perturbed %d/%d case(s) (rate %.2f)"
            % (len(perturbations), cases, perturb_rate),
        )
    return report
