"""Streaming log statistics: the single pass behind dependency mining.

One :class:`LogStatistics` instance consumes events in arrival order —
cases may interleave freely, as they do in a multi-case runtime journal —
and folds each case into aggregate counters the moment it closes:

* **precedence** — for every ordered activity pair ``(a, b)`` that
  co-occurred in a case, whether ``a`` finished before ``b`` started
  (interval order, not just event order), whether the two intervals
  overlapped (concurrency evidence), and whether the hand-off was direct
  (``finish(a) == start(b)``);
* **guard conditioning** — for every activity ``x`` and every guard
  outcome ``(g, v)`` observed in the same case, whether ``x`` executed
  or was skipped, the raw material for mining →T/→F control dependencies.

Time ties are broken by log position: the scheduler emits finishes before
the starts they enable at the same instant, so ``finish(a) == start(b)``
with ``a``'s finish earlier in the log counts as ``a`` before ``b``.

The pass is tolerant of malformed input (orphan finishes, duplicate
lifecycles, unknown lifecycles); each tolerated defect is recorded in
``anomalies`` rather than raised, because mining exists precisely to
consume logs of unknown provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.conformance.events import FINISH, SKIP, START, Event, EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

#: Cap on stored anomaly descriptions; the count keeps incrementing.
MAX_ANOMALIES = 64

Pair = Tuple[str, str]


@dataclass
class _CaseState:
    """Per-case accumulator while the case is still open."""

    starts: Dict[str, Tuple[float, int]] = field(default_factory=dict)
    finishes: Dict[str, Tuple[float, int]] = field(default_factory=dict)
    skips: Set[str] = field(default_factory=set)
    outcomes: Dict[str, str] = field(default_factory=dict)


class LogStatistics:
    """Aggregate counters over a stream of conformance events.

    Feed events with :meth:`observe` (or build directly with
    :meth:`from_log` / :meth:`from_events`) and call :meth:`finish` once
    the stream ends; cases are folded into the pairwise counters when
    they close, so memory is O(activities² + open-case state), never
    O(events).
    """

    def __init__(self, obs: Optional["Observability"] = None) -> None:
        self.case_count = 0
        self.event_count = 0
        self.anomaly_count = 0
        self.anomalies: List[str] = []
        #: cases where ``a`` finished and ``b`` started.
        self.cooccur: Dict[Pair, int] = {}
        #: cases where ``a`` finished strictly before ``b`` started.
        self.ordered: Dict[Pair, int] = {}
        #: ordered cases where the hand-off was direct (equal timestamps).
        self.direct: Dict[Pair, int] = {}
        #: cases where the two execution intervals overlapped.
        self.overlap: Dict[Pair, int] = {}
        #: cases in which the activity started.
        self.activity_cases: Dict[str, int] = {}
        #: cases in which the activity was explicitly skipped.
        self.skip_cases: Dict[str, int] = {}
        #: cases in which guard ``g`` finished with outcome ``v``.
        self.outcome_cases: Dict[Pair, int] = {}
        #: cases in which ``x`` executed while guard ``g`` had outcome ``v``.
        self.exec_given: Dict[Tuple[str, str, str], int] = {}
        #: cases in which ``x`` was skipped while ``g`` had outcome ``v``.
        self.skip_given: Dict[Tuple[str, str, str], int] = {}
        #: every outcome each guard was observed to produce.
        self.outcomes_seen: Dict[str, Set[str]] = {}
        self._open: Dict[str, _CaseState] = {}
        self._position = 0
        self._obs = obs

    # -- streaming ---------------------------------------------------------

    def observe(self, event: Event) -> None:
        """Fold one event into the open state of its case."""
        self.event_count += 1
        position = self._position
        self._position += 1
        state = self._open.get(event.case)
        if state is None:
            state = self._open[event.case] = _CaseState()
        activity = event.activity
        if event.lifecycle == START:
            if activity in state.starts:
                self._anomaly(
                    "case %r: duplicate start of %r ignored" % (event.case, activity)
                )
                return
            state.starts[activity] = (event.time, position)
        elif event.lifecycle == FINISH:
            if activity in state.finishes:
                self._anomaly(
                    "case %r: duplicate finish of %r ignored" % (event.case, activity)
                )
                return
            if activity not in state.starts:
                # Orphan finish: treat as an instantaneous execution so the
                # activity still participates in precedence counting.
                self._anomaly(
                    "case %r: finish of %r without a start (treated as "
                    "instantaneous)" % (event.case, activity)
                )
                state.starts[activity] = (event.time, position)
            state.finishes[activity] = (event.time, position)
            if event.outcome is not None:
                state.outcomes[activity] = event.outcome
        elif event.lifecycle == SKIP:
            state.skips.add(activity)
        else:
            self._anomaly(
                "case %r: unknown lifecycle %r on %r ignored"
                % (event.case, event.lifecycle, activity)
            )

    def close_case(self, case: str) -> None:
        """Fold a case's open state into the aggregate counters."""
        state = self._open.pop(case, None)
        if state is None:
            return
        self.case_count += 1
        starts = state.starts
        finishes = state.finishes
        for activity in starts:
            self.activity_cases[activity] = self.activity_cases.get(activity, 0) + 1
        for activity in state.skips:
            self.skip_cases[activity] = self.skip_cases.get(activity, 0) + 1
        for guard, outcome in state.outcomes.items():
            self.outcome_cases[(guard, outcome)] = (
                self.outcome_cases.get((guard, outcome), 0) + 1
            )
            self.outcomes_seen.setdefault(guard, set()).add(outcome)
        # Precedence: interval order with log-position tie-break.
        for a, (finish_a, pos_finish_a) in finishes.items():
            for b, (start_b, pos_start_b) in starts.items():
                if a == b:
                    continue
                pair = (a, b)
                self.cooccur[pair] = self.cooccur.get(pair, 0) + 1
                if finish_a < start_b or (
                    finish_a == start_b and pos_finish_a < pos_start_b
                ):
                    self.ordered[pair] = self.ordered.get(pair, 0) + 1
                    if finish_a == start_b:
                        self.direct[pair] = self.direct.get(pair, 0) + 1
                elif b in finishes:
                    start_a = starts[a][0]
                    finish_b = finishes[b][0]
                    if start_a < finish_b and start_b < finish_a:
                        self.overlap[pair] = self.overlap.get(pair, 0) + 1
        # Guard conditioning.
        for guard, outcome in state.outcomes.items():
            for x in starts:
                if x != guard:
                    key = (x, guard, outcome)
                    self.exec_given[key] = self.exec_given.get(key, 0) + 1
            for x in state.skips:
                if x != guard:
                    key = (x, guard, outcome)
                    self.skip_given[key] = self.skip_given.get(key, 0) + 1

    def finish(self) -> "LogStatistics":
        """Close every still-open case and return ``self``."""
        for case in sorted(self._open):
            self.close_case(case)
        if self._obs is not None:
            metrics = self._obs.metrics
            metrics.counter(
                "repro_discover_events_total", "events folded into statistics"
            ).inc(self.event_count)
            metrics.counter(
                "repro_discover_cases_total", "cases folded into statistics"
            ).inc(self.case_count)
            if self.anomaly_count:
                metrics.counter(
                    "repro_discover_anomalies_total",
                    "malformed records tolerated during the statistics pass",
                ).inc(self.anomaly_count)
        return self

    # -- construction ------------------------------------------------------

    @classmethod
    def from_events(
        cls, events: Iterable[Event], obs: Optional["Observability"] = None
    ) -> "LogStatistics":
        stats = cls(obs=obs)
        tracer = obs.tracer if obs is not None else None
        if tracer is not None:
            with tracer.span("discover.stats"):
                for event in events:
                    stats.observe(event)
                return stats.finish()
        for event in events:
            stats.observe(event)
        return stats.finish()

    @classmethod
    def from_log(
        cls, log: EventLog, obs: Optional["Observability"] = None
    ) -> "LogStatistics":
        return cls.from_events(log.events, obs=obs)

    # -- queries -----------------------------------------------------------

    @property
    def activities(self) -> Tuple[str, ...]:
        """Every activity the log mentions (started or skipped), sorted."""
        names = set(self.activity_cases)
        names.update(self.skip_cases)
        return tuple(sorted(names))

    def confidence(self, a: str, b: str) -> float:
        """Fraction of ``(a, b)`` co-occurrences where ``a`` preceded ``b``."""
        together = self.cooccur.get((a, b), 0)
        if not together:
            return 0.0
        return self.ordered.get((a, b), 0) / together

    def _anomaly(self, description: str) -> None:
        self.anomaly_count += 1
        if len(self.anomalies) < MAX_ANOMALIES:
            self.anomalies.append(description)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "LogStatistics(cases=%d, events=%d, activities=%d)" % (
            self.case_count,
            self.event_count,
            len(self.activities),
        )
