"""DIS lint rules: discovery findings surfaced through the rule registry.

Mining findings are produced inline by :mod:`repro.discover.mine` and
:mod:`repro.discover.evaluate` (which see the statistics); the rules here
surface them through the shared lint engine so ``dscweaver discover``
gets code selection, baselines, severity gating and SARIF/JSON rendering
for free.  The ``dscweaver discover`` command attaches the
:class:`~repro.discover.mine.DiscoveryResult` to the lint context as
``context.discovery``.

==========  =========  ====================================================
Code        Severity   Meaning
==========  =========  ====================================================
``DIS001``  warning    ambiguous direction: a pair is sequentially ordered
                       but the direction is inconsistent across cases
``DIS002``  info       sub-threshold evidence: a confident candidate (or a
                       guard's discrimination) lacks supporting cases
``DIS003``  warning    contradictory conditioning: an activity both
                       executed and was skipped under one guard outcome
``DIS004``  warning    observed dependency inexpressible in DSCL (e.g. a
                       disjunctive guard over several outcomes)
``DIS005``  warning    reference divergence: a spurious candidate or a
                       declared constraint the log did not recover
==========  =========  ====================================================
"""

from __future__ import annotations

from typing import List

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintContext, rule


def _mined(context: LintContext, code: str) -> List[Diagnostic]:
    result = getattr(context, "discovery", None)
    if result is None:
        return []
    return [
        diagnostic
        for diagnostic in result.diagnostics
        if diagnostic.code == code
    ]


@rule(
    "DIS001",
    "ambiguous-direction",
    "an activity pair is sequential but its direction flips across cases",
    Severity.WARNING,
)
def ambiguous_direction(context: LintContext) -> List[Diagnostic]:
    return _mined(context, "DIS001")


@rule(
    "DIS002",
    "sub-threshold-evidence",
    "a confident mining signal lacks enough supporting cases to emit",
    Severity.INFO,
)
def sub_threshold_evidence(context: LintContext) -> List[Diagnostic]:
    return _mined(context, "DIS002")


@rule(
    "DIS003",
    "contradictory-conditioning",
    "an activity both executed and was skipped under one guard outcome",
    Severity.WARNING,
)
def contradictory_conditioning(context: LintContext) -> List[Diagnostic]:
    return _mined(context, "DIS003")


@rule(
    "DIS004",
    "inexpressible-dependency",
    "an observed dependency cannot be expressed as a DSCL condition",
    Severity.WARNING,
)
def inexpressible_dependency(context: LintContext) -> List[Diagnostic]:
    return _mined(context, "DIS004")


@rule(
    "DIS005",
    "reference-divergence",
    "the mined set diverges from the provided reference dependency set",
    Severity.WARNING,
)
def reference_divergence(context: LintContext) -> List[Diagnostic]:
    return _mined(context, "DIS005")
