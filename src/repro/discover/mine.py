"""Candidate mining: log statistics → scored dependency candidates.

Two mining passes over one :class:`~repro.discover.stats.LogStatistics`:

**Conditioning pass** (→T/→F control dependencies).  An activity ``x``
is conditioned on guard outcome ``(g, v)`` when, across every case where
``g`` produced an outcome, ``x`` executed (essentially) only under ``v``
and at least one alternative outcome was observed to discriminate
against.  Nested guards fall out naturally: an activity two branches
deep executes only under *both* ancestors' outcomes, so it is mined as
conditioned on each — exactly its transitive effective guard.

**Precedence pass** (→o cooperation dependencies).  A pair ``(a, b)``
with enough co-occurring cases becomes a candidate when ``a`` finished
before ``b`` started in at least ``min_confidence`` of them.  Pairs whose
target is conditioned on the source are emitted as control candidates by
the first pass instead.  Data/service/cooperation dependencies are
indistinguishable in a log projection — they all compile to the same
precedence constraint — so unconditional candidates are uniformly
categorized →o; the round-trip equivalence is on the compiled constraint
sets, where the distinction has already been erased.

Mining quality findings are emitted as DIS001-005 diagnostics (see
:mod:`repro.discover.rules`) rather than raised: a noisy log is data,
not an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.conditions import Cond, ConditionDomains
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.deps.registry import DependencySet
from repro.deps.types import Dependency, control, cooperation
from repro.discover.stats import LogStatistics
from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    activity_location,
    constraint_location,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

AMBIGUOUS_DIRECTION = "DIS001"
SUBTHRESHOLD_EVIDENCE = "DIS002"
CONTRADICTORY_CONDITIONING = "DIS003"
INEXPRESSIBLE_DEPENDENCY = "DIS004"
REFERENCE_DIVERGENCE = "DIS005"


@dataclass(frozen=True)
class MinerConfig:
    """Thresholds governing when statistics become candidates.

    ``min_support``
        Minimum number of supporting cases for a candidate (co-occurring
        cases for precedence, conditioned executions for control).
    ``min_confidence``
        Minimum fraction of supporting evidence that must agree with the
        candidate (ordered share of co-occurrences; dominant-outcome
        share of conditioned executions).
    ``noise``
        Tolerated contradiction rate, the primary robustness knob.  A
        precedence candidate may be violated in at most ``noise`` of its
        co-occurrences (``0.0``, the default, demands *always* ordered —
        the criterion that provably separates constraint edges from
        timing coincidences under the straggler-jitter harness), and an
        activity still counts as absent under a guard outcome when it
        executed in at most ``noise`` of that outcome's cases.  Mining a
        perturbed log, set this a little above the expected corruption
        share of an individual pair — e.g. ``0.03`` for the PR 2 defect
        generators at a 0.1 case-perturbation rate (guarded edges
        co-occur in only a fraction of the cases, so their relative
        violation share runs higher than the case rate suggests): true
        edges see only the odd corrupted case, while timing-coincidental
        pairs are violated far more often and stay excluded.
    ``ambiguity_floor``
        A pair whose combined two-direction ordering share reaches this
        value while neither single direction is confident is flagged
        DIS001 (sequential but direction-inconsistent).
    """

    min_support: int = 5
    min_confidence: float = 0.95
    noise: float = 0.0
    ambiguity_floor: float = 0.8

    def validate(self) -> None:
        if self.min_support < 1:
            raise ValueError("min_support must be >= 1")
        if not 0.5 < self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0.5, 1.0]")
        if not 0.0 <= self.noise < 0.5:
            raise ValueError("noise must be in [0.0, 0.5)")


@dataclass(frozen=True)
class Candidate:
    """One scored dependency candidate."""

    dependency: Dependency
    support: int
    confidence: float

    @property
    def source(self) -> str:
        return self.dependency.source

    @property
    def target(self) -> str:
        return self.dependency.target

    @property
    def condition(self) -> Optional[str]:
        return self.dependency.condition

    @property
    def annotation(self) -> FrozenSet[Cond]:
        """The constraint annotation this candidate compiles to."""
        if self.condition is None:
            return frozenset()
        return frozenset({Cond(self.source, self.condition)})

    def constraint(self) -> Constraint:
        return Constraint(self.source, self.target, self.condition)

    def __str__(self) -> str:
        return "%s %s %s  (support=%d confidence=%.3f)" % (
            self.dependency.source,
            self.dependency.kind.arrow
            + ("[%s]" % self.condition if self.condition else ""),
            self.dependency.target,
            self.support,
            self.confidence,
        )


@dataclass
class DiscoveryResult:
    """Everything one mining run produced.

    ``diagnostics`` is deliberately mutable: the round-trip evaluator
    appends DIS005 reference-divergence findings after scoring, and the
    CLI hands the enriched result to the lint engine as
    ``context.discovery``.
    """

    config: MinerConfig
    stats: LogStatistics
    candidates: Tuple[Candidate, ...]
    guards: Dict[str, FrozenSet[Cond]]
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def dependency_set(self) -> DependencySet:
        """The mined candidates as a :class:`DependencySet` for weaving."""
        return DependencySet(candidate.dependency for candidate in self.candidates)

    def constraint_set(self) -> SynchronizationConstraintSet:
        """A standalone constraint set over the observed activities.

        Usable without a process model: activities come from the log,
        guards from the mined conditions and domains from the observed
        outcomes — enough to minimize and lint a mined set directly.
        """
        domains = ConditionDomains()
        for guard, outcomes in sorted(self.stats.outcomes_seen.items()):
            domains.declare(guard, sorted(outcomes))
        return SynchronizationConstraintSet(
            self.stats.activities,
            constraints=[candidate.constraint() for candidate in self.candidates],
            guards=self.guards,
            domains=domains,
        )

    def counts(self) -> Dict[str, int]:
        conditional = sum(1 for c in self.candidates if c.condition is not None)
        return {
            "control": conditional,
            "cooperation": len(self.candidates) - conditional,
            "total": len(self.candidates),
        }

    def summary_lines(self) -> List[str]:
        counts = self.counts()
        stats = self.stats
        lines = [
            "mined %d case(s), %d event(s), %d activit(ies)"
            % (stats.case_count, stats.event_count, len(stats.activities)),
            "candidates: %d control (->T/->F), %d cooperation (->o)"
            % (counts["control"], counts["cooperation"]),
            "thresholds: support >= %d, confidence >= %.2f, noise <= %.2f"
            % (
                self.config.min_support,
                self.config.min_confidence,
                self.config.noise,
            ),
        ]
        if stats.anomaly_count:
            lines.append("tolerated %d malformed record(s)" % stats.anomaly_count)
        return lines


def mine(
    stats: LogStatistics,
    config: Optional[MinerConfig] = None,
    obs: Optional["Observability"] = None,
) -> DiscoveryResult:
    """Convert aggregate statistics into scored dependency candidates."""
    config = config or MinerConfig()
    config.validate()
    tracer = obs.tracer if obs is not None else None
    if tracer is not None:
        with tracer.span("discover.mine"):
            result = _mine(stats, config)
    else:
        result = _mine(stats, config)
    if obs is not None:
        counter = obs.metrics.counter(
            "repro_discover_candidates_total",
            "mined dependency candidates",
            labelnames=("kind",),
        )
        counts = result.counts()
        counter.labels(kind="control").inc(counts["control"])
        counter.labels(kind="cooperation").inc(counts["cooperation"])
        if result.diagnostics:
            findings = obs.metrics.counter(
                "repro_discover_findings_total",
                "DIS findings emitted while mining",
                labelnames=("code",),
            )
            for diagnostic in result.diagnostics:
                findings.labels(code=diagnostic.code).inc()
    return result


def _mine(stats: LogStatistics, config: MinerConfig) -> DiscoveryResult:
    diagnostics: List[Diagnostic] = []
    conditions, conditioned_pairs = _mine_conditions(stats, config, diagnostics)

    candidates: List[Candidate] = []
    for (x, guard, outcome), (support, confidence) in sorted(conditions.items()):
        candidates.append(
            Candidate(
                control(
                    guard,
                    x,
                    outcome,
                    rationale="executed only under %s=%s in %d case(s)"
                    % (guard, outcome, support),
                ),
                support=support,
                confidence=confidence,
            )
        )

    _mine_precedence(stats, config, conditioned_pairs, candidates, diagnostics)

    guards: Dict[str, FrozenSet[Cond]] = {}
    for (x, guard, outcome) in conditions:
        guards.setdefault(x, frozenset())
        guards[x] = guards[x] | {Cond(guard, outcome)}

    candidates.sort(key=lambda c: (c.source, c.target, c.condition or ""))
    return DiscoveryResult(
        config=config,
        stats=stats,
        candidates=tuple(candidates),
        guards=guards,
        diagnostics=diagnostics,
    )


def _mine_conditions(
    stats: LogStatistics,
    config: MinerConfig,
    diagnostics: List[Diagnostic],
) -> Tuple[Dict[Tuple[str, str, str], Tuple[int, float]], Set[Tuple[str, str]]]:
    """Guard-outcome conditioning: which activities execute only under
    which outcomes.  Returns the mined ``(x, g, v) -> (support,
    confidence)`` map and the ``(g, x)`` pairs it covers."""
    conditions: Dict[Tuple[str, str, str], Tuple[int, float]] = {}
    conditioned_pairs: Set[Tuple[str, str]] = set()

    single_outcome_guards = sorted(
        guard
        for guard, outcomes in stats.outcomes_seen.items()
        if len(outcomes) < 2
    )
    for guard in single_outcome_guards:
        (outcome,) = stats.outcomes_seen[guard]
        diagnostics.append(
            Diagnostic(
                code=SUBTHRESHOLD_EVIDENCE,
                severity=Severity.INFO,
                message=(
                    "guard %r only ever produced outcome %r in this log; "
                    "conditional dependencies on it cannot be discriminated"
                    % (guard, outcome)
                ),
                location=activity_location(guard),
                evidence=(
                    "%d case(s) with this outcome"
                    % stats.outcome_cases.get((guard, outcome), 0),
                ),
            )
        )

    for x in stats.activities:
        executed = stats.activity_cases.get(x, 0)
        if not executed:
            continue
        # DIS003 findings are buffered per activity: a skip under a
        # guard's dominant outcome is no contradiction when another
        # (nested) guard successfully conditions the activity — the
        # inner guard explains the skip.
        contradictions: List[Diagnostic] = []
        conditioned_on_any = False
        for guard, outcomes in sorted(stats.outcomes_seen.items()):
            if guard == x or len(outcomes) < 2:
                continue
            exec_by_outcome = {
                v: stats.exec_given.get((x, guard, v), 0) for v in sorted(outcomes)
            }
            total = sum(exec_by_outcome.values())
            if not total:
                continue
            positives = [
                v
                for v, count in exec_by_outcome.items()
                if count
                > config.noise * max(1, stats.outcome_cases.get((guard, v), 0))
            ]
            if not positives or len(positives) == len(outcomes):
                continue  # unconditional with respect to this guard
            if len(positives) > 1:
                diagnostics.append(
                    Diagnostic(
                        code=INEXPRESSIBLE_DEPENDENCY,
                        severity=Severity.WARNING,
                        message=(
                            "%r executes under outcomes {%s} of guard %r but "
                            "not all of {%s}; DSCL conditions are single "
                            "guard=outcome conjuncts, so this disjunctive "
                            "dependency is inexpressible"
                            % (
                                x,
                                ", ".join(positives),
                                guard,
                                ", ".join(sorted(outcomes)),
                            )
                        ),
                        location=activity_location(x),
                        related=(activity_location(guard),),
                        evidence=tuple(
                            "%s=%s: executed in %d/%d case(s)"
                            % (
                                guard,
                                v,
                                exec_by_outcome[v],
                                stats.outcome_cases.get((guard, v), 0),
                            )
                            for v in sorted(outcomes)
                        ),
                    )
                )
                continue
            (dominant,) = positives
            skipped_under_dominant = stats.skip_given.get((x, guard, dominant), 0)
            if skipped_under_dominant > config.noise * max(
                1, stats.outcome_cases.get((guard, dominant), 0)
            ):
                contradictions.append(
                    Diagnostic(
                        code=CONTRADICTORY_CONDITIONING,
                        severity=Severity.WARNING,
                        message=(
                            "%r both executed (%d case(s)) and was skipped "
                            "(%d case(s)) under %s=%s; the outcome does not "
                            "determine it"
                            % (
                                x,
                                exec_by_outcome[dominant],
                                skipped_under_dominant,
                                guard,
                                dominant,
                            )
                        ),
                        location=activity_location(x),
                        related=(activity_location(guard),),
                    )
                )
                continue
            support = exec_by_outcome[dominant]
            confidence = support / total
            if confidence < config.min_confidence:
                continue
            if support < config.min_support:
                diagnostics.append(
                    _subthreshold(
                        "conditioning of %r on %s=%s" % (x, guard, dominant),
                        constraint_location(guard, x, dominant),
                        support,
                        config.min_support,
                    )
                )
                continue
            # A conditional constraint also implies the guard finishes
            # before the dependent starts; demand the log agrees.
            if not _always_ordered(stats, config, guard, x):
                continue
            conditions[(x, guard, dominant)] = (support, confidence)
            conditioned_pairs.add((guard, x))
            conditioned_on_any = True
        if not conditioned_on_any:
            diagnostics.extend(contradictions)
    return conditions, conditioned_pairs


def _mine_precedence(
    stats: LogStatistics,
    config: MinerConfig,
    conditioned_pairs: Set[Tuple[str, str]],
    candidates: List[Candidate],
    diagnostics: List[Diagnostic],
) -> None:
    """Always-ordered pairs → unconditional →o candidates, plus the
    DIS001/DIS002 directional findings."""
    flagged_ambiguous: Set[Tuple[str, str]] = set()
    for (a, b), together in sorted(stats.cooccur.items()):
        ordered = stats.ordered.get((a, b), 0)
        confidence = ordered / together
        violations = together - ordered
        if violations <= config.noise * together and confidence >= config.min_confidence:
            if (a, b) in conditioned_pairs:
                continue  # emitted as a control candidate instead
            if together < config.min_support:
                diagnostics.append(
                    _subthreshold(
                        "precedence %s -> %s" % (a, b),
                        constraint_location(a, b),
                        together,
                        config.min_support,
                    )
                )
                continue
            candidates.append(
                Candidate(
                    cooperation(
                        a,
                        b,
                        rationale="finished before %s started in %d/%d case(s)"
                        % (b, ordered, together),
                    ),
                    support=together,
                    confidence=confidence,
                )
            )
            continue
        # Ambiguous direction: the pair is (almost) never concurrent —
        # the two directed ordering shares cover the co-occurrences —
        # yet neither direction alone clears the confidence bar.
        key = (min(a, b), max(a, b))
        if key in flagged_ambiguous or together < config.min_support:
            continue
        reverse = stats.ordered.get((b, a), 0) / max(
            1, stats.cooccur.get((b, a), 0)
        )
        if (
            reverse < config.min_confidence
            and confidence + reverse >= config.ambiguity_floor
            and min(confidence, reverse) >= 1.0 - config.ambiguity_floor
        ):
            flagged_ambiguous.add(key)
            diagnostics.append(
                Diagnostic(
                    code=AMBIGUOUS_DIRECTION,
                    severity=Severity.WARNING,
                    message=(
                        "%r and %r are sequentially ordered but the "
                        "direction is inconsistent (%s first in %.0f%%, "
                        "%s first in %.0f%% of %d case(s))"
                        % (
                            a,
                            b,
                            a,
                            100 * confidence,
                            b,
                            100 * reverse,
                            together,
                        )
                    ),
                    location=constraint_location(a, b),
                    evidence=(
                        "overlapping intervals in %d case(s)"
                        % stats.overlap.get((a, b), 0),
                    ),
                )
            )


def _always_ordered(
    stats: LogStatistics, config: MinerConfig, a: str, b: str
) -> bool:
    """Did ``a`` finish before ``b`` started in (noise-tolerantly) every
    co-occurring case?"""
    together = stats.cooccur.get((a, b), 0)
    if not together:
        return False
    ordered = stats.ordered.get((a, b), 0)
    return (
        together - ordered <= config.noise * together
        and ordered / together >= config.min_confidence
    )


def _subthreshold(
    what: str, location, support: int, min_support: int
) -> Diagnostic:
    return Diagnostic(
        code=SUBTHRESHOLD_EVIDENCE,
        severity=Severity.INFO,
        message=(
            "%s is confident but supported by only %d case(s) "
            "(min_support=%d); not emitted as a candidate"
            % (what, support, min_support)
        ),
        location=location,
    )
