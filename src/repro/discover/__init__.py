"""Dependency discovery: mine synchronization dependencies from event logs.

The paper assumes the dependency set of Table 1 is hand-declared.  This
package closes the loop from ROADMAP item 3: any conformance event log
(JSONL/CSV/XES from :mod:`repro.conformance`, or a runtime WAL journal,
which *is* a conformance log once its control records are stripped) can
be mined back into a scored →T/→F/→o candidate set and fed through the
existing merge → translate → minimize → verify → serve pipeline.

* :mod:`repro.discover.stats` — a single streaming pass turning events
  into per-activity-pair co-occurrence / precedence counters and
  guard-outcome-conditioned execution statistics;
* :mod:`repro.discover.mine` — candidate mining with configurable
  support/confidence thresholds and noise tolerance, plus the DIS001-005
  diagnostics surfaced through :mod:`repro.lint`;
* :mod:`repro.discover.ingest` — format sniffing (JSONL/CSV/XES/journal)
  and duplicate-tolerant journal ingestion;
* :mod:`repro.discover.evaluate` — the round-trip evaluator: simulate a
  known workload, rediscover its dependency set, score entailment-level
  precision/recall against the reference closure and check transitive
  equivalence of the rediscovered minimal set.

Because a mined unconditional edge onto a guarded target is
guard-aware-equivalent to the declared conditional edge (the annotation
is implied by the target's effective guard), precision and recall are
measured at the *entailment* level: a candidate is correct iff the
reference closure entails it, and a reference constraint is recovered
iff the discovered closure entails it.
"""

from repro.discover.ingest import load_log, sniff_format
from repro.discover.mine import Candidate, DiscoveryResult, MinerConfig, mine
from repro.discover.stats import LogStatistics

__all__ = [
    "Candidate",
    "DiscoveryResult",
    "LogStatistics",
    "MinerConfig",
    "load_log",
    "mine",
    "sniff_format",
]
