"""Cross-shard wait index: per-object obligation counters and barriers.

One :class:`WaitIndex` is shared by every shard of a runtime (the
coordinator serializes shard advancement, so no locking is needed).  Per
object key it tracks, for every all-of sync id:

* which child cases have *satisfied* (finished) or *cancelled* (skipped)
  the child activity — distinct case sets, so double application during
  WAL replay is naturally idempotent;
* the *resolve time* — the running max of contribution times.  A barrier
  releases only when every declared child has resolved, so the max over
  the full child set is independent of arrival order: the release time is
  deterministic across sharding layouts and crash recovery.

A barrier *releases* when ``len(satisfied | cancelled) >= expected`` where
``expected`` is the fan-out declared on the parent binding.  Cancelled
children count toward release (a cancelled line item must not strand the
order's shipment) but are reported separately in the counters.

Exactly-once obligations are a per-(object, sid) first-writer register:
the first case to fire wins, later distinct cases are double-fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.objects.compile import CrossCaseProgram


@dataclass
class _SyncState:
    """One all-of barrier on one object."""

    satisfied: Set[str] = field(default_factory=set)
    cancelled: Set[str] = field(default_factory=set)
    resolve_time: float = 0.0
    open: bool = False
    release_time: float = 0.0

    def resolved(self) -> int:
        return len(self.satisfied | self.cancelled)


@dataclass
class _ObjectState:
    """Everything the index knows about one object key."""

    expected: Optional[int] = None
    parents: Set[str] = field(default_factory=set)
    children: Set[str] = field(default_factory=set)
    syncs: Dict[int, _SyncState] = field(default_factory=dict)
    once_fired: Dict[int, Tuple[str, float]] = field(default_factory=dict)
    #: bit ``sid`` set iff that barrier has released — the gate check is
    #: a single mask test instead of a walk over the sync states.
    open_mask: int = 0

    def sync(self, sid: int) -> _SyncState:
        state = self.syncs.get(sid)
        if state is None:
            state = _SyncState()
            self.syncs[sid] = state
        return state


class WaitIndex:
    """Obligation counters for every (object, sync) pair in flight."""

    def __init__(self, program: CrossCaseProgram) -> None:
        self._program = program
        self._objects: Dict[str, _ObjectState] = {}
        self.barriers_released = 0
        self.barriers_stranded = 0

    def _object(self, key: str) -> _ObjectState:
        state = self._objects.get(key)
        if state is None:
            state = _ObjectState()
            self._objects[key] = state
        return state

    # -- registration --------------------------------------------------------

    def declare(self, key: str, expected: int) -> List[int]:
        """Record the declared fan-out for ``key``.

        Returns the sids of barriers that become open *because of* the
        declaration (an ``expected`` of 0, or a late-arriving parent whose
        children all resolved first).
        """
        state = self._object(key)
        state.expected = expected
        # Materialize every all-of barrier up front so gate checks,
        # ``pending()`` and stranded-barrier evidence see a "0 of N"
        # barrier even when no child ever contributes (all withheld, or
        # a declared fan-out of 0 that must open trivially).
        for sid in sorted(self._program.syncs):
            if sid in self._program.onces.values():
                continue
            state.sync(sid)
        released: List[int] = []
        for sid in sorted(state.syncs):
            if self._maybe_release(state, sid):
                released.append(sid)
        return released

    def register(self, key: str, role: str, case: str, parent: bool) -> None:
        state = self._object(key)
        (state.parents if parent else state.children).add(case)

    # -- contributions -------------------------------------------------------

    def apply(
        self, kind: str, key: str, sid: int, case: str, time: float
    ) -> Tuple[bool, bool]:
        """Apply one contribution; returns ``(newly_applied, released)``.

        ``kind`` is ``"satisfy"`` (child finished the activity) or
        ``"cancel"`` (child skipped it).  Reapplying the same (key, sid,
        case) — as WAL replay does — is a no-op.
        """
        state = self._object(key)
        sync = state.sync(sid)
        bucket = sync.satisfied if kind == "satisfy" else sync.cancelled
        if case in sync.satisfied or case in sync.cancelled:
            return False, False
        bucket.add(case)
        if time > sync.resolve_time:
            sync.resolve_time = time
        return True, self._maybe_release(state, sid)

    def _maybe_release(self, state: _ObjectState, sid: int) -> bool:
        sync = state.sync(sid)
        if sync.open:
            return False
        if state.expected is None or sync.resolved() < state.expected:
            return False
        sync.open = True
        sync.release_time = sync.resolve_time
        state.open_mask |= 1 << sid
        self.barriers_released += 1
        return True

    def fire_once(self, key: str, sid: int, case: str, time: float) -> Tuple[bool, str]:
        """Record an exactly-once firing; returns ``(first, winner_case)``.

        Refiring by the *same* case (WAL replay) keeps the original
        winner; a distinct case is a double-fire and the caller reports
        it.
        """
        state = self._object(key)
        existing = state.once_fired.get(sid)
        if existing is None:
            state.once_fired[sid] = (case, time)
            return True, case
        return existing[0] == case, existing[0]

    # -- queries -------------------------------------------------------------

    def is_open(self, key: str, mask: int) -> bool:
        """True iff every barrier in ``mask`` has released for ``key``."""
        state = self._objects.get(key)
        if state is None:
            return mask == 0
        return not (mask & ~state.open_mask)

    def release_time(self, key: str, mask: int) -> float:
        """Max release time over the barriers in ``mask`` (all must be open)."""
        state = self._objects[key]
        latest = 0.0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            released = state.syncs[low.bit_length() - 1].release_time
            if released > latest:
                latest = released
        return latest

    # -- introspection -------------------------------------------------------

    def counters(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Deterministic snapshot of per-object obligation counters.

        ``{object_key: {sync_name: {"satisfied", "cancelled", "open"}}}``
        — compared verbatim between crashed and uncrashed runs by the
        recovery tests.
        """
        snapshot: Dict[str, Dict[str, Dict[str, object]]] = {}
        for key in sorted(self._objects):
            state = self._objects[key]
            per_sync: Dict[str, Dict[str, object]] = {}
            for sid in sorted(state.syncs):
                sync = state.syncs[sid]
                per_sync[self._program.name_of(sid)] = {
                    "satisfied": len(sync.satisfied),
                    "cancelled": len(sync.cancelled),
                    "open": sync.open,
                }
            for sid in sorted(state.once_fired):
                case, _time = state.once_fired[sid]
                per_sync[self._program.name_of(sid)] = {"fired_by": case}
            snapshot[key] = per_sync
        return snapshot

    def pending(self) -> List[Tuple[str, str, int, Optional[int]]]:
        """Unreleased barriers: ``(key, sync_name, resolved, expected)``.

        Evidence for stranded-barrier findings; deterministic order.
        """
        rows: List[Tuple[str, str, int, Optional[int]]] = []
        for key in sorted(self._objects):
            state = self._objects[key]
            for sid in sorted(state.syncs):
                sync = state.syncs[sid]
                if not sync.open:
                    rows.append(
                        (key, self._program.name_of(sid), sync.resolved(), state.expected)
                    )
        return rows

    def objects(self) -> int:
        return len(self._objects)

    def parent_cases(self, key: str) -> Tuple[str, ...]:
        state = self._objects.get(key)
        return tuple(sorted(state.parents)) if state else ()

    def child_cases(self, key: str) -> Tuple[str, ...]:
        state = self._objects.get(key)
        return tuple(sorted(state.children)) if state else ()
