"""repro.objects — object-centric cross-case synchronization.

The paper's synchronization dependencies live inside one case.  This
package extends the reproduction to *object-centric* processes, where one
business object fans out into many cases (one order, N line-item cases)
and the cases must synchronize **across case boundaries**:

* DSCL object statements (``object order 1..* item``,
  ``item.pack_item ->A order.ship_order``, ``order.invoice_order ->1
  order``) parse into :attr:`repro.dscl.ast.Program.objects` and validate
  into an :class:`ObjectSpec`;
* :func:`compile_objects` lowers the spec through the interned-bitset
  kernel into a :class:`CrossCaseProgram` of gate masks and contribution
  lists;
* :class:`ObjectRuntime` + the :class:`~repro.objects.waitindex.WaitIndex`
  execute it inside the sharded coordinator — co-sharding by object key,
  journaling per-object obligations write-ahead for deterministic crash
  recovery of partially satisfied barriers;
* :class:`ObjectMonitor` replays logs/journals and reports ``OBJ001``
  under-sync, ``OBJ002`` double-fire and ``OBJ003`` orphaned-child.

With no object statements declared, every hook in the runtime is inert
and behavior is bit-for-bit identical to the single-case engine.
"""

from repro.objects.compile import CompiledSync, CrossCaseProgram, compile_objects
from repro.objects.model import (
    ObjectBinding,
    ObjectRelation,
    ObjectSpec,
    ObjectSpecError,
    SyncAll,
    SyncOnce,
    spec_from_program,
)
from repro.objects.monitor import OBJ_CODES, ObjectMonitor, ObjectReport
from repro.objects.runtime import CaseHook, ObjectRuntime
from repro.objects.waitindex import WaitIndex
from repro.objects import rules  # noqa: F401  (registers OBJ rules)

__all__ = [
    "CaseHook",
    "CompiledSync",
    "CrossCaseProgram",
    "OBJ_CODES",
    "ObjectBinding",
    "ObjectMonitor",
    "ObjectRelation",
    "ObjectReport",
    "ObjectRuntime",
    "ObjectSpec",
    "ObjectSpecError",
    "SyncAll",
    "SyncOnce",
    "WaitIndex",
    "compile_objects",
    "spec_from_program",
]
