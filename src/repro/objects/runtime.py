"""Runtime integration: object bindings, case hooks and barrier wakes.

One :class:`ObjectRuntime` sits beside the sharded coordinator and owns
the compiled cross-case program plus the :class:`~repro.objects.waitindex.
WaitIndex`.  Each bound case gets a :class:`CaseHook` — the *only* surface
the per-case engine (:class:`repro.runtime.instance.CaseInstance`) sees:

* ``gate(activity)`` / ``gate_open`` / ``release_time`` — the readiness
  test for barrier-gated activities;
* ``contribute(activity, kind, time)`` — called on the child side when an
  activity finishes (``satisfy``) or is skipped (``cancel``);
* ``once(activity, time)`` — exactly-once firing.

Write-ahead discipline: a contribution journals its ``obj`` record
*before* the event record the engine emits next.  Application is
idempotent per (object, sync, case), so the crash window between the two
writes is safe — recovery pre-applies the journaled record and the
re-executed hook call becomes a no-op that journals nothing.

Lost-wakeup race: a case may find its gate closed, park, and meanwhile the
final child contribution lands (possibly on another shard).  To close the
race, :meth:`ObjectRuntime.register_wait` re-checks the gate *after*
recording the waiter and self-wakes if it is already open.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.objects.compile import CrossCaseProgram, compile_objects
from repro.objects.model import ObjectBinding, ObjectSpec, ObjectSpecError
from repro.objects.waitindex import WaitIndex


def _record(
    kind: str, case: str, object_key: str, sync: str, time: float
) -> Dict[str, Any]:
    """The wire/journal form of one obligation record (fixed key order)."""
    return {
        "rt": "obj",
        "kind": kind,
        "case": case,
        "object": object_key,
        "sync": sync,
        "time": time,
    }


class CaseHook:
    """One case's view of the cross-case machinery."""

    __slots__ = ("_runtime", "case", "binding")

    def __init__(self, runtime: "ObjectRuntime", case: str, binding: ObjectBinding) -> None:
        self._runtime = runtime
        self.case = case
        self.binding = binding

    @property
    def attrs(self) -> Tuple[Tuple[str, Any], ...]:
        """Extra event attributes carried by every event of this case."""
        return (("object", self.binding.object_key), ("role", self.binding.role))

    def gate(self, activity: str) -> int:
        """Bitmask of barriers gating ``activity`` for this case's role."""
        return self._runtime.program.gates.get((self.binding.role, activity), 0)

    def gate_open(self, mask: int) -> bool:
        return self._runtime.index.is_open(self.binding.object_key, mask)

    def release_time(self, mask: int) -> float:
        return self._runtime.index.release_time(self.binding.object_key, mask)

    def gate_names(self, mask: int) -> Tuple[str, ...]:
        return self._runtime.program.mask_names(mask)

    def contribute(self, activity: str, kind: str, time: float) -> None:
        """Feed an activity resolution into every barrier it contributes to."""
        self._runtime.contribute(self, activity, kind, time)

    def once(self, activity: str, time: float) -> None:
        self._runtime.fire_once(self, activity, time)

    def register_wait(self, mask: int) -> None:
        self._runtime.register_wait(self.case, self.binding.object_key, mask)


class ObjectRuntime:
    """Owns the compiled program, wait index, bindings and wake queue."""

    def __init__(self, spec: ObjectSpec) -> None:
        self.spec = spec
        self.program: CrossCaseProgram = compile_objects(spec)
        self.index = WaitIndex(self.program)
        #: Set by the coordinator once its journal exists; ``None`` disables
        #: write-ahead records (recovery pre-apply runs in that state).
        self.journal = None  # type: Optional[Any]
        self.bindings: Dict[str, ObjectBinding] = {}
        self._parent_roles = frozenset(spec.parent_roles())
        self._waiting: Dict[str, Tuple[str, int]] = {}
        self._wakes: List[str] = []
        #: when True, every newly journaled ``obj`` record is also queued
        #: for cross-process shipping (multi-worker serving).
        self.outbox_enabled = False
        self._outbox: List[Dict[str, Any]] = []

    def __bool__(self) -> bool:
        return bool(self.program)

    # -- binding -------------------------------------------------------------

    def bind(self, case: str, binding: ObjectBinding) -> CaseHook:
        declared = self.spec.roles()
        if binding.role not in declared:
            raise ObjectSpecError(
                "case %r binds undeclared role %r; declared: %s"
                % (case, binding.role, ", ".join(sorted(declared)) or "(none)")
            )
        is_parent = binding.role in self._parent_roles
        if is_parent and binding.children is None and self.program.gates:
            raise ObjectSpecError(
                "parent-role binding for case %r must declare its fan-out "
                "(children=N) so barriers release deterministically" % case
            )
        self.bindings[case] = binding
        self.index.register(binding.object_key, binding.role, case, parent=is_parent)
        if is_parent and binding.children is not None:
            if self.index.declare(binding.object_key, binding.children):
                self._check_waiters(binding.object_key)
        return CaseHook(self, case, binding)

    def hook_for(self, case: str) -> Optional[CaseHook]:
        binding = self.bindings.get(case)
        if binding is None or not self.program:
            return None
        return CaseHook(self, case, binding)

    # -- contributions -------------------------------------------------------

    def contribute(self, hook: CaseHook, activity: str, kind: str, time: float) -> None:
        key = hook.binding.object_key
        sids = self.program.contributes.get((hook.binding.role, activity), ())
        released_any = False
        for sid in sids:
            newly, released = self.index.apply(kind, key, sid, hook.case, time)
            if newly:
                if self.journal is not None:
                    self.journal.object_record(
                        kind, hook.case, key, self.program.name_of(sid), time
                    )
                if self.outbox_enabled:
                    self._outbox.append(
                        _record(kind, hook.case, key, self.program.name_of(sid), time)
                    )
            released_any = released_any or released
        if released_any:
            self._check_waiters(key)

    def fire_once(self, hook: CaseHook, activity: str, time: float) -> None:
        sid = self.program.onces.get((hook.binding.role, activity))
        if sid is None:
            return
        key = hook.binding.object_key
        newly, _winner = self.index.fire_once(key, sid, hook.case, time)
        if newly:
            if self.journal is not None:
                self.journal.object_record(
                    "once", hook.case, key, self.program.name_of(sid), time
                )
            if self.outbox_enabled:
                self._outbox.append(
                    _record("once", hook.case, key, self.program.name_of(sid), time)
                )

    def take_outbox(self) -> List[Dict[str, Any]]:
        """Drain obligation records queued for other shard workers."""
        outbox, self._outbox = self._outbox, []
        return outbox

    # -- recovery ------------------------------------------------------------

    def preapply(self, record: Dict[str, Any]) -> None:
        """Re-apply one journaled ``obj`` record without journaling.

        Called during recovery, before any case resumes; the records are
        idempotent so pre-applied contributions make the re-executed hook
        calls no-ops.
        """
        kind = str(record["kind"])
        key = str(record["object"])
        case = str(record["case"])
        sid = self.program.sid_of(str(record["sync"]))
        time = float(record["time"])
        if kind == "once":
            self.index.fire_once(key, sid, case, time)
        else:
            self.index.apply(kind, key, sid, case, time)

    # -- cross-process gate traffic ------------------------------------------

    def seed_binding(self, case: str, binding: ObjectBinding) -> None:
        """Register a *foreign* case's binding (owned by another worker).

        Multi-worker serving seeds every worker's index with every
        binding, so fan-out declarations and parent/child registrations
        are globally visible even when an object's cases scatter across
        workers (``co_shard=False``).  No hook is created and nothing is
        journaled — the owning worker does both.
        """
        is_parent = binding.role in self._parent_roles
        self.index.register(binding.object_key, binding.role, case, parent=is_parent)
        if is_parent and binding.children is not None:
            if self.index.declare(binding.object_key, binding.children):
                self._check_waiters(binding.object_key)

    def apply_foreign(self, record: Dict[str, Any]) -> None:
        """Apply an ``obj`` record shipped from another shard worker.

        Same idempotent application as recovery pre-apply, plus the
        waiter re-check: a foreign contribution may be the one that
        releases a barrier a local case parked on.  Barrier release
        times are running maxima over the full child set, so the result
        is independent of which worker applied a record first.
        """
        self.preapply(record)
        self._check_waiters(str(record["object"]))

    # -- waits and wakes -----------------------------------------------------

    def register_wait(self, case: str, key: str, mask: int) -> None:
        self._waiting[case] = (key, mask)
        # Re-check after recording: the releasing contribution may have
        # landed between the engine's gate check and this registration.
        if self.index.is_open(key, mask):
            self._wakes.append(case)

    def _check_waiters(self, key: str) -> None:
        for case in sorted(self._waiting):
            waiting_key, mask = self._waiting[case]
            if waiting_key == key and self.index.is_open(key, mask):
                self._wakes.append(case)

    def take_wakes(self) -> List[str]:
        """Drain pending wakes (deduplicated, deterministic order)."""
        if not self._wakes:
            return []
        wakes = sorted(set(self._wakes))
        self._wakes.clear()
        for case in wakes:
            self._waiting.pop(case, None)
        return wakes

    def waiting_cases(self) -> Tuple[str, ...]:
        return tuple(sorted(self._waiting))

    def stranded_evidence(self) -> List[str]:
        """Human-readable evidence lines for unreleased barriers."""
        lines: List[str] = []
        for key, name, resolved, expected in self.index.pending():
            lines.append(
                "object %s barrier %s resolved %d of %s declared children"
                % (key, name, resolved, "?" if expected is None else expected)
            )
        return lines
