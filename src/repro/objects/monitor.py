"""Object-aware conformance monitoring (OBJ00x findings).

The single-case :class:`~repro.conformance.monitor.ConformanceMonitor`
checks each case against the intra-case constraint program.  This monitor
is its cross-case sibling: it reads the ``object``/``role`` attributes
events carry (or explicit :class:`~repro.objects.model.ObjectBinding`
declarations, e.g. recovered from journal admit records) and tracks every
object's obligations through the same :class:`~repro.objects.waitindex.
WaitIndex` the runtime uses — one obligation semantics, two consumers.

Findings:

``OBJ001`` **under-sync** (error)
    A barrier-gated parent activity started before every declared child
    resolved the feeding activity, or the log ended with a declared
    fan-out still unmet.
``OBJ002`` **double-fire** (error)
    An exactly-once activity fired from more than one case of the same
    object.
``OBJ003`` **orphaned-child** (warning)
    Child cases whose object never saw a parent case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.conformance.events import Event
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
)
from repro.objects.compile import CrossCaseProgram, compile_objects
from repro.objects.model import ObjectBinding, ObjectSpec
from repro.objects.waitindex import WaitIndex

#: The object-centric rule codes, in reporting order.
OBJ_CODES = ("OBJ001", "OBJ002", "OBJ003")

UNDER_SYNC = "OBJ001"
DOUBLE_FIRE = "OBJ002"
ORPHANED_CHILD = "OBJ003"


def _object_location(key: str) -> SourceLocation:
    return SourceLocation("object", key)


@dataclass
class ObjectReport:
    """Everything the monitor observed about cross-case obligations."""

    objects: int
    events: int
    bound_cases: int
    diagnostics: Tuple[Diagnostic, ...]
    counters: Dict[str, Dict[str, Dict[str, object]]]

    @property
    def violations(self) -> Tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity.at_least(Severity.WARNING)
        )

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts_by_code(self) -> Dict[str, int]:
        counts = {code: 0 for code in OBJ_CODES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return counts

    def to_lint_report(self) -> LintReport:
        import repro.objects.rules  # noqa: F401  (registers OBJ rules)

        return LintReport.from_diagnostics(
            list(self.diagnostics), rules_run=OBJ_CODES
        )

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        return self.to_lint_report().exit_code(fail_on)

    def summary(self) -> str:
        counts = self.counts_by_code()
        return (
            "objects tracked: %d (%d bound cases, %d events)\n"
            "under-sync: %d, double-fire: %d, orphaned-child: %d"
            % (
                self.objects,
                self.bound_cases,
                self.events,
                counts[UNDER_SYNC],
                counts[DOUBLE_FIRE],
                counts[ORPHANED_CHILD],
            )
        )


class ObjectMonitor:
    """Streaming checker for per-object obligations.

    Feed events in log order (:meth:`feed`), then :meth:`finish` to close
    end-of-log obligations and collect the report.  Bindings are taken
    from event attributes; :meth:`bind` supplies them up front when the
    caller knows more than the events do (the declared fan-out travels on
    journal admit records, not on events).
    """

    def __init__(self, spec: ObjectSpec) -> None:
        self.spec = spec
        self.program: CrossCaseProgram = compile_objects(spec)
        self.index = WaitIndex(self.program)
        self._bindings: Dict[str, ObjectBinding] = {}
        self._parent_roles = frozenset(spec.parent_roles())
        self._diagnostics: List[Diagnostic] = []
        self._double_fired: Set[Tuple[str, int, str]] = set()
        self._under_synced: Set[Tuple[str, str, str]] = set()
        self._events = 0

    # -- bindings ------------------------------------------------------------

    def bind(self, case: str, binding: ObjectBinding) -> None:
        self._bindings[case] = binding
        is_parent = binding.role in self._parent_roles
        self.index.register(binding.object_key, binding.role, case, parent=is_parent)
        if is_parent and binding.children is not None:
            self.index.declare(binding.object_key, binding.children)

    def _binding_for(self, event: Event) -> Optional[ObjectBinding]:
        binding = self._bindings.get(event.case)
        if binding is not None:
            return binding
        key = event.attr("object")
        role = event.attr("role")
        if key is None or role is None:
            return None
        binding = ObjectBinding(object_key=str(key), role=str(role))
        self.bind(event.case, binding)
        return binding

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        """Diagnostics accumulated so far (streaming consumers poll this)."""
        return tuple(self._diagnostics)

    # -- event stream --------------------------------------------------------

    def feed(self, event: Event) -> None:
        binding = self._binding_for(event)
        if binding is None:
            return
        self._events += 1
        key = binding.object_key
        role = binding.role
        activity = event.activity
        lifecycle = event.lifecycle

        if lifecycle == "start":
            mask = self.program.gates.get((role, activity), 0)
            if mask and not self.index.is_open(key, mask):
                self._report_under_sync(key, activity, event.case, event.time)
            return

        if lifecycle in ("finish", "skip"):
            kind = "satisfy" if lifecycle == "finish" else "cancel"
            for sid in self.program.contributes.get((role, activity), ()):
                self.index.apply(kind, key, sid, event.case, event.time)
            if lifecycle == "finish":
                sid_once = self.program.onces.get((role, activity))
                if sid_once is not None:
                    newly, winner = self.index.fire_once(
                        key, sid_once, event.case, event.time
                    )
                    if not newly and winner != event.case:
                        self._report_double_fire(
                            key, sid_once, activity, winner, event.case
                        )

    def _report_under_sync(
        self, key: str, activity: str, case: str, time: float
    ) -> None:
        dedup = (key, activity, case)
        if dedup in self._under_synced:
            return
        self._under_synced.add(dedup)
        pending = [
            "%s: %d of %s children resolved"
            % (name, resolved, "?" if expected is None else expected)
            for barrier_key, name, resolved, expected in self.index.pending()
            if barrier_key == key
        ]
        self._diagnostics.append(
            Diagnostic(
                code=UNDER_SYNC,
                severity=Severity.ERROR,
                message="case %s started gated activity %s before object %s "
                "resolved all declared children" % (case, activity, key),
                location=_object_location(key),
                related=(SourceLocation("activity", activity),),
                evidence=tuple(pending) or ("gate state unavailable",),
            )
        )

    def _report_double_fire(
        self, key: str, sid: int, activity: str, winner: str, case: str
    ) -> None:
        dedup = (key, sid, case)
        if dedup in self._double_fired:
            return
        self._double_fired.add(dedup)
        self._diagnostics.append(
            Diagnostic(
                code=DOUBLE_FIRE,
                severity=Severity.ERROR,
                message="exactly-once activity %s fired for object %s from "
                "case %s after already firing from case %s"
                % (activity, key, case, winner),
                location=_object_location(key),
                related=(SourceLocation("activity", activity),),
                evidence=(
                    "sync %s" % self.program.name_of(sid),
                    "first fired by %s" % winner,
                ),
            )
        )

    # -- end of log ----------------------------------------------------------

    def finish(self) -> ObjectReport:
        # Declared fan-outs left unmet are under-sync even if the parent
        # never reached the gated activity (the obligation is the object's,
        # not the parent case's).
        for key, name, resolved, expected in self.index.pending():
            if expected is None:
                continue
            self._diagnostics.append(
                Diagnostic(
                    code=UNDER_SYNC,
                    severity=Severity.ERROR,
                    message="object %s ended with barrier %s unmet "
                    "(%d of %d declared children resolved)"
                    % (key, name, resolved, expected),
                    location=_object_location(key),
                    evidence=("barrier %s" % name,),
                )
            )
        for key in sorted(self._object_keys()):
            children = self.index.child_cases(key)
            if children and not self.index.parent_cases(key):
                self._diagnostics.append(
                    Diagnostic(
                        code=ORPHANED_CHILD,
                        severity=Severity.WARNING,
                        message="object %s has %d child case(s) but no "
                        "parent case" % (key, len(children)),
                        location=_object_location(key),
                        evidence=tuple("case %s" % c for c in children),
                    )
                )
        return ObjectReport(
            objects=self.index.objects(),
            events=self._events,
            bound_cases=len(self._bindings),
            diagnostics=tuple(self._diagnostics),
            counters=self.index.counters(),
        )

    def _object_keys(self) -> Set[str]:
        return {binding.object_key for binding in self._bindings.values()}
