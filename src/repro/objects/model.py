"""Object-centric model: relations, cross-case syncs, and case bindings.

The paper's dependency model is strictly single-case.  This module holds
the semantic model for the DSCL extension that breaks that boundary:

* an :class:`ObjectRelation` declares a one-to-many fan-out between two
  *roles* (``object order 1..* item`` — one order case, many line-item
  cases, all sharing one object identity);
* a :class:`SyncAll` is an all-of barrier (``item.pack_item ->A
  order.ship_order``): the parent-role activity may start only once every
  sibling child case has resolved — finished *or* cancelled — the child
  activity;
* a :class:`SyncOnce` is an exactly-once obligation (``order.invoice_order
  ->1 order``): across all cases of the role sharing one object, the
  activity must fire at most once;
* an :class:`ObjectBinding` attaches one *case* to one object identity in
  one role; parent-role bindings declare the expected fan-out so barriers
  are deterministic (the runtime never guesses how many children exist).

An :class:`ObjectSpec` validates the statements against each other and is
what :func:`repro.objects.compile.compile_objects` lowers into the dense
mask program the runtime and monitor execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.dscl.ast import (
    CrossCaseAll,
    CrossCaseOnce,
    ObjectRelationDecl,
    Program,
)
from repro.errors import ReproError


class ObjectSpecError(ReproError):
    """The object statements are inconsistent (undeclared role, bad sync)."""


@dataclass(frozen=True)
class ObjectRelation:
    """One-to-many relation between a parent role and a child role."""

    parent: str
    child: str

    def __str__(self) -> str:
        return "object %s 1..* %s" % (self.parent, self.child)


@dataclass(frozen=True)
class SyncAll:
    """All-of barrier: every child resolves ``child_activity`` before the
    parent may start ``parent_activity``."""

    child_role: str
    child_activity: str
    parent_role: str
    parent_activity: str

    @property
    def name(self) -> str:
        """Stable symbolic name, used in WAL records and findings."""
        return "all:%s.%s->%s.%s" % (
            self.child_role,
            self.child_activity,
            self.parent_role,
            self.parent_activity,
        )

    def __str__(self) -> str:
        return "%s.%s ->A %s.%s" % (
            self.child_role,
            self.child_activity,
            self.parent_role,
            self.parent_activity,
        )


@dataclass(frozen=True)
class SyncOnce:
    """Exactly-once obligation: ``activity`` fires at most once per object
    across every case playing ``role``."""

    role: str
    activity: str

    @property
    def name(self) -> str:
        return "once:%s.%s" % (self.role, self.activity)

    def __str__(self) -> str:
        return "%s.%s ->1 %s" % (self.role, self.activity, self.role)


@dataclass(frozen=True)
class ObjectSpec:
    """A validated set of object statements."""

    relations: Tuple[ObjectRelation, ...] = ()
    alls: Tuple[SyncAll, ...] = ()
    onces: Tuple[SyncOnce, ...] = ()

    def __post_init__(self) -> None:
        roles = self.roles()
        children = {relation.child: relation.parent for relation in self.relations}
        for sync in self.alls:
            if sync.child_role not in roles or sync.parent_role not in roles:
                raise ObjectSpecError(
                    "sync %s references undeclared role(s); declared: %s"
                    % (sync, ", ".join(sorted(roles)) or "(none)")
                )
            if children.get(sync.child_role) != sync.parent_role:
                raise ObjectSpecError(
                    "sync %s does not follow a declared relation "
                    "(need `object %s 1..* %s`)"
                    % (sync, sync.parent_role, sync.child_role)
                )
        for once in self.onces:
            if once.role not in roles:
                raise ObjectSpecError(
                    "sync %s references undeclared role %r" % (once, once.role)
                )

    def roles(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for relation in self.relations:
            seen.setdefault(relation.parent, None)
            seen.setdefault(relation.child, None)
        return tuple(seen)

    def parent_roles(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(r.parent for r in self.relations))

    def child_roles(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(r.child for r in self.relations))

    def __bool__(self) -> bool:
        return bool(self.relations or self.alls or self.onces)


def spec_from_program(program: Program) -> ObjectSpec:
    """Build the validated spec from a parsed DSCL program's object
    statements (:attr:`repro.dscl.ast.Program.objects`)."""
    relations: List[ObjectRelation] = []
    alls: List[SyncAll] = []
    onces: List[SyncOnce] = []
    for statement in program.objects:
        if isinstance(statement, ObjectRelationDecl):
            relations.append(ObjectRelation(statement.parent, statement.child))
        elif isinstance(statement, CrossCaseAll):
            alls.append(
                SyncAll(
                    statement.child_role,
                    statement.child_activity,
                    statement.parent_role,
                    statement.parent_activity,
                )
            )
        elif isinstance(statement, CrossCaseOnce):
            onces.append(SyncOnce(statement.role, statement.activity))
        else:  # pragma: no cover - the AST union is closed
            raise ObjectSpecError("unknown object statement %r" % (statement,))
    return ObjectSpec(tuple(relations), tuple(alls), tuple(onces))


@dataclass(frozen=True)
class ObjectBinding:
    """One case's attachment to one object identity in one role.

    ``children`` is the declared fan-out and is only meaningful on
    parent-role bindings; the wait index requires it there so that barrier
    release is a deterministic count, never a guess.
    """

    object_key: str
    role: str
    children: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.object_key or not self.role:
            raise ObjectSpecError("object binding needs a non-empty key and role")
        if self.children is not None and self.children < 0:
            raise ObjectSpecError(
                "declared fan-out must be non-negative, got %d" % self.children
            )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"key": self.object_key, "role": self.role}
        if self.children is not None:
            payload["children"] = self.children
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ObjectBinding":
        children = payload.get("children")
        return cls(
            object_key=str(payload["key"]),
            role=str(payload["role"]),
            children=int(children) if children is not None else None,
        )
