"""Lower an :class:`~repro.objects.model.ObjectSpec` into a mask program.

Cross-case syncs are few per model but consulted on every activity finish
of every case, so — exactly like the single-case constraint algebra in
:mod:`repro.core.kernel` — the hot representation is dense integers, not
name tuples:

* every sync (an all-of barrier or a once obligation) is interned through
  a :class:`~repro.core.kernel.Interner` to a small *sync id* (sid);
* a parent activity's *gate* is the bitmask of all-of sids that must be
  open before it may start (``gate_mask & ~open_mask == 0`` is the whole
  readiness test);
* a child activity's *contributions* are the sids its resolution feeds.

Sync ids are interned under an ``obj:`` namespace prefix so a sync can
never collide with an activity name if a caller reuses one interner for
both universes.  The interner's append-only guarantee keeps sids stable
for the lifetime of a runtime, which the WAL relies on indirectly: journal
records carry the *stable name* (``all:item.pack_item->order.ship_order``),
and :meth:`CrossCaseProgram.sid_of` maps names back to sids on recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.kernel import Interner
from repro.objects.model import ObjectSpec, SyncAll, SyncOnce

#: Namespace prefix for interned sync names.
_SYNC_NAMESPACE = "obj:"


@dataclass(frozen=True)
class CompiledSync:
    """One interned sync: its sid, stable name, and source statement."""

    sid: int
    name: str
    statement: object  # SyncAll | SyncOnce


@dataclass
class CrossCaseProgram:
    """The executable form of an object spec.

    ``gates``
        ``(parent_role, parent_activity) -> bitmask`` of all-of sids that
        must all be open before the activity may start.
    ``contributes``
        ``(child_role, child_activity) -> (sid, ...)`` — barriers this
        activity's resolution (finish or skip) feeds.
    ``onces``
        ``(role, activity) -> sid`` — exactly-once obligations.
    """

    spec: ObjectSpec
    interner: Interner = field(default_factory=Interner)
    syncs: Dict[int, CompiledSync] = field(default_factory=dict)
    gates: Dict[Tuple[str, str], int] = field(default_factory=dict)
    contributes: Dict[Tuple[str, str], Tuple[int, ...]] = field(default_factory=dict)
    onces: Dict[Tuple[str, str], int] = field(default_factory=dict)
    _by_name: Dict[str, int] = field(default_factory=dict)

    def sid_of(self, name: str) -> int:
        """The sid of a stable sync name (for WAL replay)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError("unknown sync name %r; known: %s"
                           % (name, ", ".join(sorted(self._by_name)) or "(none)"))

    def name_of(self, sid: int) -> str:
        return self.syncs[sid].name

    def mask_names(self, mask: int) -> Tuple[str, ...]:
        """The stable names of every sid set in ``mask`` (for evidence)."""
        names = []
        for sid, compiled in sorted(self.syncs.items()):
            if mask & (1 << sid):
                names.append(compiled.name)
        return tuple(names)

    def __bool__(self) -> bool:
        return bool(self.syncs)


def compile_objects(spec: ObjectSpec) -> CrossCaseProgram:
    """Intern every sync of ``spec`` and build the gate / contribution maps."""
    program = CrossCaseProgram(spec=spec)

    def intern(statement) -> int:
        sid = program.interner.node_id(_SYNC_NAMESPACE + statement.name)
        program.syncs[sid] = CompiledSync(sid, statement.name, statement)
        program._by_name[statement.name] = sid
        return sid

    for sync in spec.alls:
        sid = intern(sync)
        gate_key = (sync.parent_role, sync.parent_activity)
        program.gates[gate_key] = program.gates.get(gate_key, 0) | (1 << sid)
        feed_key = (sync.child_role, sync.child_activity)
        program.contributes[feed_key] = program.contributes.get(feed_key, ()) + (sid,)

    for once in spec.onces:
        sid = intern(once)
        program.onces[(once.role, once.activity)] = sid

    return program


__all__ = ["CompiledSync", "CrossCaseProgram", "compile_objects"]
