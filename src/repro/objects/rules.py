"""OBJ00x rule metadata, registered with the :mod:`repro.lint` engine.

Like the CONF and RT groups, object-centric findings are produced at
runtime (by :class:`~repro.objects.monitor.ObjectMonitor`), not by a
static pass — registering them here puts the codes in the SARIF rules
table, makes ``--select OBJ`` work, and lets :func:`run_lint` surface a
monitor report attached to the lint context as ``context.objects``.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintContext, rule


def _observed(context: LintContext, code: str) -> Iterable[Diagnostic]:
    report = getattr(context, "objects", None)
    if report is None:
        return ()
    return tuple(d for d in report.diagnostics if d.code == code)


@rule(
    "OBJ001",
    "under-sync",
    "a barrier-gated parent activity started before all declared children "
    "resolved, or a declared fan-out went unmet",
    Severity.ERROR,
)
def check_under_sync(context: LintContext) -> Iterable[Diagnostic]:
    return _observed(context, "OBJ001")


@rule(
    "OBJ002",
    "double-fire",
    "an exactly-once activity fired from more than one case of the same object",
    Severity.ERROR,
)
def check_double_fire(context: LintContext) -> Iterable[Diagnostic]:
    return _observed(context, "OBJ002")


@rule(
    "OBJ003",
    "orphaned-child",
    "child cases whose object never saw a parent case",
    Severity.WARNING,
)
def check_orphaned_children(context: LintContext) -> Iterable[Diagnostic]:
    return _observed(context, "OBJ003")
