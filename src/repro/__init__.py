"""repro — reproduction of *Categorization and Optimization of
Synchronization Dependencies in Business Processes* (Wu, Pu, Sahai, Barga;
ICDE 2007).

Public API quickstart::

    from repro import DSCWeaver, ProcessBuilder

    process = (
        ProcessBuilder("demo")
        .service("Svc", asynchronous=True)
        .receive("intake", writes=["x"])
        .invoke("call", service="Svc", reads=["x"])
        .receive("answer", service="Svc", writes=["y"])
        .reply("reply", reads=["y"])
        .build()
    )
    result = DSCWeaver().weave(process)
    print(result.report.as_table())
    print(result.minimal.pretty())

Subsystem map (see DESIGN.md for the full inventory):

* ``repro.model`` — processes, activities, services, ports;
* ``repro.deps`` — the four dependency dimensions and their extractors;
* ``repro.dscl`` — the DSCL constraint language (parser, printer, compiler);
* ``repro.core`` — merge, service translation, minimization, pipeline;
* ``repro.constructs`` — BPEL-style sequencing constructs (the baseline);
* ``repro.petri`` — Petri-net validation backend;
* ``repro.bpel`` — BPEL emission and parsing;
* ``repro.wscl`` — WSCL conversation documents;
* ``repro.scheduler`` — dataflow scheduling engine and simulator;
* ``repro.workloads`` — paper examples and synthetic generators;
* ``repro.validation`` — conflict and specification-coverage checks.
"""

from repro.core.closure import Semantics
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.kernel import KernelStats
from repro.core.minimize import minimize
from repro.core.pipeline import DSCWeaver, WeaveResult, extract_all_dependencies, weave
from repro.core.report import ReductionReport
from repro.core.session import MinimizationSession
from repro.core.translation import translate_service_dependencies
from repro.deps.registry import DependencySet
from repro.deps.types import Dependency, DependencyKind
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess

__version__ = "1.0.0"

__all__ = [
    "BusinessProcess",
    "Constraint",
    "DSCWeaver",
    "Dependency",
    "DependencyKind",
    "DependencySet",
    "KernelStats",
    "MinimizationSession",
    "ProcessBuilder",
    "ReductionReport",
    "Semantics",
    "SynchronizationConstraintSet",
    "WeaveResult",
    "__version__",
    "extract_all_dependencies",
    "minimize",
    "translate_service_dependencies",
    "weave",
]
