"""Sequencing constructs — the imperative baseline the paper argues against.

This package implements a BPEL-style construct algebra (``sequence``,
``flow`` with links, ``switch``, ``while``) over model activities, plus the
program-analysis machinery the paper references:

* :mod:`repro.constructs.ast` — the construct tree;
* :mod:`repro.constructs.analysis` — the total set of orderings a construct
  tree *implies*;
* :mod:`repro.constructs.cfg` — construct tree -> control-flow graph;
* :mod:`repro.constructs.pdg` — Program Dependency Graph extraction
  (reaching-definition data dependencies + post-dominator control
  dependencies), the paper's route for applying dependency optimization to
  imperatively-coded processes;
* :mod:`repro.constructs.specification` — detection of over- and
  under-specified synchronization relative to a dependency set (the
  Figure 2 analysis);
* :mod:`repro.constructs.rewrite` — rewriting a construct tree into DSCL
  synchronization constraints.
"""

from repro.constructs.ast import (
    Act,
    Construct,
    Flow,
    Link,
    Sequence,
    Switch,
    While,
)
from repro.constructs.analysis import implied_orderings, activities_of
from repro.constructs.cfg import construct_to_cfg
from repro.constructs.pdg import build_pdg, ProgramDependencyGraph
from repro.constructs.specification import (
    SpecificationReport,
    analyze_specification,
)
from repro.constructs.rewrite import constructs_to_constraints

__all__ = [
    "Act",
    "Construct",
    "Flow",
    "Link",
    "ProgramDependencyGraph",
    "Sequence",
    "SpecificationReport",
    "Switch",
    "While",
    "activities_of",
    "analyze_specification",
    "build_pdg",
    "construct_to_cfg",
    "constructs_to_constraints",
    "implied_orderings",
]
