"""Rewriting construct trees into synchronization constraint sets.

The paper (Section 5): "a process implemented in workflow patterns ...
can be parsed to a dependency graph such as PDG and use rewriting rules to
translate constructs into synchronization constraints, and then
participate in the step of dependency inference and optimization."

:func:`constructs_to_constraints` performs that rewriting: the immediate
orderings of the tree become happen-before constraints (switch edges carry
their case's outcome as condition) and the switch structure yields the
guard map, so the resulting set can be fed straight into
:func:`repro.core.minimize.minimize`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.conditions import Cond, ConditionDomains
from repro.constructs.analysis import activities_of, immediate_orderings
from repro.constructs.ast import Construct, Switch, While
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.model.process import BusinessProcess


def _collect_guard_map(construct: Construct) -> Dict[str, Set[Cond]]:
    """Execution guards implied by the switch/while structure."""
    from repro.constructs.ast import Act, Flow, Sequence

    guards: Dict[str, Set[Cond]] = {}

    def members(node: Construct) -> List[str]:
        if isinstance(node, Act):
            return [node.name]
        if isinstance(node, (Sequence, Flow)):
            result: List[str] = []
            for child in node.children:
                result.extend(members(child))
            return result
        if isinstance(node, Switch):
            result = [node.guard]
            for case in node.cases.values():
                result.extend(members(case))
            if node.otherwise is not None:
                result.extend(members(node.otherwise))
            return result
        if isinstance(node, While):
            return [node.guard] + members(node.body)
        return []

    def visit(node: Construct) -> None:
        if isinstance(node, (Sequence, Flow)):
            for child in node.children:
                visit(child)
        elif isinstance(node, Switch):
            for outcome, case in node.cases.items():
                for member in members(case):
                    guards.setdefault(member, set()).add(Cond(node.guard, outcome))
                visit(case)
            if node.otherwise is not None:
                visit(node.otherwise)
        elif isinstance(node, While):
            for member in members(node.body):
                guards.setdefault(member, set()).add(Cond(node.guard, "T"))
            visit(node.body)

    visit(construct)
    return guards


def constructs_to_constraints(
    process: BusinessProcess, construct: Construct
) -> SynchronizationConstraintSet:
    """Rewrite a construct tree into an activity constraint set.

    The set contains only internal activities (constructs cannot mention
    ports); guards and guard domains come from the switch structure and the
    process's guard activities respectively.
    """
    names = activities_of(construct)
    constraints = [
        Constraint(source, target, condition)
        for source, target, condition in immediate_orderings(construct)
    ]
    guard_map = _collect_guard_map(construct)
    domains = ConditionDomains()
    for name in names:
        if process.has_activity(name) and process.activity(name).is_guard:
            domains.declare(name, process.activity(name).outcomes)
    return SynchronizationConstraintSet(
        activities=names,
        constraints=constraints,
        guards={k: frozenset(v) for k, v in guard_map.items()},
        domains=domains,
    )
