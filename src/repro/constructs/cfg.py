"""Construct tree -> control-flow graph.

The CFG is the substrate of PDG extraction (Section 3.1: "we can use
program analysis techniques like Program Dependency Graph to extract
dependency information").  ``Flow`` constructs introduce fork/join pseudo
nodes; ``Switch``/``While`` guards branch with labeled edges.  Pseudo nodes
are prefixed ``__`` so downstream analyses can filter them out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.graphs import DirectedGraph
from repro.constructs.ast import Act, Construct, Flow, Sequence, Switch, While
from repro.errors import ModelError

ENTRY = "__entry"
EXIT = "__exit"


@dataclass
class ControlFlowGraph:
    """A CFG with entry/exit sentinels and branch-edge labels."""

    graph: DirectedGraph
    entry: str = ENTRY
    exit: str = EXIT
    branch_labels: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def is_pseudo(self, node: str) -> bool:
        return isinstance(node, str) and node.startswith("__")

    def real_nodes(self) -> List[str]:
        return [n for n in self.graph.nodes() if not self.is_pseudo(n)]


def construct_to_cfg(construct: Construct) -> ControlFlowGraph:
    """Translate a construct tree into a :class:`ControlFlowGraph`."""
    graph = DirectedGraph()
    branch_labels: Dict[Tuple[str, str], str] = {}
    counters = {"fork": 0, "join": 0, "merge": 0}

    def fresh(kind: str) -> str:
        counters[kind] += 1
        return "__%s_%d" % (kind, counters[kind])

    def wire(node: Construct, head: str) -> str:
        """Attach ``node`` after CFG node ``head``; return the tail node."""
        if isinstance(node, Act):
            graph.add_edge(head, node.name)
            return node.name
        if isinstance(node, Sequence):
            current = head
            for child in node.children:
                current = wire(child, current)
            return current
        if isinstance(node, Flow):
            fork = fresh("fork")
            join = fresh("join")
            graph.add_edge(head, fork)
            for child in node.children:
                tail = wire(child, fork)
                graph.add_edge(tail, join)
            # Flow links are synchronization edges; they are included in the
            # CFG because data flows along them (a definition made before a
            # link's source reaches uses after its target), which the
            # reaching-definitions analysis must see.
            for link in node.links:
                graph.add_edge(link.source, link.target)
            return join
        if isinstance(node, Switch):
            graph.add_edge(head, node.guard)
            merge = fresh("merge")
            for outcome, case in node.cases.items():
                first = _first_cfg_edge(graph, node.guard, case, wire)
                branch_labels[(node.guard, first)] = outcome
                # `wire` already attached the case; connect its tail.
                tail = _case_tails.pop()
                graph.add_edge(tail, merge)
            if node.otherwise is not None:
                first = _first_cfg_edge(graph, node.guard, node.otherwise, wire)
                tail = _case_tails.pop()
                graph.add_edge(tail, merge)
            else:
                graph.add_edge(node.guard, merge)
            return merge
        if isinstance(node, While):
            graph.add_edge(head, node.guard)
            body_first = _first_cfg_edge(graph, node.guard, node.body, wire)
            branch_labels[(node.guard, body_first)] = "T"
            tail = _case_tails.pop()
            graph.add_edge(tail, node.guard)
            return node.guard
        raise ModelError("unknown construct %r" % (node,))

    # Helper state for Switch/While wiring: wire() returns the tail but we
    # also need the first concrete node a case reaches from the guard.
    _case_tails: List[str] = []

    def _first_cfg_edge(g: DirectedGraph, guard: str, case: Construct, wirefn) -> str:
        before = set(g.successors(guard))
        tail = wirefn(case, guard)
        _case_tails.append(tail)
        after = set(g.successors(guard))
        added = after - before
        if len(added) == 1:
            return added.pop()
        # The case started with a construct whose head node was already a
        # successor (should not happen with single-occurrence activities).
        raise ModelError("could not identify the first node of a switch case")

    tail = wire(construct, ENTRY)
    graph.add_edge(tail, EXIT)
    graph.add_node(ENTRY)
    graph.add_node(EXIT)
    return ControlFlowGraph(graph=graph, branch_labels=branch_labels)
