"""Over-/under-specification analysis of imperative implementations.

Section 2 of the paper diagnoses Figure 2's construct implementation by
comparing what the constructs *enforce* against what the dependencies
*require*:

* the sequencing ``invProduction_po -> invProduction_ss`` is
  **over-specified** — no dependency requires it;
* the sequencing ``invPurchase_po -> invPurchase_si`` looks equally
  arbitrary but is **required** (a service dependency of the state-aware
  Purchase service);
* a scheme missing a required ordering is **under-specified** (Figure 5's
  data+control-only scheme misses the cooperation constraints on
  ``replyClient_oi``).

:func:`analyze_specification` automates this comparison given a construct
tree and the reference constraint set (normally the translated ``ASC`` of
the full dependency set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

from repro.constructs.analysis import implied_orderings
from repro.constructs.ast import Construct
from repro.core.closure import Semantics, closure_map
from repro.core.constraints import SynchronizationConstraintSet

Pair = Tuple[str, str]


@dataclass(frozen=True)
class SpecificationReport:
    """Result of comparing an implementation against required orderings.

    ``over_specified``
        Orderings the constructs enforce that no dependency requires —
        lost concurrency.
    ``under_specified``
        Orderings the dependencies require that the constructs do not
        enforce — correctness hazards.
    ``satisfied``
        Required orderings the constructs do enforce.
    """

    over_specified: Tuple[Pair, ...]
    under_specified: Tuple[Pair, ...]
    satisfied: Tuple[Pair, ...]

    @property
    def is_exact(self) -> bool:
        """Does the implementation enforce exactly the required orderings?"""
        return not self.over_specified and not self.under_specified

    def summary(self) -> str:
        return (
            "required=%d satisfied=%d under-specified=%d over-specified=%d"
            % (
                len(self.satisfied) + len(self.under_specified),
                len(self.satisfied),
                len(self.under_specified),
                len(self.over_specified),
            )
        )


def required_orderings(
    reference: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> Set[Pair]:
    """All activity pairs the reference constraint set orders (its closure,
    annotations disregarded — an ordering required on one branch only still
    needs enforcement whenever both activities run)."""
    pairs: Set[Pair] = set()
    for source, facts in closure_map(reference, semantics).items():
        for target, _annotations in facts:
            pairs.add((source, target))
    return pairs


def analyze_specification(
    construct: Construct,
    reference: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> SpecificationReport:
    """Compare a construct tree against a reference constraint set."""
    implied = implied_orderings(construct)
    required = required_orderings(reference, semantics)

    over = sorted(implied - required)
    under = sorted(required - implied)
    satisfied = sorted(required & implied)
    return SpecificationReport(
        over_specified=tuple(over),
        under_specified=tuple(under),
        satisfied=tuple(satisfied),
    )
