"""Construct tree for imperative (BPEL-style) process implementations.

Constructs reference activities of a :class:`~repro.model.process.
BusinessProcess` by name — the construct tree adds *ordering*, the model
holds everything else.  Supported constructs mirror the BPEL 1.0 subset the
paper's Figure 2 uses:

* :class:`Act` — a single activity;
* :class:`Sequence` — children execute strictly one after another;
* :class:`Flow` — children execute concurrently, except where cross-child
  :class:`Link` edges impose order (BPEL ``<link>``);
* :class:`Switch` — a guard activity selects exactly one case;
* :class:`While` — a guard activity repeats its body while true.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence as Seq, Tuple, Union

from repro.errors import ModelError


@dataclass(frozen=True)
class Act:
    """A leaf construct: run one activity."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("Act requires an activity name")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Link:
    """A BPEL flow link: ``source`` must finish before ``target`` starts.

    Links cut across the children of a :class:`Flow` — they are how Figure 2
    wires ``recShip_si`` into ``invPurchase_si`` across subprocesses.
    """

    source: str
    target: str

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ModelError("link endpoints must differ")

    def __str__(self) -> str:
        return "link(%s -> %s)" % (self.source, self.target)


@dataclass(frozen=True)
class Sequence:
    """Children run strictly in order."""

    children: Tuple["Construct", ...]

    def __init__(self, *children: "Construct") -> None:
        object.__setattr__(self, "children", tuple(children))
        if not self.children:
            raise ModelError("Sequence requires at least one child")

    def __str__(self) -> str:
        return "sequence(%s)" % ", ".join(str(c) for c in self.children)


@dataclass(frozen=True)
class Flow:
    """Children run concurrently; ``links`` add cross-child orderings."""

    children: Tuple["Construct", ...]
    links: Tuple[Link, ...] = ()

    def __init__(self, *children: "Construct", links: Seq[Link] = ()) -> None:
        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "links", tuple(links))
        if not self.children:
            raise ModelError("Flow requires at least one child")

    def __str__(self) -> str:
        rendered = ", ".join(str(c) for c in self.children)
        if self.links:
            rendered += "; links=[%s]" % ", ".join(str(l) for l in self.links)
        return "flow(%s)" % rendered


@dataclass(frozen=True)
class Switch:
    """A guard activity selects one case (or the optional ``otherwise``).

    ``cases`` maps guard outcomes to constructs.  The guard activity runs
    first, then exactly one branch.
    """

    guard: str
    cases: Mapping[str, "Construct"]
    otherwise: Optional["Construct"] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "cases", dict(self.cases))
        if not self.cases:
            raise ModelError("Switch requires at least one case")

    def __str__(self) -> str:
        rendered = ", ".join("%s: %s" % (k, v) for k, v in self.cases.items())
        if self.otherwise is not None:
            rendered += ", otherwise: %s" % self.otherwise
        return "switch(%s; %s)" % (self.guard, rendered)


@dataclass(frozen=True)
class While:
    """A guard activity repeats its body while it evaluates true."""

    guard: str
    body: "Construct"

    def __str__(self) -> str:
        return "while(%s; %s)" % (self.guard, self.body)


Construct = Union[Act, Sequence, Flow, Switch, While]
