"""Ordering semantics of construct trees.

:func:`immediate_orderings` computes the local precedence edges a construct
tree establishes; :func:`implied_orderings` is their transitive closure —
the total set of activity pairs the imperative implementation forces into
sequence.  Comparing this set against what the *dependencies* actually
require is how over-specification (Figure 2's
``invProduction_po -> invProduction_ss``) is detected.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.analysis.graphs import DirectedGraph, transitive_closure
from repro.constructs.ast import Act, Construct, Flow, Sequence, Switch, While
from repro.errors import ModelError

#: An ordering edge: (source, target, condition-or-None).
OrderEdge = Tuple[str, str, Optional[str]]


def activities_of(construct: Construct) -> List[str]:
    """All activity names in the tree, in left-to-right order.

    Raises :class:`ModelError` if an activity appears twice — construct
    trees in this library are single-occurrence (loops repeat a body, they
    do not duplicate it).
    """
    names: List[str] = []

    def visit(node: Construct) -> None:
        if isinstance(node, Act):
            names.append(node.name)
        elif isinstance(node, Sequence) or isinstance(node, Flow):
            for child in node.children:
                visit(child)
        elif isinstance(node, Switch):
            names.append(node.guard)
            for case in node.cases.values():
                visit(case)
            if node.otherwise is not None:
                visit(node.otherwise)
        elif isinstance(node, While):
            names.append(node.guard)
            visit(node.body)
        else:  # pragma: no cover - exhaustive over the union type
            raise ModelError("unknown construct %r" % (node,))

    visit(construct)
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ModelError(
            "activities appear more than once in the construct tree: %s"
            % sorted(duplicates)
        )
    return names


def sources(construct: Construct) -> Set[str]:
    """Activities that can run first within ``construct``."""
    if isinstance(construct, Act):
        return {construct.name}
    if isinstance(construct, Sequence):
        return sources(construct.children[0])
    if isinstance(construct, Flow):
        result: Set[str] = set()
        for child in construct.children:
            result |= sources(child)
        return result
    if isinstance(construct, (Switch, While)):
        return {construct.guard}
    raise ModelError("unknown construct %r" % (construct,))


def sinks(construct: Construct) -> Set[str]:
    """Activities whose completion releases whatever follows ``construct``."""
    if isinstance(construct, Act):
        return {construct.name}
    if isinstance(construct, Sequence):
        return sinks(construct.children[-1])
    if isinstance(construct, Flow):
        result: Set[str] = set()
        for child in construct.children:
            result |= sinks(child)
        return result
    if isinstance(construct, Switch):
        result = set()
        for case in construct.cases.values():
            result |= sinks(case)
        if construct.otherwise is not None:
            result |= sinks(construct.otherwise)
        else:
            # Without an otherwise branch the guard itself may be the last
            # thing to run (no case taken).
            result.add(construct.guard)
        return result
    if isinstance(construct, While):
        # A while loop may iterate zero times: only the guard's completion
        # is guaranteed to precede what follows.
        return {construct.guard}
    raise ModelError("unknown construct %r" % (construct,))


def immediate_orderings(construct: Construct) -> List[OrderEdge]:
    """The local precedence edges of the tree (before transitive closure).

    Switch edges from the guard into a case carry the case's outcome as
    condition; all other edges are unconditional.
    """
    edges: List[OrderEdge] = []

    def visit(node: Construct) -> None:
        if isinstance(node, Act):
            return
        if isinstance(node, Sequence):
            for child in node.children:
                visit(child)
            for earlier, later in zip(node.children, node.children[1:]):
                for sink in sorted(sinks(earlier)):
                    for source in sorted(sources(later)):
                        edges.append((sink, source, None))
            return
        if isinstance(node, Flow):
            for child in node.children:
                visit(child)
            for link in node.links:
                edges.append((link.source, link.target, None))
            return
        if isinstance(node, Switch):
            for outcome, case in node.cases.items():
                visit(case)
                for source in sorted(sources(case)):
                    edges.append((node.guard, source, outcome))
            if node.otherwise is not None:
                visit(node.otherwise)
                for source in sorted(sources(node.otherwise)):
                    edges.append((node.guard, source, None))
            return
        if isinstance(node, While):
            visit(node.body)
            for source in sorted(sources(node.body)):
                edges.append((node.guard, source, "T"))
            return
        raise ModelError("unknown construct %r" % (node,))

    visit(construct)
    return edges


def implied_orderings(construct: Construct) -> Set[Tuple[str, str]]:
    """All activity pairs ``(a, b)`` forced into the order ``a`` before
    ``b`` by the construct tree (conditions dropped; the pair holds in every
    execution where both activities run)."""
    graph = DirectedGraph(nodes=activities_of(construct))
    for source, target, _condition in immediate_orderings(construct):
        graph.add_edge(source, target)
    closure = transitive_closure(graph)
    return {
        (source, target) for source, targets in closure.items() for target in targets
    }
