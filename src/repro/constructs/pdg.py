"""Program Dependency Graph extraction from construct trees.

Implements the paper's claim that imperatively-coded processes "can be
parsed to a dependency graph such as PDG" and then participate in
dependency optimization:

* data dependencies via *reaching definitions* over the CFG — for each use
  of a variable, every definition that reaches it contributes a
  definition-use edge;
* control dependencies via the post-dominator criterion, restricted to
  *guard* activities (fork/join pseudo nodes of parallel flows have
  out-degree > 1 but are not decision points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.constructs.analysis import activities_of
from repro.constructs.ast import Construct
from repro.constructs.cfg import ControlFlowGraph, construct_to_cfg
from repro.deps.registry import DependencySet
from repro.deps.types import Dependency, DependencyKind
from repro.model.process import BusinessProcess

#: A reaching definition: (variable, defining activity).
Definition = Tuple[str, str]


@dataclass
class ProgramDependencyGraph:
    """The extracted PDG: data plus control dependency edges."""

    data_dependencies: List[Dependency] = field(default_factory=list)
    control_dependencies: List[Dependency] = field(default_factory=list)

    def as_dependency_set(self) -> DependencySet:
        merged = DependencySet()
        merged.extend(self.data_dependencies)
        merged.extend(self.control_dependencies)
        return merged


def _reaching_definitions(
    process: BusinessProcess, cfg: ControlFlowGraph
) -> Dict[str, Set[Definition]]:
    """IN sets of the classic reaching-definitions dataflow analysis.

    Pseudo nodes pass definitions through unchanged.
    """
    nodes = cfg.graph.nodes()
    gen: Dict[str, Set[Definition]] = {}
    kill_vars: Dict[str, Set[str]] = {}
    for node in nodes:
        if cfg.is_pseudo(node) or not process.has_activity(node):
            gen[node] = set()
            kill_vars[node] = set()
            continue
        activity = process.activity(node)
        gen[node] = {(variable, node) for variable in activity.writes}
        kill_vars[node] = set(activity.writes)

    in_sets: Dict[str, Set[Definition]] = {node: set() for node in nodes}
    out_sets: Dict[str, Set[Definition]] = {node: set() for node in nodes}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            new_in: Set[Definition] = set()
            for predecessor in cfg.graph.predecessors(node):
                new_in |= out_sets[predecessor]
            new_out = gen[node] | {
                (variable, definer)
                for variable, definer in new_in
                if variable not in kill_vars[node]
            }
            if new_in != in_sets[node] or new_out != out_sets[node]:
                in_sets[node] = new_in
                out_sets[node] = new_out
                changed = True
    return in_sets


def build_pdg(
    process: BusinessProcess, construct: Construct
) -> ProgramDependencyGraph:
    """Extract the PDG of an imperative implementation of ``process``."""
    cfg = construct_to_cfg(construct)
    activities_of(construct)  # validates single occurrence
    in_sets = _reaching_definitions(process, cfg)

    data: List[Dependency] = []
    seen_data: Set[Tuple[str, str]] = set()
    for node in cfg.real_nodes():
        if not process.has_activity(node):
            continue
        activity = process.activity(node)
        for variable in sorted(activity.reads):
            for def_variable, definer in sorted(in_sets[node]):
                if def_variable != variable or definer == node:
                    continue
                key = (definer, node)
                if key in seen_data:
                    continue
                seen_data.add(key)
                data.append(
                    Dependency(
                        DependencyKind.DATA,
                        definer,
                        node,
                        rationale="definition of %r reaches this use (PDG)" % variable,
                    )
                )

    control = structural_control_dependencies(construct)
    return ProgramDependencyGraph(data_dependencies=data, control_dependencies=control)


def structural_control_dependencies(construct: Construct) -> List[Dependency]:
    """Control dependencies read off the construct tree.

    Equivalent to the Ferrante-Ottenstein-Warren criterion on structured
    programs, and — unlike CFG-based post-domination — correct in the
    presence of parallel ``Flow`` regions nested inside switch cases (a
    flow member does not post-dominate the fork node, yet it executes iff
    the case was taken).

    Rules:

    * every activity in a switch case is control dependent on the guard
      with that case's outcome, except activities nested in a *deeper*
      switch/while, which depend on the inner guard instead;
    * while bodies are control dependent on the loop guard with outcome
      ``T``;
    * a switch followed by a sibling in a sequence contributes the paper's
      unconditional "NONE" edge from the guard to the sibling's first
      activities (the join).
    """
    from repro.constructs.analysis import sources as construct_sources
    from repro.constructs.ast import Act, Flow, Sequence, Switch, While

    control: List[Dependency] = []
    seen: Set[Tuple[str, str, Optional[str]]] = set()

    def add(source: str, target: str, condition: Optional[str], why: str) -> None:
        key = (source, target, condition)
        if key not in seen:
            seen.add(key)
            control.append(
                Dependency(
                    DependencyKind.CONTROL, source, target, condition, rationale=why
                )
            )

    def immediate_members(node: Construct) -> List[str]:
        """Activities executing iff ``node`` executes (stop at nested
        decision points, but include the nested guards themselves)."""
        if isinstance(node, Act):
            return [node.name]
        if isinstance(node, (Sequence, Flow)):
            result: List[str] = []
            for child in node.children:
                result.extend(immediate_members(child))
            return result
        if isinstance(node, (Switch, While)):
            return [node.guard]
        return []

    def visit(node: Construct) -> None:
        if isinstance(node, (Sequence, Flow)):
            for child in node.children:
                visit(child)
            if isinstance(node, Sequence):
                for earlier, later in zip(node.children, node.children[1:]):
                    for switch in _trailing_switches(earlier):
                        for source in sorted(construct_sources(later)):
                            add(
                                switch.guard,
                                source,
                                None,
                                "join after switch on %s" % switch.guard,
                            )
            return
        if isinstance(node, Switch):
            for outcome, case in node.cases.items():
                for member in immediate_members(case):
                    add(
                        node.guard,
                        member,
                        outcome,
                        "executes only when %s = %s" % (node.guard, outcome),
                    )
                visit(case)
            if node.otherwise is not None:
                visit(node.otherwise)
            return
        if isinstance(node, While):
            for member in immediate_members(node.body):
                add(node.guard, member, "T", "loop body of %s" % node.guard)
            visit(node.body)
            return

    def _trailing_switches(node: Construct) -> List[Switch]:
        """Switches whose join is the next sequence sibling."""
        if isinstance(node, Switch):
            return [node]
        if isinstance(node, Sequence):
            return _trailing_switches(node.children[-1])
        if isinstance(node, Flow):
            result: List[Switch] = []
            for child in node.children:
                result.extend(_trailing_switches(child))
            return result
        return []

    visit(construct)
    return control
