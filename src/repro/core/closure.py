"""Annotated transitive closure (Definition 3) and equivalence semantics.

The closure of an activity ``a`` is the set of *facts* ``(target,
annotations)``: every node reachable from ``a``, annotated with the
conditional edges on the path (``a1 -> a2 ->_T a3 -> a4`` gives
``a1+ = {a2, a3(T@a2), a4(T@a2)}``).

Three equivalence semantics interpret the annotations (see DESIGN.md):

* ``STRICT`` — the paper's Definitions 3-5 taken literally: facts compare
  by exact (subsumption-normalized) annotation sets.
* ``GUARD_AWARE`` — the default.  Three refinements over strict: (1) facts
  derived through an *intermediate* node carry that node's execution guard
  (a path ``a -> m -> x`` only orders ``a`` before ``x`` when ``m``
  actually runs — dead-path elimination otherwise lets ``x`` start early);
  (2) annotations implied by the execution guards of either endpoint are
  vacuous and stripped; (3) facts whose conditions jointly cover a guard's
  outcome domain merge (``r(T@d)`` + ``r(F@d)`` = ``r``, provided ``d`` is
  certain to execute).  This is the semantics under which the paper's
  Table 2 (40 -> 17 constraints, 23 removed) is reproduced, and the
  scheduler property tests check it preserves every admissible execution
  order at runtime.
* ``REACHABILITY`` — annotations ignored entirely; equivalence degenerates
  to plain reachability (transitive reduction).  May over-remove in
  processes where an ordering genuinely holds on one branch only; provided
  for the ablation benchmark.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.conditions import (
    Annotations,
    Fact,
    is_contradictory,
    merge_complementary,
    normalize_facts,
)
from repro.analysis.graphs import topological_sort
from repro.core.constraints import Constraint, SynchronizationConstraintSet


class Semantics(enum.Enum):
    """How annotations participate in closure-fact comparison."""

    STRICT = "strict"
    GUARD_AWARE = "guard-aware"
    REACHABILITY = "reachability"


def _raw_closure_dag(
    sc: SynchronizationConstraintSet,
    order: List[str],
    through_guards: bool,
) -> Dict[str, FrozenSet[Fact]]:
    """Raw annotated closures of every node, memoized in reverse topo order.

    Sound for acyclic sets only.  Facts are subsumption-normalized at every
    node; normalization commutes with path composition (a stronger fact at a
    successor yields stronger composed facts), so no fact is lost.

    With ``through_guards`` (the guard-aware semantics), a fact derived by
    passing *through* an intermediate node additionally carries that node's
    execution guard: under dead-path elimination, a path ``a -> m -> x``
    only orders ``a`` before ``x`` in executions where ``m`` actually runs —
    if ``m`` is skipped, ``x``'s obligation on ``m`` is vacuously satisfied
    and ``x`` may start before ``a``.
    """
    outgoing: Dict[str, List[Constraint]] = {node: [] for node in sc.nodes}
    for constraint in sc:
        outgoing[constraint.source].append(constraint)

    closures: Dict[str, FrozenSet[Fact]] = {}
    for node in reversed(order):
        facts: Set[Fact] = set()
        for constraint in outgoing.get(node, ()):
            edge_annotation = constraint.annotation
            facts.add((constraint.target, edge_annotation))
            through = edge_annotation
            if through_guards:
                through = through | sc.effective_guard(constraint.target)
            for target, annotations in closures.get(constraint.target, ()):
                combined = through | annotations
                if not is_contradictory(combined):
                    facts.add((target, combined))
        closures[node] = normalize_facts(facts)
    return closures


def _outgoing_index(sc: SynchronizationConstraintSet) -> Dict[str, List[Constraint]]:
    """Adjacency index ``source -> outgoing constraints`` of ``sc``."""
    outgoing: Dict[str, List[Constraint]] = {}
    for constraint in sc:
        outgoing.setdefault(constraint.source, []).append(constraint)
    return outgoing


def _raw_closure_single(
    sc: SynchronizationConstraintSet,
    source: str,
    through_guards: bool,
    outgoing: Optional[Dict[str, List[Constraint]]] = None,
) -> FrozenSet[Fact]:
    """Raw annotated closure of one node via worklist search.

    Handles cyclic sets (needed so that validation can *report* cycles
    rather than crash).  A state ``(node, annotations)`` is expanded only if
    no previously expanded state for the node subsumes it.  See
    :func:`_raw_closure_dag` for ``through_guards``.  Callers computing
    several closures of the *same* set pass a prebuilt ``outgoing`` index
    (:func:`_outgoing_index`) so the adjacency dict is not rebuilt per node.
    """
    if outgoing is None:
        outgoing = _outgoing_index(sc)

    expanded: Dict[str, Set[Annotations]] = {}
    facts: Set[Fact] = set()
    worklist: List[Tuple[str, Annotations]] = [(source, frozenset())]
    while worklist:
        node, annotations = worklist.pop()
        already = expanded.setdefault(node, set())
        if any(previous <= annotations for previous in already):
            continue
        already.add(annotations)
        base = annotations
        if through_guards and node != source:
            base = base | sc.effective_guard(node)
            if is_contradictory(base):
                continue
        for constraint in outgoing.get(node, ()):
            combined = base | constraint.annotation
            if is_contradictory(combined):
                continue
            facts.add((constraint.target, combined))
            worklist.append((constraint.target, combined))
    return normalize_facts(facts)


def _through_guards(semantics: Semantics) -> bool:
    return semantics is Semantics.GUARD_AWARE


def _raw_closures(
    sc: SynchronizationConstraintSet, semantics: Semantics
) -> Dict[str, FrozenSet[Fact]]:
    graph = sc.as_graph()
    through = _through_guards(semantics)
    try:
        order = topological_sort(graph)
    except ValueError:
        outgoing = _outgoing_index(sc)
        return {
            node: _raw_closure_single(sc, node, through, outgoing)
            for node in sc.nodes
        }
    return _raw_closure_dag(sc, order, through)


def _apply_semantics(
    sc: SynchronizationConstraintSet,
    source: str,
    raw: FrozenSet[Fact],
    semantics: Semantics,
) -> FrozenSet[Fact]:
    if semantics is Semantics.STRICT:
        return raw
    if semantics is Semantics.REACHABILITY:
        return frozenset((target, frozenset()) for target, _ in raw)

    # Guard-aware: strip annotations implied by the execution guards of the
    # source and of each fact's target, then merge complementary facts.
    source_guard = sc.effective_guard(source)
    stripped: Set[Fact] = set()
    for target, annotations in raw:
        implied = source_guard | sc.effective_guard(target)
        stripped.add((target, frozenset(annotations) - implied))

    def can_merge(guard: str, base: Annotations, target: str) -> bool:
        # Collapsing (t, base|{(g,v)}) over all v is only sound when g is
        # certain to execute whenever `base` (plus the execution guards of
        # both endpoints, which hold in every run the fact is about) holds;
        # otherwise neither conditional ordering materializes.
        required = sc.effective_guard(guard)
        context = frozenset(base) | source_guard | sc.effective_guard(target)
        return required <= context

    return merge_complementary(stripped, sc.domains, can_merge=can_merge)


def annotated_closure(
    sc: SynchronizationConstraintSet,
    source: str,
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> FrozenSet[Fact]:
    """The closure ``source+`` under the chosen semantics (Definition 3)."""
    raw = _raw_closure_single(sc, source, _through_guards(semantics))
    return _apply_semantics(sc, source, raw, semantics)


def raw_closure(
    sc: SynchronizationConstraintSet,
    source: str,
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> FrozenSet[Fact]:
    """The *raw* (pre-stripping, pre-merging) normalized closure of one node.

    Raw facts compose: a fact of an ancestor that passes through ``source``
    is the ancestor-to-source path joined with one of these facts.  The
    fast minimizer exploits this — if removing an edge leaves the raw
    closure of its source covered, every node's closure is covered under
    any of the three semantics.
    """
    return _raw_closure_single(sc, source, _through_guards(semantics))


def closure_map(
    sc: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
    nodes: Optional[Iterable[str]] = None,
    kernel: bool = True,
) -> Dict[str, FrozenSet[Fact]]:
    """Closures of ``nodes`` (default: all nodes) under ``semantics``.

    With ``kernel`` (the default) closures are computed on the interned
    bitset kernel (:mod:`repro.core.kernel`): annotation sets become
    integer masks, closures are cached per node and only the reachable
    subgraph of the requested nodes is touched.  The result is identical
    fact-for-fact to the reference path (property tested).

    With ``kernel=False`` — or on cyclic sets, where the kernel cannot
    build a topological order — the reference frozenset path runs: on
    acyclic sets a single reverse-topological memoized pass; cyclic sets
    fall back to per-node worklist search.  When ``nodes`` restricts the
    computation to a small subset (as the fast minimizer's ancestor checks
    do), per-node searches are used instead of the full pass.
    """
    wanted = list(nodes) if nodes is not None else sc.nodes
    if kernel:
        from repro.core.session import MinimizationSession

        try:
            session = MinimizationSession(sc, semantics)
        except ValueError:
            pass  # cyclic: reference worklist search below
        else:
            return {node: session.semantic_facts(node) for node in wanted}
    if nodes is not None and len(wanted) * 3 < len(sc.nodes):
        through = _through_guards(semantics)
        outgoing = _outgoing_index(sc)
        return {
            node: _apply_semantics(
                sc, node, _raw_closure_single(sc, node, through, outgoing), semantics
            )
            for node in wanted
        }
    raw_map = _raw_closures(sc, semantics)
    return {
        node: _apply_semantics(sc, node, raw_map.get(node, frozenset()), semantics)
        for node in wanted
    }


def internal_closure_map(
    sc: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
    kernel: bool = True,
) -> Dict[str, FrozenSet[Fact]]:
    """Closures restricted to internal activities on both sides.

    Used to state the correctness of service-dependency translation: the
    translated ``ASC`` must cover exactly the internal-to-internal ordering
    facts of the original ``SC``.
    """
    full = closure_map(sc, semantics, nodes=sc.activities, kernel=kernel)
    internal = set(sc.activities)
    return {
        node: frozenset(
            (target, annotations)
            for target, annotations in facts
            if target in internal
        )
        for node, facts in full.items()
    }
