"""Service dependency translation (Section 4.3, Figure 8).

The merged constraint set ``SC = {A, S, P}`` contains external service-port
nodes.  A process implementation can only sequence its *own* activities, so
constraints through external nodes must be rewritten onto internal
activities, producing the Activity Synchronization Constraint set
``ASC = {A, P}``.

Two mechanisms compose:

1. **Port contraction.**  An *invoke* activity and the port it calls are two
   views of the same event (the invocation's finish *is* the message's
   arrival at the port), so a port with exactly one invoking activity is
   contracted into that activity.  This is what turns the Purchase service's
   internal ordering ``Purchase1 ->s Purchase2`` into the bold Figure 8 edge
   ``invPurchase_po -> invPurchase_si`` — an edge that pure path-bridging
   cannot produce because ``invPurchase_si ->s Purchase2`` points *into* the
   port.
2. **Bridging.**  Every remaining external node (dummy callback ports, or
   ports without a unique invoker) is bypassed: for each path
   ``a -> x1 -> ... -> xk -> b`` whose interior is entirely external, the
   constraint ``a -> b`` is added; then all external nodes and their edges
   are dropped.  External nodes with no internal offspring simply disappear
   (the Production service's ports), which is how the paper's analysis shows
   Figure 2's ``invProduction_po -> invProduction_ss`` sequencing to be
   over-specified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.errors import TranslationError
from repro.model.activity import ActivityKind
from repro.model.process import BusinessProcess


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of service dependency translation.

    ``asc``
        The translated set (no external nodes in any constraint).
    ``bridged``
        Constraints that did not exist before translation — Figure 8's bold
        edges.
    ``dropped``
        Original constraints that touched external nodes and were removed.
    """

    asc: SynchronizationConstraintSet
    bridged: Tuple[Constraint, ...]
    dropped: Tuple[Constraint, ...]


def invoke_bindings_from_process(process: BusinessProcess) -> Dict[str, str]:
    """Map ``port display name -> invoking activity`` for contraction.

    Ports invoked by more than one activity are omitted (they fall back to
    bridging, which is always sound).
    """
    invokers: Dict[str, List[str]] = {}
    for activity in process.activities:
        if activity.kind is ActivityKind.INVOKE and activity.port is not None:
            invokers.setdefault(activity.port.port, []).append(activity.name)
    return {
        port: activities[0]
        for port, activities in invokers.items()
        if len(activities) == 1
    }


def translate_service_dependencies(
    sc: SynchronizationConstraintSet,
    invoke_bindings: Optional[Mapping[str, str]] = None,
) -> TranslationResult:
    """Translate ``SC`` into an ``ASC`` (Section 4.3).

    ``invoke_bindings`` maps external port names to the internal activity
    that invokes them; bound ports are contracted, unbound ones bridged.
    Passing no bindings degenerates to pure bridging (the ablation variant).

    Raises :class:`TranslationError` if a conditional constraint touches an
    external node (cannot arise from the extractors in this library, but a
    hand-built set could contain one and silently dropping the condition
    would be unsound).
    """
    invoke_bindings = dict(invoke_bindings or {})
    external = set(sc.externals)
    internal = set(sc.activities)

    for port, activity in invoke_bindings.items():
        if port not in external:
            raise TranslationError(
                "binding for %r: not an external node of this set" % port
            )
        if activity not in internal:
            raise TranslationError(
                "binding %r -> %r: target is not an internal activity"
                % (port, activity)
            )

    for constraint in sc:
        touches_external = (
            constraint.source in external or constraint.target in external
        )
        if touches_external and constraint.condition is not None:
            raise TranslationError(
                "conditional constraint %s touches an external node; "
                "translation would lose the condition" % constraint
            )

    def resolve(node: str) -> str:
        """Apply port contraction (bound port -> its invoking activity)."""
        return invoke_bindings.get(node, node)

    # Pass 1: contract bound ports.  The binding edge itself
    # (invoker -> port) collapses to a self-loop and is dropped.
    contracted: List[Constraint] = []
    dropped: List[Constraint] = []
    for constraint in sc:
        source = resolve(constraint.source)
        target = resolve(constraint.target)
        if constraint.source in external or constraint.target in external:
            dropped.append(constraint)
        if source == target:
            continue
        contracted.append(Constraint(source, target, constraint.condition))

    # Pass 2: bridge the remaining external nodes.
    still_external = external - set(invoke_bindings)
    successors: Dict[str, Set[Tuple[str, Optional[str]]]] = {}
    for constraint in contracted:
        successors.setdefault(constraint.source, set()).add(
            (constraint.target, constraint.condition)
        )

    offspring_cache: Dict[str, Set[str]] = {}

    def internal_offspring(node: str) -> Set[str]:
        """Internal nodes reachable from external ``node`` through
        exclusively external interior nodes."""
        if node in offspring_cache:
            return offspring_cache[node]
        offspring_cache[node] = set()  # breaks cycles defensively
        found: Set[str] = set()
        for target, _condition in successors.get(node, ()):
            if target in still_external:
                found |= internal_offspring(target)
            else:
                found.add(target)
        offspring_cache[node] = found
        return found

    final: Dict[Tuple[str, str, Optional[str]], Constraint] = {}
    bridged: List[Constraint] = []
    existing_keys = {
        (c.source, c.target, c.condition) for c in contracted
        if c.source not in still_external and c.target not in still_external
    }
    for constraint in contracted:
        source_external = constraint.source in still_external
        target_external = constraint.target in still_external
        if not source_external and not target_external:
            final.setdefault(
                (constraint.source, constraint.target, constraint.condition),
                constraint,
            )
            continue
        if not source_external and target_external:
            for target in internal_offspring(constraint.target):
                if target == constraint.source:
                    raise TranslationError(
                        "bridging %s would create a self-loop on %r"
                        % (constraint, target)
                    )
                key = (constraint.source, target, constraint.condition)
                if key not in final:
                    bridged_constraint = Constraint(*key)
                    final[key] = bridged_constraint
                    if key not in existing_keys:
                        bridged.append(bridged_constraint)
        # Edges starting at an external node are consumed by bridging above.

    asc = SynchronizationConstraintSet(
        activities=sc.activities,
        externals=(),
        constraints=final.values(),
        guards=sc.guards,
        domains=sc.domains,
    )
    # Contracted port-ordering edges that landed between two internal
    # activities (e.g. Purchase1 ->s Purchase2 becoming
    # invPurchase_po -> invPurchase_si) are also "new" translated edges.
    original_internal_keys = {
        (c.source, c.target, c.condition)
        for c in sc
        if c.source in internal and c.target in internal
    }
    extra_bridged = [
        constraint
        for key, constraint in final.items()
        if key not in original_internal_keys
        and constraint not in bridged
    ]
    return TranslationResult(
        asc=asc,
        bridged=tuple(bridged + extra_bridged),
        dropped=tuple(dict.fromkeys(dropped)),
    )


def verify_translation(
    original: SynchronizationConstraintSet,
    result: TranslationResult,
    kernel: bool = True,
) -> bool:
    """Check the Section-4.3 correctness statement of a translation.

    Every internal-to-internal reachability fact of the mixed set must
    survive translation — the ``ASC`` covers the internal projection of the
    original closure.  (Port contraction may *strengthen* the set, so the
    converse need not hold.)  Runs on the bitset closure kernel by default
    (``kernel=False`` for the reference path); used by the differential
    tests and the core perf smoke job.
    """
    from repro.core.closure import Semantics, internal_closure_map
    from repro.core.equivalence import fact_set_covers

    before = internal_closure_map(original, Semantics.REACHABILITY, kernel=kernel)
    after = internal_closure_map(result.asc, Semantics.REACHABILITY, kernel=kernel)
    for activity in original.activities:
        original_facts = before.get(activity, frozenset())
        translated_facts = after.get(activity, frozenset())
        if not fact_set_covers(translated_facts, original_facts):
            return False
    return True
