"""The DSCWeaver pipeline: specification -> optimization -> validation.

This is the vertical flow of the paper: dependencies of all four dimensions
are merged into a uniform DSCL representation (Section 4.2), service
dependencies are translated onto internal activities (Section 4.3), the
result is minimized (Section 4.4), validated by Petri-net analysis, and
finally emitted as BPEL for execution.

:class:`DSCWeaver` exposes the whole flow; :class:`WeaveResult` retains
every intermediate artifact so each paper figure can be inspected:

* ``result.dependencies``  -> Table 1
* ``result.merged``        -> Figure 7
* ``result.translation``   -> Figure 8 (``.bridged`` = the bold edges)
* ``result.minimal``       -> Figure 9
* ``result.report``        -> Table 2
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.core.closure import Semantics
from repro.obs.trace import NOOP_SPAN as _NOOP

if TYPE_CHECKING:
    from repro.obs import Observability
from repro.core.constraints import SynchronizationConstraintSet
from repro.core.kernel import KernelStats
from repro.core.minimize import minimize
from repro.core.report import ReductionReport
from repro.core.translation import (
    TranslationResult,
    invoke_bindings_from_process,
    translate_service_dependencies,
)
from repro.deps.controlflow import extract_control_dependencies
from repro.deps.dataflow import extract_data_dependencies
from repro.deps.registry import DependencySet
from repro.deps.servicedeps import extract_service_dependencies
from repro.deps.types import Dependency
from repro.dscl.ast import Exclusive, HappenBefore, Program
from repro.dscl.compiler import compile_dependencies, dependencies_to_program
from repro.errors import CycleError
from repro.model.process import BusinessProcess


def extract_all_dependencies(
    process: BusinessProcess,
    cooperation: Iterable[Dependency] = (),
    extra: Iterable[Dependency] = (),
) -> DependencySet:
    """Automatic extraction of data/control/service dependencies, merged with
    analyst-supplied cooperation dependencies (Section 3.3, Table 1)."""
    dependencies = DependencySet()
    dependencies.extend(extract_data_dependencies(process))
    dependencies.extend(extract_control_dependencies(process))
    dependencies.extend(cooperation)
    dependencies.extend(extract_service_dependencies(process))
    dependencies.extend(extra)
    return dependencies


@dataclass
class WeaveResult:
    """All artifacts of one weave run (see module docstring)."""

    process: BusinessProcess
    dependencies: DependencySet
    program: Program
    merged: SynchronizationConstraintSet
    translation: TranslationResult
    minimal: SynchronizationConstraintSet
    report: ReductionReport
    fine_grained: List[HappenBefore] = field(default_factory=list)
    exclusives: List[Exclusive] = field(default_factory=list)
    semantics: Semantics = Semantics.GUARD_AWARE
    #: Populated by :meth:`run_lint` (or by ``DSCWeaver(lint=True)``).
    lint_report: Optional[object] = None

    @property
    def asc(self) -> SynchronizationConstraintSet:
        """The translated (pre-minimization) activity constraint set."""
        return self.translation.asc

    def run_lint(self, config=None, construct=None, conversations=()):
        """Run the static analyzer over this result (lazy import).

        Stores the :class:`~repro.lint.diagnostics.LintReport` on
        ``self.lint_report``, folds its severity rollup into
        ``self.report`` and returns it.
        """
        from repro.lint import LintContext, run_lint

        context = LintContext.from_weave(
            self, construct=construct, conversations=conversations
        )
        report = run_lint(context, config)
        self.lint_report = report
        self.report = self.report.with_lint_counts(report.counts_by_severity())
        return report

    def to_bpel(self) -> str:
        """Emit the minimal set as BPEL-style XML (lazy import)."""
        from repro.bpel.emit import emit_bpel

        return emit_bpel(self.process, self.minimal)

    def to_petri_net(self):
        """Translate the minimal set to a workflow Petri net (lazy import)."""
        from repro.petri.from_constraints import constraint_set_to_petri_net

        return constraint_set_to_petri_net(self.minimal)


class DSCWeaver:
    """The weaving engine.

    Parameters
    ----------
    semantics:
        Equivalence semantics for minimization (default guard-aware, the
        mode that reproduces the paper's Table 2).
    algorithm:
        ``"fast"`` (ancestor-pruned) or ``"naive"`` (the paper's Definition
        6 loop verbatim).
    kernel:
        When true (default), minimization runs on the interned bitset
        kernel with a memoized session
        (:class:`~repro.core.session.MinimizationSession`) and its
        counters are attached to ``WeaveResult.report.kernel_stats``;
        ``False`` selects the reference frozenset path.
    check_cycles:
        When true (default), a synchronization cycle in the merged set
        raises :class:`~repro.errors.CycleError` before optimization — the
        static detection of "infinite synchronization sequences" the paper
        attributes to the design stage.
    lint:
        When true, run the :mod:`repro.lint` static analyzer after
        minimization; findings land on ``WeaveResult.lint_report`` and the
        severity rollup on the reduction report.
    obs:
        Optional :class:`~repro.obs.Observability` bundle: per-phase
        ``weave.*`` spans, per-candidate ``core.try_remove`` timing and
        the ``repro_core_*`` kernel counters.  ``None`` (default) keeps
        the pipeline uninstrumented.
    """

    def __init__(
        self,
        semantics: Semantics = Semantics.GUARD_AWARE,
        algorithm: str = "fast",
        kernel: bool = True,
        check_cycles: bool = True,
        lint: bool = False,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.semantics = semantics
        self.algorithm = algorithm
        self.kernel = kernel
        self.check_cycles = check_cycles
        self.lint = lint
        self.obs = obs

    def weave(
        self,
        process: BusinessProcess,
        dependencies: Optional[DependencySet] = None,
        cooperation: Iterable[Dependency] = (),
    ) -> WeaveResult:
        """Run the full pipeline on ``process``.

        Either pass a pre-built ``dependencies`` set (it is validated
        against the process) or let the weaver extract data/control/service
        dependencies automatically and merge in ``cooperation``.
        """
        obs = self.obs
        tracer = obs.tracer if obs is not None else None
        if dependencies is None:
            with tracer.span("weave.extract") if tracer else _NOOP:
                dependencies = extract_all_dependencies(process, cooperation)
        with tracer.span("weave.compile") if tracer else _NOOP:
            compiled = compile_dependencies(process, dependencies)
        merged = compiled.sc

        if self.check_cycles:
            from repro.analysis.graphs import find_cycle

            cycle = find_cycle(merged.as_graph())
            if cycle is not None:
                raise CycleError([str(node) for node in cycle])

        with tracer.span("weave.translate") if tracer else _NOOP:
            translation = translate_service_dependencies(
                merged, invoke_bindings_from_process(process)
            )
        stats = KernelStats() if self.kernel else None
        with tracer.span("weave.minimize") if tracer else _NOOP:
            minimal = minimize(
                translation.asc,
                semantics=self.semantics,
                algorithm=self.algorithm,
                kernel=self.kernel,
                stats=stats,
                obs=obs,
            )
        report = ReductionReport.from_counts(
            dependencies,
            merged=len(merged),
            translated=len(translation.asc),
            minimal=len(minimal),
        )
        if stats is not None and stats.candidates:
            # candidates == 0 means the kernel never ran (naive algorithm,
            # cyclic fallback, or an empty set) — no counters to report.
            report = report.with_kernel_stats(stats.as_dict())
        result = WeaveResult(
            process=process,
            dependencies=dependencies,
            program=dependencies_to_program(dependencies),
            merged=merged,
            translation=translation,
            minimal=minimal,
            report=report,
            fine_grained=compiled.fine_grained,
            exclusives=compiled.exclusives,
            semantics=self.semantics,
        )
        if self.lint:
            with tracer.span("weave.lint") if tracer else _NOOP:
                result.run_lint()
        return result


def weave(
    process: BusinessProcess,
    dependencies: Optional[DependencySet] = None,
    cooperation: Iterable[Dependency] = (),
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> WeaveResult:
    """Module-level convenience wrapper around :class:`DSCWeaver`."""
    return DSCWeaver(semantics=semantics).weave(process, dependencies, cooperation)
