"""Optimization core (Section 4 of the paper).

* :mod:`repro.core.constraints` — ``SC = {A, S, P}`` synchronization
  constraint sets (Definition 1);
* :mod:`repro.core.closure` — annotated transitive closure (Definition 3)
  under three equivalence semantics;
* :mod:`repro.core.kernel` — interned bitset representation of the
  condition algebra (masks, antichain closures, cover tests);
* :mod:`repro.core.session` — memoized minimization sessions with
  incremental closure invalidation on the kernel;
* :mod:`repro.core.equivalence` — set cover and transitive equivalence
  (Definitions 4-5);
* :mod:`repro.core.translation` — service dependency translation producing
  ``ASC = {A, P}`` (Section 4.3, Figure 8);
* :mod:`repro.core.minimize` — the minimal dependency set (Definition 6):
  the paper's naive algorithm plus a fast ancestor-pruned variant, run on
  the kernel by default;
* :mod:`repro.core.pipeline` — the DSCWeaver end-to-end pipeline;
* :mod:`repro.core.report` — Table 2-style reduction reports.
"""

from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.closure import Semantics, annotated_closure, closure_map
from repro.core.equivalence import covers, transitive_equivalent
from repro.core.incremental import add_constraint_incremental, is_covered
from repro.core.kernel import Interner, KernelStats
from repro.core.session import MinimizationSession
from repro.core.translation import translate_service_dependencies, verify_translation
from repro.core.minimize import minimize, minimize_fast, minimize_naive
from repro.core.pipeline import DSCWeaver, WeaveResult
from repro.core.report import ReductionReport

__all__ = [
    "Constraint",
    "DSCWeaver",
    "Interner",
    "KernelStats",
    "MinimizationSession",
    "ReductionReport",
    "Semantics",
    "SynchronizationConstraintSet",
    "WeaveResult",
    "add_constraint_incremental",
    "annotated_closure",
    "closure_map",
    "covers",
    "is_covered",
    "minimize",
    "minimize_fast",
    "minimize_naive",
    "translate_service_dependencies",
    "transitive_equivalent",
    "verify_translation",
]
