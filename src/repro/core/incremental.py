"""Incremental constraint addition — evolution without full re-weaving.

The paper's maintainability argument is that adding a constraint is a
local operation on the dependency set rather than surgery on nested
constructs.  This module makes the *optimization* side of that story
incremental too: given an already-minimal set, adding one constraint only
requires

1. a **redundancy check** — if the new ordering is already covered by the
   minimal set, nothing changes at all;
2. otherwise, adding the constraint and re-examining only the **affected
   candidates**: existing constraints ``u -> v`` can only have become
   redundant if the new edge opens an alternative path between them, i.e.
   ``u`` reaches the new source and the new target reaches ``v``.

The result is provably equivalent to re-minimizing from scratch with the
new constraint appended last; the property test in
``tests/test_core_incremental.py`` verifies exactly that.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.graphs import ancestors as graph_ancestors
from repro.analysis.graphs import descendants as graph_descendants
from repro.core.closure import Semantics, closure_map
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.equivalence import fact_set_covers, transitive_equivalent


def is_covered(
    sc: SynchronizationConstraintSet,
    constraint: Constraint,
    semantics: Semantics = Semantics.GUARD_AWARE,
    kernel: bool = True,
) -> bool:
    """Is ``constraint``'s ordering already implied by ``sc``?

    Compares the constraint's own normalized fact against the closure of
    its source — the same check minimization uses for redundancy.
    """
    reference_set = SynchronizationConstraintSet(
        activities=sc.activities,
        externals=sc.externals,
        constraints=[constraint],
        guards=sc.guards,
        domains=sc.domains,
    )
    source = constraint.source
    reference = closure_map(
        reference_set, semantics, nodes=[source], kernel=kernel
    )[source]
    closure = closure_map(sc, semantics, nodes=[source], kernel=kernel)[source]
    return fact_set_covers(closure, reference)


def add_constraint_incremental(
    minimal: SynchronizationConstraintSet,
    constraint: Constraint,
    semantics: Semantics = Semantics.GUARD_AWARE,
    kernel: bool = True,
) -> SynchronizationConstraintSet:
    """Add one constraint to an already-minimal set, keeping it minimal.

    Returns a new set; the input is never mutated.  If the constraint is
    already covered, the input set is returned unchanged (same object), so
    callers can detect no-ops with ``is``.  ``kernel`` routes the closure
    and equivalence checks through the bitset kernel (default).
    """
    if constraint in minimal:
        return minimal
    if is_covered(minimal, constraint, semantics, kernel=kernel):
        return minimal

    current = minimal.copy()
    current.add(constraint)

    # Only constraints bridging (ancestors of the new source) to
    # (descendants of the new target) can have become redundant.
    graph = current.as_graph()
    affected_sources: Set[str] = {constraint.source} | graph_ancestors(
        graph, constraint.source
    )
    affected_targets: Set[str] = {constraint.target} | graph_descendants(
        graph, constraint.target
    )
    candidates: List[Constraint] = [
        existing
        for existing in current.constraints
        if existing != constraint
        and existing.source in affected_sources
        and existing.target in affected_targets
    ]
    for candidate in candidates:
        without = current.without(candidate)
        check_nodes = [candidate.source] + sorted(
            graph_ancestors(current.as_graph(), candidate.source), key=str
        )
        if transitive_equivalent(
            without, current, semantics, nodes=check_nodes, kernel=kernel
        ):
            current = without
    return current


def remove_requirement(
    minimal: SynchronizationConstraintSet,
    constraint: Constraint,
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> Optional[SynchronizationConstraintSet]:
    """Drop one constraint *requirement* from a minimal set.

    In a minimal set no constraint is redundant, so dropping a requirement
    is simply removing its edge — provided the edge is actually present.
    Returns the smaller set, or ``None`` if the constraint is not a member
    (in that case the requirement was redundant all along and its removal
    cannot be performed locally: the caller should re-weave from the
    updated dependency set, because other edges may have been kept on its
    account).
    """
    if constraint not in minimal:
        return None
    return minimal.without(constraint)
