"""Synchronization constraint sets (Definition 1: ``SC = {A, S, P}``).

A constraint is a (possibly conditional) happen-before between two nodes.
Internal activities live in ``A``; external service ports live in ``S``;
after service-dependency translation ``S`` is empty and the set is an
*Activity Synchronization Constraint* set (``ASC = {A, P}``).

The set also carries the *execution guards* of activities — which branch
outcomes an activity's execution is conditioned on — because the
guard-aware equivalence semantics (DESIGN.md) needs them, and the paper's
Table 2 numbers are only reproducible under that semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.conditions import Cond, ConditionDomains
from repro.analysis.graphs import DirectedGraph
from repro.errors import ConstraintError


@dataclass(frozen=True)
class Constraint:
    """A happen-before constraint ``source -> target`` (Definition 1).

    ``condition`` labels a *conditional* happen-before ``->c``: the ordering
    applies when the **source** activity (a guard) evaluates to
    ``condition``.  ``None`` means unconditional.
    """

    source: str
    target: str
    condition: Optional[str] = None

    def _sort_key(self) -> Tuple[str, str, str]:
        # Unconditional sorts before any condition for the same pair.
        return (self.source, self.target, self.condition or "")

    def __lt__(self, other: "Constraint") -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ConstraintError("constraint endpoints must be non-empty")
        if self.source == self.target:
            raise ConstraintError(
                "self-constraint %r -> %r is not allowed" % (self.source, self.target)
            )

    @property
    def annotation(self) -> FrozenSet[Cond]:
        """The Definition-3 annotation this edge contributes to a path."""
        if self.condition is None:
            return frozenset()
        return frozenset({Cond(self.source, self.condition)})

    def __str__(self) -> str:
        if self.condition is None:
            return "%s -> %s" % (self.source, self.target)
        return "%s ->%s %s" % (self.source, self.condition, self.target)


class SynchronizationConstraintSet:
    """``SC = {A, S, P}`` plus guard metadata.

    Parameters
    ----------
    activities:
        Internal activity names (``A``).
    externals:
        External service-port names (``S``); empty for an ``ASC``.
    constraints:
        The happen-before constraints (``P``).
    guards:
        Direct execution guards: activity -> set of ``(guard, outcome)``
        conditions under which it executes.  Derived from control
        dependencies by the compiler; used by guard-aware equivalence.
    domains:
        Outcome domains of guard activities (boolean by default).
    """

    def __init__(
        self,
        activities: Iterable[str],
        externals: Iterable[str] = (),
        constraints: Iterable[Constraint] = (),
        guards: Optional[Mapping[str, Iterable[Cond]]] = None,
        domains: Optional[ConditionDomains] = None,
    ) -> None:
        self._activities: Dict[str, None] = dict.fromkeys(activities)
        self._externals: Dict[str, None] = dict.fromkeys(externals)
        overlap = set(self._activities) & set(self._externals)
        if overlap:
            raise ConstraintError(
                "names cannot be both internal and external: %s" % sorted(overlap)
            )
        self.domains = domains.copy() if domains is not None else ConditionDomains()
        self._guards: Dict[str, FrozenSet[Cond]] = {}
        if guards:
            for activity, conds in guards.items():
                self._guards[activity] = frozenset(conds)
        self._constraints: Dict[Tuple[str, str, Optional[str]], Constraint] = {}
        for constraint in constraints:
            self.add(constraint)
        self._effective_guards: Optional[Dict[str, FrozenSet[Cond]]] = None

    # -- construction -------------------------------------------------------

    def add(self, constraint: Constraint) -> "SynchronizationConstraintSet":
        for endpoint in (constraint.source, constraint.target):
            if endpoint not in self._activities and endpoint not in self._externals:
                raise ConstraintError(
                    "constraint %s mentions unknown node %r" % (constraint, endpoint)
                )
        key = (constraint.source, constraint.target, constraint.condition)
        self._constraints.setdefault(key, constraint)
        return self

    def remove(self, constraint: Constraint) -> None:
        key = (constraint.source, constraint.target, constraint.condition)
        if key not in self._constraints:
            raise ConstraintError("constraint %s not in set" % constraint)
        del self._constraints[key]

    def replace_constraints(
        self, constraints: Iterable[Constraint]
    ) -> "SynchronizationConstraintSet":
        """A copy of this set with ``P`` replaced (same ``A``, ``S``, guards)."""
        return SynchronizationConstraintSet(
            activities=self._activities,
            externals=self._externals,
            constraints=constraints,
            guards=self._guards,
            domains=self.domains,
        )

    def without(self, constraint: Constraint) -> "SynchronizationConstraintSet":
        """A copy of this set lacking ``constraint``."""
        remaining = [c for c in self.constraints if c != constraint]
        return self.replace_constraints(remaining)

    def copy(self) -> "SynchronizationConstraintSet":
        return self.replace_constraints(self.constraints)

    # -- queries ---------------------------------------------------------------

    @property
    def activities(self) -> List[str]:
        return list(self._activities)

    @property
    def externals(self) -> List[str]:
        return list(self._externals)

    @property
    def nodes(self) -> List[str]:
        return list(self._activities) + list(self._externals)

    @property
    def constraints(self) -> List[Constraint]:
        return list(self._constraints.values())

    @property
    def is_activity_set(self) -> bool:
        """True when no constraint touches an external node (an ``ASC``)."""
        return not any(
            c.source in self._externals or c.target in self._externals
            for c in self._constraints.values()
        )

    def has_constraint(
        self, source: str, target: str, condition: Optional[str] = None
    ) -> bool:
        return (source, target, condition) in self._constraints

    def is_internal(self, node: str) -> bool:
        return node in self._activities

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints.values())

    def __contains__(self, constraint: Constraint) -> bool:
        return (constraint.source, constraint.target, constraint.condition) in self._constraints

    # -- guards -------------------------------------------------------------------

    def guard_of(self, activity: str) -> FrozenSet[Cond]:
        """Direct execution guard of ``activity`` (may be empty)."""
        return self._guards.get(activity, frozenset())

    @property
    def guards(self) -> Dict[str, FrozenSet[Cond]]:
        return dict(self._guards)

    def effective_guard(self, activity: str) -> FrozenSet[Cond]:
        """Transitive execution guard.

        If ``x`` runs only when ``g = v``, and ``g`` itself runs only when
        ``h = w``, then ``x`` runs only when both hold.  Computed once and
        cached; guard cycles are broken defensively (they would indicate a
        malformed model).
        """
        if self._effective_guards is None:
            self._effective_guards = {}
        cached = self._effective_guards.get(activity)
        if cached is not None:
            return cached

        result: Set[Cond] = set()
        worklist = list(self._guards.get(activity, ()))
        visited_guards: Set[str] = {activity}
        while worklist:
            cond = worklist.pop()
            if cond in result:
                continue
            result.add(cond)
            if cond.guard not in visited_guards:
                visited_guards.add(cond.guard)
                worklist.extend(self._guards.get(cond.guard, ()))
        frozen = frozenset(result)
        self._effective_guards[activity] = frozen
        return frozen

    # -- derived views -----------------------------------------------------------

    def as_graph(self) -> DirectedGraph:
        """The underlying plain digraph (annotations dropped)."""
        graph = DirectedGraph(nodes=self.nodes)
        for constraint in self._constraints.values():
            graph.add_edge(constraint.source, constraint.target)
        return graph

    def outgoing(self, node: str) -> List[Constraint]:
        return [c for c in self._constraints.values() if c.source == node]

    def incoming(self, node: str) -> List[Constraint]:
        return [c for c in self._constraints.values() if c.target == node]

    def derive_guards_from_constraints(self) -> Dict[str, FrozenSet[Cond]]:
        """Guards implied by the conditional constraints currently in ``P``.

        Convenience for standalone sets built without a process model: every
        conditional constraint ``g ->v x`` contributes ``(g, v)`` to the
        guard of ``x``.
        """
        derived: Dict[str, Set[Cond]] = {}
        for constraint in self._constraints.values():
            if constraint.condition is not None:
                derived.setdefault(constraint.target, set()).add(
                    Cond(constraint.source, constraint.condition)
                )
        return {activity: frozenset(conds) for activity, conds in derived.items()}

    def with_guards(
        self, guards: Mapping[str, Iterable[Cond]]
    ) -> "SynchronizationConstraintSet":
        """A copy with the guard map replaced."""
        return SynchronizationConstraintSet(
            activities=self._activities,
            externals=self._externals,
            constraints=self.constraints,
            guards={a: frozenset(c) for a, c in guards.items()},
            domains=self.domains,
        )

    def pretty(self) -> str:
        """Multi-line rendering of the set, Figure 7 style."""
        lines = ["A = {%s}" % ", ".join(self._activities)]
        if self._externals:
            lines.append("S = {%s}" % ", ".join(self._externals))
        lines.append("P = {")
        for constraint in sorted(self._constraints.values()):
            lines.append("    %s" % constraint)
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SynchronizationConstraintSet(|A|=%d, |S|=%d, |P|=%d)" % (
            len(self._activities),
            len(self._externals),
            len(self._constraints),
        )
