"""Interned bitset kernel for the constraint algebra.

The frozenset-based condition algebra in :mod:`repro.analysis.conditions`
is the *reference* implementation: facts are ``(str, frozenset[Cond])``
tuples and every subsumption / contradiction / merge test hashes and
compares small frozensets.  Minimization performs millions of those tests,
so this module provides a dense integer representation for the same
algebra:

* activity and port names are interned to consecutive integer ids;
* every :class:`~repro.analysis.conditions.Cond` occupies one bit of an
  arbitrary-precision integer, so an annotation set is a single *mask*;
* a closure is ``dict[int, list[int]]`` — target id mapped to the minimal
  antichain of annotation masks reaching it.

Under this layout the hot operations become machine-int arithmetic:

===========================  =============================================
reference                    kernel
===========================  =============================================
``stronger <= annotations``  ``stronger & mask == stronger``
``is_contradictory(a | b)``  ``a & conflict_of(b) != 0``
``normalize_facts``          :func:`antichain_insert`
``fact_set_covers``          :func:`closure_covers`
``merge_complementary``      bit-parallel fixpoint on masks
===========================  =============================================

Contradiction uses per-bit *conflict masks*: when the bit for ``(g, v)``
is interned, it is marked as conflicting with every previously interned
bit ``(g, w)``, ``w != v``.  A mask is contradictory iff it intersects the
union of the conflict masks of its own bits; the union is memoized per
mask because path composition re-joins the same edge masks repeatedly.

The kernel is exercised through :class:`repro.core.session.MinimizationSession`
and the ``kernel=True`` paths of :mod:`repro.core.closure` /
:mod:`repro.core.minimize`; a hypothesis differential property
(``tests/test_core_kernel.py``) checks it is bit-for-bit equivalent to the
reference algebra under all three semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.analysis.conditions import Annotations, Cond, Fact

#: A closure in kernel form: target id -> minimal antichain of masks.
MaskClosure = Dict[int, List[int]]


@dataclass
class KernelStats:
    """Counters of the kernel's work, surfaced by ``dscweaver minimize --stats``.

    ``closures_computed``
        Per-node raw-closure builds (each composes the cached closures of
        the node's successors).
    ``closure_cache_hits``
        Closure lookups answered from the session cache without any
        recomputation.
    ``subsumption_tests``
        Individual ``stronger & mask == stronger`` bit tests performed by
        cover checks.
    ``candidates``
        Constraints considered for removal by the minimizer.
    ``raw_shortcut_accepts``
        Removals accepted by the raw-closure cover shortcut alone.
    ``cheap_rejects``
        Removals rejected by the single-source semantic pre-test.
    ``full_checks``
        Candidates that reached the ancestor-restricted equivalence check.
    ``removed``
        Constraints actually removed.
    """

    closures_computed: int = 0
    closure_cache_hits: int = 0
    subsumption_tests: int = 0
    candidates: int = 0
    raw_shortcut_accepts: int = 0
    cheap_rejects: int = 0
    full_checks: int = 0
    removed: int = 0

    @property
    def closure_cache_hit_rate(self) -> float:
        """Fraction of closure lookups served from cache (0.0 - 1.0)."""
        total = self.closures_computed + self.closure_cache_hits
        if total == 0:
            return 0.0
        return self.closure_cache_hits / total

    def as_dict(self) -> Dict[str, object]:
        return {
            "closures_computed": self.closures_computed,
            "closure_cache_hits": self.closure_cache_hits,
            "closure_cache_hit_rate": self.closure_cache_hit_rate,
            "subsumption_tests": self.subsumption_tests,
            "candidates": self.candidates,
            "raw_shortcut_accepts": self.raw_shortcut_accepts,
            "cheap_rejects": self.cheap_rejects,
            "full_checks": self.full_checks,
            "removed": self.removed,
        }

    def publish(self, registry) -> None:
        """Add these counters to a :class:`repro.obs.MetricsRegistry`.

        The dataclass stays the typed view; the registry rows
        (``repro_core_<counter>_total``) are the shared exchange format.
        Counters accumulate across repeated minimizations on the same
        registry.
        """
        help_texts = {
            "closures_computed": "Per-node raw-closure builds.",
            "closure_cache_hits": "Closure lookups served from the session cache.",
            "subsumption_tests": "Bitmask subsumption tests in cover checks.",
            "candidates": "Constraints considered for removal.",
            "raw_shortcut_accepts": "Removals accepted by the raw-cover shortcut.",
            "cheap_rejects": "Removals rejected by the semantic pre-test.",
            "full_checks": "Candidates reaching the full ancestor check.",
            "removed": "Constraints actually removed.",
        }
        for name, text in help_texts.items():
            registry.counter("repro_core_%s_total" % name, text).inc(
                getattr(self, name)
            )


@dataclass
class Interner:
    """Dense ids for node names and bit positions for conditions.

    One interner underpins one kernel universe: node ids index the
    adjacency and closure arrays, condition bits compose annotation masks.
    Interning is append-only — removal of a constraint never shrinks the
    universe, which keeps every previously built mask valid.
    """

    _node_ids: Dict[str, int] = field(default_factory=dict)
    _node_names: List[str] = field(default_factory=list)
    _cond_bits: Dict[Cond, int] = field(default_factory=dict)
    _conds: List[Cond] = field(default_factory=list)
    _guard_bits: Dict[str, List[int]] = field(default_factory=dict)
    _conflict: List[int] = field(default_factory=list)
    _conflict_cache: Dict[int, int] = field(default_factory=lambda: {0: 0})

    # -- nodes ---------------------------------------------------------------

    def node_id(self, name: str) -> int:
        """Intern ``name`` and return its dense id."""
        node = self._node_ids.get(name)
        if node is None:
            node = len(self._node_names)
            self._node_ids[name] = node
            self._node_names.append(name)
        return node

    def lookup_node(self, name: str) -> Optional[int]:
        """The id of ``name`` if already interned, else ``None``."""
        return self._node_ids.get(name)

    def node_name(self, node: int) -> str:
        return self._node_names[node]

    def __len__(self) -> int:
        return len(self._node_names)

    # -- conditions ----------------------------------------------------------

    def cond_bit(self, cond: Cond) -> int:
        """Intern ``cond`` and return its bit position.

        Registers the new bit as conflicting with every other value of the
        same guard seen so far, so contradiction stays a mask test.
        """
        bit = self._cond_bits.get(cond)
        if bit is None:
            bit = len(self._conds)
            self._cond_bits[cond] = bit
            self._conds.append(cond)
            siblings = self._guard_bits.setdefault(cond.guard, [])
            conflict = 0
            for other in siblings:
                conflict |= 1 << other
                self._conflict[other] |= 1 << bit
            siblings.append(bit)
            self._conflict.append(conflict)
            # Conflict masks changed; memoized unions may be stale.
            self._conflict_cache = {0: 0}
        return bit

    def lookup_cond(self, cond: Cond) -> Optional[int]:
        """The bit of ``cond`` if already interned, else ``None``."""
        return self._cond_bits.get(cond)

    def cond_of_bit(self, bit: int) -> Cond:
        return self._conds[bit]

    def mask_of(self, annotations: Iterable[Cond]) -> int:
        """Pack an annotation set into a mask (interning as needed)."""
        mask = 0
        for cond in annotations:
            mask |= 1 << self.cond_bit(cond)
        return mask

    def annotations_of(self, mask: int) -> Annotations:
        """Unpack a mask back into a frozenset of conditions."""
        conds = []
        while mask:
            low = mask & -mask
            conds.append(self._conds[low.bit_length() - 1])
            mask ^= low
        return frozenset(conds)

    def conflict_of(self, mask: int) -> int:
        """Union of the conflict masks of every bit in ``mask`` (memoized).

        ``a | b`` is contradictory — for individually consistent ``a`` and
        ``b`` — iff ``a & conflict_of(b)`` is non-zero.
        """
        cached = self._conflict_cache.get(mask)
        if cached is None:
            cached = 0
            m = mask
            conflict = self._conflict
            while m:
                low = m & -m
                cached |= conflict[low.bit_length() - 1]
                m ^= low
            self._conflict_cache[mask] = cached
        return cached

    def is_contradictory(self, mask: int) -> bool:
        """Does ``mask`` bind some guard to two different values?"""
        return bool(mask & self.conflict_of(mask))


# -- antichain closures ------------------------------------------------------


def antichain_insert(masks: List[int], mask: int) -> bool:
    """Insert ``mask`` into a minimal antichain, in place.

    Returns ``False`` (and leaves the list untouched) when an existing mask
    subsumes ``mask``; otherwise removes every mask ``mask`` subsumes and
    appends it.  Mirrors ``normalize_facts`` restricted to one target.
    """
    for existing in masks:
        if existing & mask == existing:
            return False
    masks[:] = [existing for existing in masks if mask & existing != mask]
    masks.append(mask)
    return True


def antichain_covers(masks: Iterable[int], mask: int) -> bool:
    """Is ``mask`` subsumed by some member of a minimal antichain?

    ``existing & mask == existing`` is the subset test: an existing
    (weaker, smaller) mask covers every extension of itself.
    """
    for existing in masks:
        if existing & mask == existing:
            return True
    return False


class AntichainFrontier:
    """Memoized antichain frontiers keyed by an opaque context.

    The verifier uses one frontier per (valuation, skipped, running)
    context: the antichain stores the minimal executed-set masks already
    proven completable, so symmetric interleavings — and repeated
    ``would_strand`` queries over monotonically growing prefixes —
    collapse into a single subset test instead of a re-exploration.
    ``hits``/``misses`` feed the ``repro_verify_memo_*`` metrics.
    """

    def __init__(self) -> None:
        self._chains: Dict[object, List[int]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return sum(len(masks) for masks in self._chains.values())

    def covers(self, key: object, mask: int) -> bool:
        masks = self._chains.get(key)
        if masks is not None and antichain_covers(masks, mask):
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: object, mask: int) -> bool:
        masks = self._chains.setdefault(key, [])
        return antichain_insert(masks, mask)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def closure_insert(closure: MaskClosure, target: int, mask: int) -> bool:
    """Insert the fact ``(target, mask)`` into a kernel closure."""
    masks = closure.get(target)
    if masks is None:
        closure[target] = [mask]
        return True
    return antichain_insert(masks, mask)


def closure_covers(
    covering: MaskClosure,
    covered: MaskClosure,
    stats: Optional[KernelStats] = None,
) -> bool:
    """Kernel twin of ``fact_set_covers``: every covered fact subsumed.

    A mask ``m`` is subsumed by a stronger mask ``s`` when
    ``s & m == s`` (subset test on machine ints).
    """
    tests = 0
    result = True
    for target, masks in covered.items():
        candidates = covering.get(target)
        if not candidates:
            result = False
            break
        for mask in masks:
            found = False
            for stronger in candidates:
                tests += 1
                if stronger & mask == stronger:
                    found = True
                    break
            if not found:
                result = False
                break
        if not result:
            break
    if stats is not None:
        stats.subsumption_tests += tests
    return result


def closures_equal(first: MaskClosure, second: MaskClosure) -> bool:
    """Are two kernel closures the same fact set (order-insensitive)?"""
    if first.keys() != second.keys():
        return False
    return all(
        len(first[target]) == len(second[target])
        and set(first[target]) == set(second[target])
        for target in first
    )


def closure_to_facts(interner: Interner, closure: MaskClosure) -> FrozenSet[Fact]:
    """Convert a kernel closure back to reference ``(name, frozenset)`` facts."""
    return frozenset(
        (interner.node_name(target), interner.annotations_of(mask))
        for target, masks in closure.items()
        for mask in masks
    )
