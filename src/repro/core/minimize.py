"""Minimal synchronization constraint sets (Definition 6).

The paper's algorithm::

    P* = P
    for each partial ordering ai -> aj in P:
        if P* - {ai -> aj} is transitive equivalent to P:
            P* = P* - {ai -> aj}

Three implementations are provided:

* :func:`minimize_naive` — the algorithm verbatim: every candidate removal
  re-checks transitive equivalence over *all* activities.  Quadratic in the
  number of constraints times the closure cost; kept as the reference and
  as the baseline of the scaling benchmark (S1).
* :func:`minimize_fast` with ``kernel=False`` — exploits a structural
  fact: removing the edge ``u -> v`` can only change the closure of ``u``
  and of ``u``'s ancestors (any path using the edge passes through ``u``).
  Equivalence is therefore checked on that (usually small) node set only.
  A cheap pre-test — is the fact ``(v, annotation(e))`` still covered from
  ``u`` without the edge? — rejects most non-removable edges without
  touching the ancestors.
* :func:`minimize_fast` with ``kernel=True`` (the default) — the same
  three-stage check driven through a
  :class:`~repro.core.session.MinimizationSession`: annotations are packed
  into integer bitmasks, closures are cached per node and incrementally
  invalidated on accepted removals, so the per-candidate graph rebuild and
  from-scratch closure recomputation of the reference path disappear.  The
  result is constraint-for-constraint identical to the reference (property
  tested in ``tests/test_core_kernel.py``); cyclic sets fall back to the
  reference path automatically.

All are order-dependent (the minimal set is not unique, as the paper
notes, mirroring minimal covers of functional dependencies); all iterate
constraints in deterministic insertion order so results are reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.analysis.graphs import ancestors as graph_ancestors

if TYPE_CHECKING:
    from repro.obs import Observability
from repro.core.closure import Semantics, annotated_closure, raw_closure
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.equivalence import fact_set_covers, transitive_equivalent
from repro.core.kernel import KernelStats


def _candidate_order(
    sc: SynchronizationConstraintSet, order: Optional[Sequence[Constraint]]
) -> List[Constraint]:
    if order is None:
        return sc.constraints
    ordered = list(order)
    known = set(sc.constraints)
    unknown = [c for c in ordered if c not in known]
    if unknown:
        raise ValueError("order mentions constraints not in the set: %r" % unknown)
    explicit = set(ordered)
    missing = [c for c in sc.constraints if c not in explicit]
    return ordered + missing


def minimize_naive(
    sc: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
    order: Optional[Sequence[Constraint]] = None,
    kernel: bool = False,
) -> SynchronizationConstraintSet:
    """Definition 6, checked globally against the original set each step.

    ``kernel`` routes the per-candidate equivalence checks through the
    bitset closure kernel; it defaults off so this function stays the
    paper-verbatim scaling baseline.
    """
    current = sc.copy()
    for constraint in _candidate_order(sc, order):
        candidate = current.without(constraint)
        if transitive_equivalent(candidate, sc, semantics, kernel=kernel):
            current = candidate
    return current


def _minimize_fast_kernel(
    sc: SynchronizationConstraintSet,
    semantics: Semantics,
    order: Optional[Sequence[Constraint]],
    stats: Optional[KernelStats],
    obs: Optional["Observability"] = None,
) -> Optional[SynchronizationConstraintSet]:
    """Session-driven minimization; ``None`` when the set is cyclic."""
    from repro.core.session import MinimizationSession

    candidates = _candidate_order(sc, order)
    try:
        session = MinimizationSession(sc, semantics, stats=stats, obs=obs)
    except ValueError:
        # The kernel needs a topological order; cyclic sets fall back to
        # the reference path, whose worklist closures tolerate cycles.
        return None
    if obs is None:
        for constraint in candidates:
            session.try_remove(constraint)
    else:
        with obs.tracer.span(
            "core.minimize", constraints=len(sc), semantics=semantics.name
        ):
            for constraint in candidates:
                session.try_remove(constraint)
        if stats is not None:
            stats.publish(obs.metrics)
    return session.to_constraint_set()


def minimize_fast(
    sc: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
    order: Optional[Sequence[Constraint]] = None,
    kernel: bool = True,
    stats: Optional[KernelStats] = None,
    obs: Optional["Observability"] = None,
) -> SynchronizationConstraintSet:
    """Ancestor-pruned minimization.

    Equivalent-to-original is maintained inductively: each accepted removal
    is checked to keep the candidate equivalent to the *current* set, and
    only closures that can have changed (the edge's source and its
    ancestors) are compared.  Closures of all other nodes are untouched by
    the removal, so candidate = current there trivially.

    With ``kernel`` (the default) the check runs on the interned bitset
    kernel with memoized, incrementally invalidated closures; pass
    ``kernel=False`` for the reference frozenset path.  ``stats`` collects
    :class:`~repro.core.kernel.KernelStats` counters on the kernel path.
    """
    if kernel:
        minimized = _minimize_fast_kernel(sc, semantics, order, stats, obs=obs)
        if minimized is not None:
            return minimized
    current = sc.copy()
    for constraint in _candidate_order(sc, order):
        candidate = current.without(constraint)

        # Shortcut: if the *raw* closure of the source is still covered
        # without the edge, coverage propagates compositionally to every
        # ancestor (a fact through the edge is an ancestor-to-source prefix
        # joined with a source fact), so the removal is safe under any
        # semantics — no ancestor check needed.
        raw_before = raw_closure(current, constraint.source, semantics)
        raw_after = raw_closure(candidate, constraint.source, semantics)
        if fact_set_covers(raw_after, raw_before):
            current = candidate
            continue

        # Cheap rejection: without the edge, is its own ordering fact still
        # covered from the source *semantically*?  If not, the edge is
        # certainly needed.
        source_closure = annotated_closure(candidate, constraint.source, semantics)
        reference = annotated_closure(
            current.replace_constraints([constraint]), constraint.source, semantics
        )
        if not fact_set_covers(source_closure, reference):
            continue

        # Full check restricted to the nodes whose closures can change:
        # the source and its ancestors.
        affected = [constraint.source] + sorted(
            graph_ancestors(current.as_graph(), constraint.source),
            key=str,
        )
        if transitive_equivalent(
            candidate, current, semantics, nodes=affected, kernel=False
        ):
            current = candidate
    return current


def minimize(
    sc: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
    order: Optional[Sequence[Constraint]] = None,
    algorithm: str = "fast",
    kernel: bool = True,
    stats: Optional[KernelStats] = None,
    obs: Optional["Observability"] = None,
) -> SynchronizationConstraintSet:
    """Minimize ``sc`` with the chosen algorithm (``"fast"`` or ``"naive"``)."""
    if algorithm == "fast":
        return minimize_fast(sc, semantics, order, kernel=kernel, stats=stats, obs=obs)
    if algorithm == "naive":
        return minimize_naive(sc, semantics, order, kernel=kernel)
    raise ValueError("unknown minimization algorithm %r" % algorithm)


def is_minimal(
    sc: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> bool:
    """Is ``sc`` minimal — no constraint removable without losing equivalence?"""
    for constraint in sc.constraints:
        if transitive_equivalent(sc.without(constraint), sc, semantics):
            return False
    return True
