"""Set cover and transitive equivalence (Definitions 4-5).

``P`` covers ``Q`` iff for every activity, each closure fact under ``Q`` is
subsumed by a fact under ``P`` (same target, annotations at most as strong a
condition set).  Two sets are *transitively equivalent* iff they cover each
other.  Equivalence is always judged under one of the three
:class:`~repro.core.closure.Semantics`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.analysis.conditions import Fact
from repro.core.closure import Semantics, closure_map
from repro.core.constraints import SynchronizationConstraintSet


def fact_set_covers(
    covering: FrozenSet[Fact], covered: FrozenSet[Fact]
) -> bool:
    """Does every fact in ``covered`` have a subsuming fact in ``covering``?

    A fact ``(t, A)`` is subsumed by ``(t, B)`` when ``B <= A`` (the fewer
    the annotations, the stronger the obligation).
    """
    by_target: Dict[str, list] = {}
    for target, annotations in covering:
        by_target.setdefault(target, []).append(annotations)
    for target, annotations in covered:
        candidates = by_target.get(target)
        if not candidates:
            return False
        if not any(stronger <= annotations for stronger in candidates):
            return False
    return True


def covers(
    covering: SynchronizationConstraintSet,
    covered: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
    nodes: Optional[Iterable[str]] = None,
    kernel: bool = True,
) -> bool:
    """Definition 4: ``covering`` covers ``covered``.

    ``nodes`` optionally restricts the check to a subset of activities
    (used by the fast minimizer, which knows removal of an edge can only
    perturb the closures of the edge's source and its ancestors).
    ``kernel`` selects the bitset closure kernel (default) or the
    reference frozenset path; the verdict is identical either way.
    """
    check_nodes = list(nodes) if nodes is not None else covered.nodes
    covered_map = closure_map(covered, semantics, nodes=check_nodes, kernel=kernel)
    covering_map = closure_map(covering, semantics, nodes=check_nodes, kernel=kernel)
    for node in check_nodes:
        if not fact_set_covers(
            covering_map.get(node, frozenset()), covered_map.get(node, frozenset())
        ):
            return False
    return True


def transitive_equivalent(
    first: SynchronizationConstraintSet,
    second: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
    nodes: Optional[Iterable[str]] = None,
    kernel: bool = True,
) -> bool:
    """Definition 5: mutual cover."""
    return covers(first, second, semantics, nodes, kernel=kernel) and covers(
        second, first, semantics, nodes, kernel=kernel
    )
