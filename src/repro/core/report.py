"""Reduction reports — the reproduction of Table 2.

Table 2 of the paper reports the number of dependencies before and after
dependency inference for the Purchasing process: 23 of the 40 original
constraints are removed.  :class:`ReductionReport` records every stage of
the pipeline so the table (and richer variants) can be printed for any
process.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.deps.registry import DependencySet
from repro.deps.types import DependencyKind


@dataclass(frozen=True)
class ReductionReport:
    """Constraint counts at each stage of the weave pipeline.

    ``raw_by_kind``
        Per-category dependency counts, Table 1 style.
    ``raw_total``
        Total dependencies before any processing (Table 2's "before").
    ``merged``
        Unique constraints after uniform DSCL representation (cross-category
        duplicates collapse here).
    ``translated``
        Constraints after service dependency translation (external nodes
        eliminated).
    ``minimal``
        Constraints in the minimal set (Table 2's "after").
    ``lint_counts``
        Optional static-analysis rollup (``info``/``warning``/``error``
        finding counts from :mod:`repro.lint`), attached when the pipeline
        ran with linting enabled.
    ``kernel_stats``
        Optional bitset-kernel counters (closures computed, cache hits,
        subsumption tests — see :class:`repro.core.kernel.KernelStats`),
        attached when minimization ran on the kernel path.
    """

    raw_by_kind: Dict[str, int]
    raw_total: int
    merged: int
    translated: int
    minimal: int
    lint_counts: Optional[Dict[str, int]] = None
    kernel_stats: Optional[Dict[str, object]] = None

    @property
    def removed(self) -> int:
        """Constraints removed relative to the original dependency set."""
        return self.raw_total - self.minimal

    @property
    def removed_by_merge(self) -> int:
        return self.raw_total - self.merged

    @property
    def removed_by_translation(self) -> int:
        return self.merged - self.translated

    @property
    def removed_by_minimization(self) -> int:
        return self.translated - self.minimal

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the original constraints removed (0.0 - 1.0)."""
        if self.raw_total == 0:
            return 0.0
        return self.removed / self.raw_total

    @classmethod
    def from_counts(
        cls,
        dependencies: DependencySet,
        merged: int,
        translated: int,
        minimal: int,
    ) -> "ReductionReport":
        counts = dependencies.counts()
        raw_total = counts.pop("total")
        return cls(
            raw_by_kind=counts,
            raw_total=raw_total,
            merged=merged,
            translated=translated,
            minimal=minimal,
        )

    def with_lint_counts(self, counts: Dict[str, int]) -> "ReductionReport":
        """A copy of this report carrying a lint severity rollup."""
        return replace(self, lint_counts=dict(counts))

    def with_kernel_stats(self, stats: Dict[str, object]) -> "ReductionReport":
        """A copy of this report carrying bitset-kernel counters."""
        return replace(self, kernel_stats=dict(stats))

    def as_table(self) -> str:
        """Text rendering in the spirit of Table 2."""
        lines: List[str] = []
        lines.append("stage                      constraints")
        lines.append("-------------------------  -----------")
        for kind in DependencyKind:
            lines.append(
                "  %-23s  %11d" % (kind.value, self.raw_by_kind.get(kind.value, 0))
            )
        lines.append("%-25s  %11d" % ("original (Table 1)", self.raw_total))
        lines.append("%-25s  %11d" % ("merged (DSCL, Sec 4.2)", self.merged))
        lines.append("%-25s  %11d" % ("translated (Sec 4.3)", self.translated))
        lines.append("%-25s  %11d" % ("minimal (Def 6)", self.minimal))
        lines.append("%-25s  %11d" % ("removed", self.removed))
        if self.lint_counts is not None:
            lines.append(
                "%-25s  %d error(s), %d warning(s), %d info"
                % (
                    "lint",
                    self.lint_counts.get("error", 0),
                    self.lint_counts.get("warning", 0),
                    self.lint_counts.get("info", 0),
                )
            )
        if self.kernel_stats is not None:
            hit_rate = self.kernel_stats.get("closure_cache_hit_rate", 0.0)
            lines.append(
                "%-25s  %s closures, %s cache hits (%.0f%%), %s subsumption tests"
                % (
                    "kernel",
                    self.kernel_stats.get("closures_computed", 0),
                    self.kernel_stats.get("closure_cache_hits", 0),
                    100.0 * float(hit_rate),  # type: ignore[arg-type]
                    self.kernel_stats.get("subsumption_tests", 0),
                )
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "raw_by_kind": dict(self.raw_by_kind),
            "raw_total": self.raw_total,
            "merged": self.merged,
            "translated": self.translated,
            "minimal": self.minimal,
            "removed": self.removed,
            "reduction_ratio": self.reduction_ratio,
        }
        if self.lint_counts is not None:
            payload["lint_counts"] = dict(self.lint_counts)
        if self.kernel_stats is not None:
            payload["kernel_stats"] = dict(self.kernel_stats)
        return payload
