"""Memoized minimization sessions over the interned bitset kernel.

The reference :func:`repro.core.minimize.minimize_fast` treats the
constraint set as immutable: every candidate edge rebuilds
``current.as_graph()``, recomputes ancestor sets, and re-derives raw
closures from scratch.  A :class:`MinimizationSession` keeps one mutable
picture of the evolving set instead:

* adjacency and reverse adjacency are dense ``list[list[_Edge]]`` arrays
  indexed by interned node id, updated in place on each accepted removal;
* raw and semantic closures are cached per node as kernel
  :data:`~repro.core.kernel.MaskClosure` values;
* removing the edge ``u -> v`` can only change the closures of ``u`` and
  of ``u``'s ancestors (any path using the edge passes through ``u``), so
  an accepted removal either installs the freshly computed candidate
  closures for exactly that node set, or marks it dirty for lazy
  recomputation — no other cache entry is touched.

Closure composition is *memoized structurally*: the raw closure of a node
is assembled from the cached closures of its successors (one pass over the
out-edges), so a cache miss costs one composition rather than a graph
search.  Dirty nodes are recomputed in reverse topological order on first
use.

Sessions require an acyclic constraint set (the construction raises
``ValueError`` otherwise); callers fall back to the reference frozenset
path, which handles cycles via worklist search.

Beyond single-shot minimization, a session supports :meth:`~MinimizationSession.rebase`:
after the declared set is edited (constraints added or removed), the
minimization is replayed incrementally — per-candidate decisions recorded
during the previous pass are reused verbatim for every candidate whose
decision provably cannot have changed, and only candidates inside the
edit's dependency region are re-checked.  The result is bit-identical to
cold-minimizing the edited declared set (property-tested in
``tests/test_session_rebase.py``) at a fraction of the cost.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

if TYPE_CHECKING:
    from repro.obs import Observability

from repro.analysis.conditions import Fact
from repro.analysis.graphs import topological_sort
from repro.core.closure import Semantics
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.kernel import (
    Interner,
    KernelStats,
    MaskClosure,
    closure_covers,
    closure_insert,
    closure_to_facts,
)

_EdgeKey = Tuple[str, str, Optional[str]]


@dataclass
class _Edge:
    """One constraint in kernel form (identity is the object itself)."""

    src: int
    tgt: int
    mask: int
    key: _EdgeKey


class MinimizationSession:
    """Incremental closure cache for one constraint set under one semantics.

    The session is the engine behind ``minimize_fast(..., kernel=True)``
    and the kernel path of ``closure_map``; it can also be driven directly:

    >>> session = MinimizationSession(sc, Semantics.GUARD_AWARE)
    >>> session.try_remove(constraint)   # doctest: +SKIP
    >>> session.to_constraint_set()      # doctest: +SKIP
    """

    def __init__(
        self,
        sc: SynchronizationConstraintSet,
        semantics: Semantics = Semantics.GUARD_AWARE,
        stats: Optional[KernelStats] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        order = topological_sort(sc.as_graph())  # ValueError on cycles
        self._sc = sc
        self.semantics = semantics
        self.through_guards = semantics is Semantics.GUARD_AWARE
        self.stats = stats
        self._obs = obs
        if obs is not None:
            self._m_try_remove = obs.metrics.histogram(
                "repro_core_try_remove_seconds",
                "Wall-clock cost of one try_remove, by deciding stage.",
                ("stage",),
            )
        self.interner = Interner()
        interner = self.interner

        for name in sc.nodes:
            interner.node_id(name)
        self._pos: List[int] = [0] * len(interner)
        for position, name in enumerate(order):
            self._pos[interner.node_id(name)] = position

        self._guard_mask: List[int] = [
            interner.mask_of(sc.effective_guard(name)) for name in sc.nodes
        ]
        self._guard_name_masks: Dict[str, int] = {}
        self._domains = sc.domains

        size = len(interner)
        self._out: List[List[_Edge]] = [[] for _ in range(size)]
        self._rin: List[List[_Edge]] = [[] for _ in range(size)]
        self._edges: Dict[_EdgeKey, _Edge] = {}
        for constraint in sc:
            edge = _Edge(
                src=interner.node_id(constraint.source),
                tgt=interner.node_id(constraint.target),
                mask=interner.mask_of(constraint.annotation),
                key=(constraint.source, constraint.target, constraint.condition),
            )
            self._edges[edge.key] = edge
            self._out[edge.src].append(edge)
            self._rin[edge.tgt].append(edge)
        self._removed: Set[_EdgeKey] = set()

        self._raw: List[Optional[MaskClosure]] = [None] * size
        self._sem: List[Optional[MaskClosure]] = [None] * size

        # Per-candidate decision log from the most recent minimization pass,
        # keyed by edge key: (accepted, deciding_stage).  rebase() replays
        # these for candidates outside an edit's dependency region.
        self._decisions: Dict[_EdgeKey, Tuple[bool, str]] = {}

    # -- closures ------------------------------------------------------------

    def raw(self, node: int) -> MaskClosure:
        """The raw (pre-semantics) closure of ``node``, cached.

        Dirty dependencies are recomputed deepest-first, so each composes
        only already-cached successor closures.
        """
        cached = self._raw[node]
        if cached is not None:
            if self.stats is not None:
                self.stats.closure_cache_hits += 1
            return cached
        pending = [node]
        seen = {node}
        dirty = []
        while pending:
            current = pending.pop()
            dirty.append(current)
            for edge in self._out[current]:
                if edge.tgt not in seen and self._raw[edge.tgt] is None:
                    seen.add(edge.tgt)
                    pending.append(edge.tgt)
        dirty.sort(key=self._pos.__getitem__, reverse=True)
        for current in dirty:
            self._raw[current] = self._compose(current)
        return self._raw[node]  # type: ignore[return-value]

    def sem(self, node: int) -> MaskClosure:
        """The semantic closure of ``node`` (raw + strip/merge), cached."""
        cached = self._sem[node]
        if cached is not None:
            if self.stats is not None:
                self.stats.closure_cache_hits += 1
            return cached
        result = self._apply_semantics(node, self.raw(node))
        self._sem[node] = result
        return result

    def semantic_facts(self, name: str) -> FrozenSet[Fact]:
        """The closure of ``name`` as reference facts (``closure_map`` twin)."""
        node = self.interner.lookup_node(name)
        if node is None:
            return frozenset()
        return closure_to_facts(self.interner, self.sem(node))

    def _compose(
        self,
        node: int,
        exclude: Optional[_Edge] = None,
        override: Optional[Dict[int, MaskClosure]] = None,
    ) -> MaskClosure:
        """Build the raw closure of ``node`` from its successors' closures.

        ``exclude`` drops one out-edge (the removal candidate); ``override``
        substitutes candidate closures for affected successors while the
        cache still holds the pre-removal ones.
        """
        if self.stats is not None:
            self.stats.closures_computed += 1
        interner = self.interner
        through_guards = self.through_guards
        guard_mask = self._guard_mask
        facts: MaskClosure = {}
        for edge in self._out[node]:
            if edge is exclude:
                continue
            emask = edge.mask
            closure_insert(facts, edge.tgt, emask)
            through = emask | guard_mask[edge.tgt] if through_guards else emask
            if interner.is_contradictory(through):
                continue
            child = override.get(edge.tgt) if override is not None else None
            if child is None:
                child = self.raw(edge.tgt)
            conflict = interner.conflict_of(through)
            for target, masks in child.items():
                for mask in masks:
                    if mask & conflict:
                        continue
                    closure_insert(facts, target, through | mask)
        return facts

    # -- semantics -----------------------------------------------------------

    def _guard_mask_of_name(self, guard: str) -> int:
        mask = self._guard_name_masks.get(guard)
        if mask is None:
            mask = self.interner.mask_of(self._sc.effective_guard(guard))
            self._guard_name_masks[guard] = mask
        return mask

    def _apply_semantics(self, source: int, raw: MaskClosure) -> MaskClosure:
        if self.semantics is Semantics.STRICT:
            return raw
        if self.semantics is Semantics.REACHABILITY:
            return {target: [0] for target in raw}
        source_guard = self._guard_mask[source]
        guard_mask = self._guard_mask
        stripped: MaskClosure = {}
        for target, masks in raw.items():
            implied = source_guard | guard_mask[target]
            for mask in masks:
                closure_insert(stripped, target, mask & ~implied)
        return self._merge_complementary(source, stripped)

    def _merge_complementary(self, source: int, current: MaskClosure) -> MaskClosure:
        """Kernel twin of ``merge_complementary`` with the guard-aware veto.

        Facts ``(t, base | {(g, v)})`` over every ``v`` in ``g``'s domain
        collapse to ``(t, base)`` — provided ``g`` is certain to execute in
        the fact's context — run to a fixpoint, rescanning after each merge
        exactly like the reference.
        """
        interner = self.interner
        domains = self._domains
        source_guard = self._guard_mask[source]
        changed = True
        while changed:
            changed = False
            by_base: Dict[Tuple[int, int, str], Set[str]] = {}
            for target, masks in current.items():
                for mask in masks:
                    remaining = mask
                    while remaining:
                        low = remaining & -remaining
                        remaining ^= low
                        cond = interner.cond_of_bit(low.bit_length() - 1)
                        by_base.setdefault(
                            (target, mask ^ low, cond.guard), set()
                        ).add(cond.value)
            for (target, base, guard), values in by_base.items():
                if values >= domains.domain(guard):
                    required = self._guard_mask_of_name(guard)
                    context = base | source_guard | self._guard_mask[target]
                    if required & context != required:
                        continue
                    if closure_insert(current, target, base):
                        changed = True
                        break
        return current

    # -- graph maintenance -----------------------------------------------------

    def _ancestors(self, node: int) -> List[int]:
        """Ids of all nodes that reach ``node`` in the current graph."""
        seen: Set[int] = set()
        stack = [edge.src for edge in self._rin[node]]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edge.src for edge in self._rin[current])
        return list(seen)

    def _remove_edge(self, edge: _Edge) -> None:
        self._out[edge.src].remove(edge)
        self._rin[edge.tgt].remove(edge)
        self._removed.add(edge.key)

    def _invalidate_ancestors(self, node: int) -> None:
        for ancestor in self._ancestors(node):
            self._raw[ancestor] = None
            self._sem[ancestor] = None

    # -- minimization -----------------------------------------------------------

    def try_remove(self, constraint: Constraint) -> bool:
        """Remove ``constraint`` if the set stays transitively equivalent.

        Runs the same three-stage check as the reference ``minimize_fast``
        (raw-cover shortcut, single-source semantic pre-test, ancestor-
        restricted equivalence) on cached kernel closures, and commits the
        removal — updating adjacency and exactly the affected cache
        entries — when it succeeds.

        With observability attached, each call is timed and recorded on
        the ``repro_core_try_remove_seconds`` histogram labeled by the
        stage that decided it, plus a ``core.try_remove`` span.
        """
        if self._obs is None:
            return self._try_remove_staged(constraint)[0]
        tracer = self._obs.tracer
        with tracer.span(
            "core.try_remove",
            source=constraint.source,
            target=constraint.target,
        ) as span:
            started = _time.perf_counter()
            accepted, stage = self._try_remove_staged(constraint)
            self._m_try_remove.labels(stage=stage).observe(
                _time.perf_counter() - started
            )
            span.set(stage=stage, accepted=accepted)
        return accepted

    def _try_remove_staged(self, constraint: Constraint) -> Tuple[bool, str]:
        """The three-stage check; returns ``(accepted, deciding_stage)``."""
        key = (constraint.source, constraint.target, constraint.condition)
        decision = self._try_remove_inner(constraint)
        self._decisions[key] = decision
        return decision

    def _try_remove_inner(self, constraint: Constraint) -> Tuple[bool, str]:
        stats = self.stats
        if stats is not None:
            stats.candidates += 1
        edge = self._edges[(constraint.source, constraint.target, constraint.condition)]
        source = edge.src

        raw_before = self.raw(source)
        raw_after = self._compose(source, exclude=edge)
        if closure_covers(raw_after, raw_before, stats):
            # Covered raw closure propagates to every ancestor under any
            # semantics; install the new source closure, lazily dirty the rest.
            self._remove_edge(edge)
            self._raw[source] = raw_after
            self._sem[source] = None
            self._invalidate_ancestors(source)
            if stats is not None:
                stats.raw_shortcut_accepts += 1
                stats.removed += 1
            return True, "raw_shortcut"

        sem_after = self._apply_semantics(source, raw_after)
        single: MaskClosure = {}
        closure_insert(single, edge.tgt, edge.mask)
        sem_single = self._apply_semantics(source, single)
        if not closure_covers(sem_after, sem_single, stats):
            if stats is not None:
                stats.cheap_rejects += 1
            return False, "cheap_reject"

        if stats is not None:
            stats.full_checks += 1
        affected = self._ancestors(source)
        affected.sort(key=self._pos.__getitem__, reverse=True)
        cand_raw: Dict[int, MaskClosure] = {source: raw_after}
        for node in affected:
            cand_raw[node] = self._compose(node, exclude=edge, override=cand_raw)
        cand_sem: Dict[int, MaskClosure] = {source: sem_after}
        for node in affected:
            cand_sem[node] = self._apply_semantics(node, cand_raw[node])
        for node in cand_sem:
            current_sem = self.sem(node)
            candidate_sem = cand_sem[node]
            if not closure_covers(candidate_sem, current_sem, stats):
                return False, "full_check"
            if not closure_covers(current_sem, candidate_sem, stats):
                return False, "full_check"

        self._remove_edge(edge)
        for node, closure in cand_raw.items():
            self._raw[node] = closure
            self._sem[node] = cand_sem[node]
        if stats is not None:
            stats.removed += 1
        return True, "full_check"

    def to_constraint_set(self) -> SynchronizationConstraintSet:
        """The current set (original minus accepted removals, order kept)."""
        remaining = [
            constraint
            for constraint in self._sc.constraints
            if (constraint.source, constraint.target, constraint.condition)
            not in self._removed
        ]
        return self._sc.replace_constraints(remaining)

    # -- rebase ------------------------------------------------------------------

    @staticmethod
    def _reach(starts: Set[int], adjacency: List[List[int]]) -> Set[int]:
        """Nodes reachable from ``starts`` (inclusive) over id adjacency lists."""
        seen = set(starts)
        stack = list(starts)
        while stack:
            node = stack.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen

    def _invalidate_node(self, node: int, raw_only: bool = False) -> None:
        """Drop cached closures of ``node`` and everything that reaches it."""
        self._raw[node] = None
        if not raw_only:
            self._sem[node] = None
        for ancestor in self._ancestors(node):
            self._raw[ancestor] = None
            if not raw_only:
                self._sem[ancestor] = None

    def rebase(
        self,
        added: Tuple[Constraint, ...] = (),
        removed: Tuple[Constraint, ...] = (),
    ) -> SynchronizationConstraintSet:
        """Re-minimize after editing the declared set, reusing prior work.

        ``added`` constraints are appended to the declared set (duplicates of
        surviving constraints are no-ops); ``removed`` constraints are deleted
        from it.  The result — and the session's state afterwards — is
        *bit-identical* to building a fresh session on the edited declared set
        and running the full candidate pass, but most candidates are replayed
        from the recorded decision log instead of re-checked:

        * A candidate's accept/reject decision depends on edges whose source
          lies in ``desc*(anc*(u) ∪ {u})`` for its source ``u`` — but only
          when the recorded decision came from the stage-3 ancestor check.
          Stage-1 (``raw_shortcut``) and stage-2 (``cheap_reject``) decisions
          read nothing beyond ``desc*(u)``.  Candidates are therefore
          re-checked against a *two-tier* dependency region over the union
          of the old and new declared graphs: ``anc*(S)`` (for edit sources
          ``S``) gates stage-1/2 replays, ``desc*(anc*(S))`` gates stage-3
          replays; both grow dynamically when a re-checked decision flips.
        * Accepted removals preserve *semantic* closures exactly (that is the
          minimization invariant), so cached semantic closures survive the
          replay untouched outside the edit region; raw closures survive
          stage-1 (``raw_shortcut``) removals and are invalidated only at the
          ancestors of stage-3 (``full_check``) removal sources.

        Raises ``ValueError`` — leaving the session untouched — when an added
        constraint references an activity the set does not declare, when a
        removal is not part of the declared set, or when the edited set is
        cyclic.  Callers should fall back to a cold minimization then.
        """
        interner = self.interner
        declared = self._sc.constraints
        declared_keys = {(c.source, c.target, c.condition) for c in declared}

        removed_keys: Set[_EdgeKey] = set()
        for constraint in removed:
            key = (constraint.source, constraint.target, constraint.condition)
            if key not in declared_keys:
                raise ValueError(
                    "rebase removal is not in the declared set: %r" % (constraint,)
                )
            removed_keys.add(key)
        known = set(self._sc.nodes)
        additions: List[Constraint] = []
        addition_keys: Set[_EdgeKey] = set()
        for constraint in added:
            if constraint.source not in known or constraint.target not in known:
                raise ValueError(
                    "rebase addition references unknown activities: %r" % (constraint,)
                )
            key = (constraint.source, constraint.target, constraint.condition)
            if key in addition_keys or (
                key in declared_keys and key not in removed_keys
            ):
                continue
            addition_keys.add(key)
            additions.append(constraint)
        if not additions and not removed_keys:
            return self.to_constraint_set()

        survivors = [
            c
            for c in declared
            if (c.source, c.target, c.condition) not in removed_keys
        ]

        # Fast path: every removed edge was *accepted* by the recorded pass
        # (a redundant declared edge — the behavior-preserving edit of a hot
        # redeploy).  Each accepted removal preserved per-node semantic
        # closures, and by monotonicity the edited declared set's closures
        # sit between the post-removal working set's and the full declared
        # set's — so they are identical, every other candidate re-decides
        # exactly as recorded, and the minimal set is unchanged.  The edges
        # are already out of the working graph, so no cache is touched:
        # only the declared set and the decision log shrink.
        if not additions and removed_keys <= self._removed:
            for key in removed_keys:
                del self._edges[key]
                self._removed.discard(key)
                self._decisions.pop(key, None)
            self._sc = self._sc.replace_constraints(survivors)
            return self.to_constraint_set()

        new_sc = self._sc.replace_constraints(survivors + additions)
        order = topological_sort(new_sc.as_graph())  # ValueError on cycles

        # Union-graph adjacency (old ∪ new declared) for region reachability.
        size = len(self._out)
        union_out: List[List[int]] = [[] for _ in range(size)]
        union_rin: List[List[int]] = [[] for _ in range(size)]
        pairs = {(edge.src, edge.tgt) for edge in self._edges.values()}
        pairs.update(
            (interner.node_id(c.source), interner.node_id(c.target))
            for c in additions
        )
        for src, tgt in pairs:
            union_out[src].append(tgt)
            union_rin[tgt].append(src)
        edit_sources = {interner.node_id(c.source) for c in additions}
        edit_sources.update(self._edges[key].src for key in removed_keys)
        up_region = self._reach(edit_sources, union_rin)
        full_region = self._reach(up_region, union_out)

        # Restore every minimization-removed edge: the replay starts from the
        # full declared graph, exactly like a cold pass.  Stage-1 removals
        # left raw closures unchanged as antichains, so only the ancestors of
        # stage-3 removal sources go stale — and only their *raw* caches, the
        # semantic ones being invariant across accepted removals.
        stage3_sources: Set[int] = set()
        for key in self._removed:
            edge = self._edges[key]
            self._out[edge.src].append(edge)
            self._rin[edge.tgt].append(edge)
            if self._decisions.get(key, (True, "full_check"))[1] != "raw_shortcut":
                stage3_sources.add(edge.src)
        self._removed.clear()
        for node in self._reach(
            stage3_sources, [[e.src for e in edges] for edges in self._rin]
        ):
            self._raw[node] = None

        # Apply the edits to the declared graph, invalidating the closures of
        # each edited edge's source and ancestors (both caches: the declared
        # semantics themselves change here).
        for key in removed_keys:
            edge = self._edges.pop(key)
            self._invalidate_node(edge.src)
            self._out[edge.src].remove(edge)
            self._rin[edge.tgt].remove(edge)
        for constraint in additions:
            edge = _Edge(
                src=interner.node_id(constraint.source),
                tgt=interner.node_id(constraint.target),
                mask=interner.mask_of(constraint.annotation),
                key=(constraint.source, constraint.target, constraint.condition),
            )
            self._edges[edge.key] = edge
            self._out[edge.src].append(edge)
            self._rin[edge.tgt].append(edge)
            self._invalidate_node(edge.src)

        self._sc = new_sc
        for position, name in enumerate(order):
            self._pos[interner.node_id(name)] = position

        # Replay: out-of-region candidates reuse the recorded decision (an
        # accepted removal is re-applied without re-checking), in-region
        # candidates run the full three-stage check.  A decision that flips
        # versus the record widens the region for everything downstream.
        decisions: Dict[_EdgeKey, Tuple[bool, str]] = {}
        for constraint in new_sc.constraints:
            key = (constraint.source, constraint.target, constraint.condition)
            edge = self._edges[key]
            stored = self._decisions.get(key)
            if stored is not None:
                accepted, stage = stored
                affected = (
                    edge.src in full_region
                    if stage == "full_check"
                    else edge.src in up_region
                )
                if not affected:
                    if accepted:
                        self._remove_edge(edge)
                        if stage != "raw_shortcut":
                            self._invalidate_node(edge.src, raw_only=True)
                    decisions[key] = stored
                    continue
            decision = self._try_remove_inner(constraint)
            decisions[key] = decision
            if stored is not None and decision[0] != stored[0]:
                flipped_up = self._reach({edge.src}, union_rin)
                up_region |= flipped_up
                full_region |= self._reach(flipped_up, union_out)
        self._decisions = decisions
        return self.to_constraint_set()
