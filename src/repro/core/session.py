"""Memoized minimization sessions over the interned bitset kernel.

The reference :func:`repro.core.minimize.minimize_fast` treats the
constraint set as immutable: every candidate edge rebuilds
``current.as_graph()``, recomputes ancestor sets, and re-derives raw
closures from scratch.  A :class:`MinimizationSession` keeps one mutable
picture of the evolving set instead:

* adjacency and reverse adjacency are dense ``list[list[_Edge]]`` arrays
  indexed by interned node id, updated in place on each accepted removal;
* raw and semantic closures are cached per node as kernel
  :data:`~repro.core.kernel.MaskClosure` values;
* removing the edge ``u -> v`` can only change the closures of ``u`` and
  of ``u``'s ancestors (any path using the edge passes through ``u``), so
  an accepted removal either installs the freshly computed candidate
  closures for exactly that node set, or marks it dirty for lazy
  recomputation — no other cache entry is touched.

Closure composition is *memoized structurally*: the raw closure of a node
is assembled from the cached closures of its successors (one pass over the
out-edges), so a cache miss costs one composition rather than a graph
search.  Dirty nodes are recomputed in reverse topological order on first
use.

Sessions require an acyclic constraint set (the construction raises
``ValueError`` otherwise); callers fall back to the reference frozenset
path, which handles cycles via worklist search.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

if TYPE_CHECKING:
    from repro.obs import Observability

from repro.analysis.conditions import Fact
from repro.analysis.graphs import topological_sort
from repro.core.closure import Semantics
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.kernel import (
    Interner,
    KernelStats,
    MaskClosure,
    closure_covers,
    closure_insert,
    closure_to_facts,
)

_EdgeKey = Tuple[str, str, Optional[str]]


@dataclass
class _Edge:
    """One constraint in kernel form (identity is the object itself)."""

    src: int
    tgt: int
    mask: int
    key: _EdgeKey


class MinimizationSession:
    """Incremental closure cache for one constraint set under one semantics.

    The session is the engine behind ``minimize_fast(..., kernel=True)``
    and the kernel path of ``closure_map``; it can also be driven directly:

    >>> session = MinimizationSession(sc, Semantics.GUARD_AWARE)
    >>> session.try_remove(constraint)   # doctest: +SKIP
    >>> session.to_constraint_set()      # doctest: +SKIP
    """

    def __init__(
        self,
        sc: SynchronizationConstraintSet,
        semantics: Semantics = Semantics.GUARD_AWARE,
        stats: Optional[KernelStats] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        order = topological_sort(sc.as_graph())  # ValueError on cycles
        self._sc = sc
        self.semantics = semantics
        self.through_guards = semantics is Semantics.GUARD_AWARE
        self.stats = stats
        self._obs = obs
        if obs is not None:
            self._m_try_remove = obs.metrics.histogram(
                "repro_core_try_remove_seconds",
                "Wall-clock cost of one try_remove, by deciding stage.",
                ("stage",),
            )
        self.interner = Interner()
        interner = self.interner

        for name in sc.nodes:
            interner.node_id(name)
        self._pos: List[int] = [0] * len(interner)
        for position, name in enumerate(order):
            self._pos[interner.node_id(name)] = position

        self._guard_mask: List[int] = [
            interner.mask_of(sc.effective_guard(name)) for name in sc.nodes
        ]
        self._guard_name_masks: Dict[str, int] = {}
        self._domains = sc.domains

        size = len(interner)
        self._out: List[List[_Edge]] = [[] for _ in range(size)]
        self._rin: List[List[_Edge]] = [[] for _ in range(size)]
        self._edges: Dict[_EdgeKey, _Edge] = {}
        for constraint in sc:
            edge = _Edge(
                src=interner.node_id(constraint.source),
                tgt=interner.node_id(constraint.target),
                mask=interner.mask_of(constraint.annotation),
                key=(constraint.source, constraint.target, constraint.condition),
            )
            self._edges[edge.key] = edge
            self._out[edge.src].append(edge)
            self._rin[edge.tgt].append(edge)
        self._removed: Set[_EdgeKey] = set()

        self._raw: List[Optional[MaskClosure]] = [None] * size
        self._sem: List[Optional[MaskClosure]] = [None] * size

    # -- closures ------------------------------------------------------------

    def raw(self, node: int) -> MaskClosure:
        """The raw (pre-semantics) closure of ``node``, cached.

        Dirty dependencies are recomputed deepest-first, so each composes
        only already-cached successor closures.
        """
        cached = self._raw[node]
        if cached is not None:
            if self.stats is not None:
                self.stats.closure_cache_hits += 1
            return cached
        pending = [node]
        seen = {node}
        dirty = []
        while pending:
            current = pending.pop()
            dirty.append(current)
            for edge in self._out[current]:
                if edge.tgt not in seen and self._raw[edge.tgt] is None:
                    seen.add(edge.tgt)
                    pending.append(edge.tgt)
        dirty.sort(key=self._pos.__getitem__, reverse=True)
        for current in dirty:
            self._raw[current] = self._compose(current)
        return self._raw[node]  # type: ignore[return-value]

    def sem(self, node: int) -> MaskClosure:
        """The semantic closure of ``node`` (raw + strip/merge), cached."""
        cached = self._sem[node]
        if cached is not None:
            if self.stats is not None:
                self.stats.closure_cache_hits += 1
            return cached
        result = self._apply_semantics(node, self.raw(node))
        self._sem[node] = result
        return result

    def semantic_facts(self, name: str) -> FrozenSet[Fact]:
        """The closure of ``name`` as reference facts (``closure_map`` twin)."""
        node = self.interner.lookup_node(name)
        if node is None:
            return frozenset()
        return closure_to_facts(self.interner, self.sem(node))

    def _compose(
        self,
        node: int,
        exclude: Optional[_Edge] = None,
        override: Optional[Dict[int, MaskClosure]] = None,
    ) -> MaskClosure:
        """Build the raw closure of ``node`` from its successors' closures.

        ``exclude`` drops one out-edge (the removal candidate); ``override``
        substitutes candidate closures for affected successors while the
        cache still holds the pre-removal ones.
        """
        if self.stats is not None:
            self.stats.closures_computed += 1
        interner = self.interner
        through_guards = self.through_guards
        guard_mask = self._guard_mask
        facts: MaskClosure = {}
        for edge in self._out[node]:
            if edge is exclude:
                continue
            emask = edge.mask
            closure_insert(facts, edge.tgt, emask)
            through = emask | guard_mask[edge.tgt] if through_guards else emask
            if interner.is_contradictory(through):
                continue
            child = override.get(edge.tgt) if override is not None else None
            if child is None:
                child = self.raw(edge.tgt)
            conflict = interner.conflict_of(through)
            for target, masks in child.items():
                for mask in masks:
                    if mask & conflict:
                        continue
                    closure_insert(facts, target, through | mask)
        return facts

    # -- semantics -----------------------------------------------------------

    def _guard_mask_of_name(self, guard: str) -> int:
        mask = self._guard_name_masks.get(guard)
        if mask is None:
            mask = self.interner.mask_of(self._sc.effective_guard(guard))
            self._guard_name_masks[guard] = mask
        return mask

    def _apply_semantics(self, source: int, raw: MaskClosure) -> MaskClosure:
        if self.semantics is Semantics.STRICT:
            return raw
        if self.semantics is Semantics.REACHABILITY:
            return {target: [0] for target in raw}
        source_guard = self._guard_mask[source]
        guard_mask = self._guard_mask
        stripped: MaskClosure = {}
        for target, masks in raw.items():
            implied = source_guard | guard_mask[target]
            for mask in masks:
                closure_insert(stripped, target, mask & ~implied)
        return self._merge_complementary(source, stripped)

    def _merge_complementary(self, source: int, current: MaskClosure) -> MaskClosure:
        """Kernel twin of ``merge_complementary`` with the guard-aware veto.

        Facts ``(t, base | {(g, v)})`` over every ``v`` in ``g``'s domain
        collapse to ``(t, base)`` — provided ``g`` is certain to execute in
        the fact's context — run to a fixpoint, rescanning after each merge
        exactly like the reference.
        """
        interner = self.interner
        domains = self._domains
        source_guard = self._guard_mask[source]
        changed = True
        while changed:
            changed = False
            by_base: Dict[Tuple[int, int, str], Set[str]] = {}
            for target, masks in current.items():
                for mask in masks:
                    remaining = mask
                    while remaining:
                        low = remaining & -remaining
                        remaining ^= low
                        cond = interner.cond_of_bit(low.bit_length() - 1)
                        by_base.setdefault(
                            (target, mask ^ low, cond.guard), set()
                        ).add(cond.value)
            for (target, base, guard), values in by_base.items():
                if values >= domains.domain(guard):
                    required = self._guard_mask_of_name(guard)
                    context = base | source_guard | self._guard_mask[target]
                    if required & context != required:
                        continue
                    if closure_insert(current, target, base):
                        changed = True
                        break
        return current

    # -- graph maintenance -----------------------------------------------------

    def _ancestors(self, node: int) -> List[int]:
        """Ids of all nodes that reach ``node`` in the current graph."""
        seen: Set[int] = set()
        stack = [edge.src for edge in self._rin[node]]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edge.src for edge in self._rin[current])
        return list(seen)

    def _remove_edge(self, edge: _Edge) -> None:
        self._out[edge.src].remove(edge)
        self._rin[edge.tgt].remove(edge)
        self._removed.add(edge.key)

    def _invalidate_ancestors(self, node: int) -> None:
        for ancestor in self._ancestors(node):
            self._raw[ancestor] = None
            self._sem[ancestor] = None

    # -- minimization -----------------------------------------------------------

    def try_remove(self, constraint: Constraint) -> bool:
        """Remove ``constraint`` if the set stays transitively equivalent.

        Runs the same three-stage check as the reference ``minimize_fast``
        (raw-cover shortcut, single-source semantic pre-test, ancestor-
        restricted equivalence) on cached kernel closures, and commits the
        removal — updating adjacency and exactly the affected cache
        entries — when it succeeds.

        With observability attached, each call is timed and recorded on
        the ``repro_core_try_remove_seconds`` histogram labeled by the
        stage that decided it, plus a ``core.try_remove`` span.
        """
        if self._obs is None:
            return self._try_remove_staged(constraint)[0]
        tracer = self._obs.tracer
        with tracer.span(
            "core.try_remove",
            source=constraint.source,
            target=constraint.target,
        ) as span:
            started = _time.perf_counter()
            accepted, stage = self._try_remove_staged(constraint)
            self._m_try_remove.labels(stage=stage).observe(
                _time.perf_counter() - started
            )
            span.set(stage=stage, accepted=accepted)
        return accepted

    def _try_remove_staged(self, constraint: Constraint) -> Tuple[bool, str]:
        """The three-stage check; returns ``(accepted, deciding_stage)``."""
        stats = self.stats
        if stats is not None:
            stats.candidates += 1
        edge = self._edges[(constraint.source, constraint.target, constraint.condition)]
        source = edge.src

        raw_before = self.raw(source)
        raw_after = self._compose(source, exclude=edge)
        if closure_covers(raw_after, raw_before, stats):
            # Covered raw closure propagates to every ancestor under any
            # semantics; install the new source closure, lazily dirty the rest.
            self._remove_edge(edge)
            self._raw[source] = raw_after
            self._sem[source] = None
            self._invalidate_ancestors(source)
            if stats is not None:
                stats.raw_shortcut_accepts += 1
                stats.removed += 1
            return True, "raw_shortcut"

        sem_after = self._apply_semantics(source, raw_after)
        single: MaskClosure = {}
        closure_insert(single, edge.tgt, edge.mask)
        sem_single = self._apply_semantics(source, single)
        if not closure_covers(sem_after, sem_single, stats):
            if stats is not None:
                stats.cheap_rejects += 1
            return False, "cheap_reject"

        if stats is not None:
            stats.full_checks += 1
        affected = self._ancestors(source)
        affected.sort(key=self._pos.__getitem__, reverse=True)
        cand_raw: Dict[int, MaskClosure] = {source: raw_after}
        for node in affected:
            cand_raw[node] = self._compose(node, exclude=edge, override=cand_raw)
        cand_sem: Dict[int, MaskClosure] = {source: sem_after}
        for node in affected:
            cand_sem[node] = self._apply_semantics(node, cand_raw[node])
        for node in cand_sem:
            current_sem = self.sem(node)
            candidate_sem = cand_sem[node]
            if not closure_covers(candidate_sem, current_sem, stats):
                return False, "full_check"
            if not closure_covers(current_sem, candidate_sem, stats):
                return False, "full_check"

        self._remove_edge(edge)
        for node, closure in cand_raw.items():
            self._raw[node] = closure
            self._sem[node] = cand_sem[node]
        if stats is not None:
            stats.removed += 1
        return True, "full_check"

    def to_constraint_set(self) -> SynchronizationConstraintSet:
        """The current set (original minus accepted removals, order kept)."""
        remaining = [
            constraint
            for constraint in self._sc.constraints
            if (constraint.source, constraint.target, constraint.condition)
            not in self._removed
        ]
        return self._sc.replace_constraints(remaining)
