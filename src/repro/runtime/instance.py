"""One process instance (case) executing against a shared constraint program.

:class:`CaseInstance` is a *stepwise* re-implementation of the single-case
discrete-event engine (:mod:`repro.scheduler.engine`): the coordinator
calls :meth:`step` to process exactly one timed event, so thousands of
cases interleave fairly across shards instead of each monopolizing the
loop until completion.  Under the default lossless retry policy a case's
transition sequence (activities, times, outcomes) is bit-for-bit identical
to ``ConstraintScheduler.run`` — the property the crash-recovery and
minimal-vs-full equivalence tests pin.

Extras over the single-case engine:

* every start/finish/skip is emitted as a conformance
  :class:`~repro.conformance.events.Event` and written to the write-ahead
  journal *before* the in-memory transition is applied;
* recovery mode replays a journaled event prefix, verifying each replayed
  transition record-for-record (``RT003`` on divergence) and re-journaling
  nothing until the prefix is exhausted;
* service invocations go through per-service retry-with-timeout policies
  (``RT001`` when retries are exhausted);
* a case whose event queue drains with unfinished activities fails with
  ``RT004`` (deadlock) instead of raising, so one poisoned case cannot
  take down the runtime;
* an optional :class:`~repro.objects.runtime.CaseHook` wires the case
  into cross-case barriers: activity finishes/skips *contribute* to the
  shared wait index (journaled write-ahead), and barrier-gated activities
  start at ``max(first_ready_time, barrier_release_time)``.  A case whose
  gate is unresolved **parks immediately** — its virtual clock freezes and
  no queued event is processed until :meth:`wake` — and the wake callback
  carries a constant ``-1`` sequence number, so the heap tuple stream is
  bit-for-bit identical whether the barrier resolved before or after the
  case first looked (the property the co-shard-vs-random and
  crash-recovery equivalence tests pin).  With no hook attached every
  object code path is skipped and behavior is unchanged.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.conformance.events import FINISH, SKIP, START, Event
from repro.errors import ProtocolViolation
from repro.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.model.activity import ActivityState
from repro.runtime.journal import COMPLETED, FAILED, Journal
from repro.runtime.program import ConstraintProgram
from repro.runtime.retry import RetryPolicies
from repro.runtime.rules import (
    DEADLOCK,
    JOURNAL_MISMATCH,
    PROTOCOL_FAULT,
    RETRY_EXHAUSTED,
    STRANDED_BARRIER,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.objects.runtime import CaseHook

OutcomeMap = Dict[str, str]


class CaseStatus(enum.Enum):
    ACTIVE = "active"
    COMPLETED = "completed"
    FAILED = "failed"


class _ActivityStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    SKIPPED = "skipped"


class _ReplayMismatch(Exception):
    """Internal: a recovered case diverged from its journaled prefix."""

    def __init__(self, diagnostic: Diagnostic) -> None:
        self.diagnostic = diagnostic
        super().__init__(diagnostic.message)


@dataclass(frozen=True)
class CaseResult:
    """The durable outcome of one case."""

    case: str
    status: str  # "completed" | "failed"
    makespan: float
    outcomes: Tuple[Tuple[str, str], ...]
    executed: Tuple[Tuple[str, float, float], ...]
    skipped: Tuple[str, ...]
    retries: int = 0
    checks: int = 0
    transitions: int = 0
    reason: Optional[str] = None

    def final_state(self) -> Tuple:
        """Canonical comparable snapshot (status, work done, outcomes)."""
        return (
            self.status,
            self.executed,
            self.skipped,
            self.outcomes,
        )


class CaseInstance:
    """All mutable state of one case; shares the read-only program.

    ``fast=True`` (the default, requires ``indexed=True``) serves the case
    on the mask-compiled hot path: per-case state lives in five dense
    integers (pending/running/done/skipped activity masks plus a guard
    valuation mask over the program's interner) and the ready-set fixpoint
    becomes a dirty-set worklist over ``MaskProgram.dependents`` — only
    activities incident to a state change get re-checked, in the same
    scheduling order and pass structure as the reference full scan, so the
    emitted event sequence is bit-for-bit identical.  ``fast=False`` keeps
    the original object-walking evaluation as the differential reference.
    """

    __slots__ = (
        "case", "status", "reason", "retries", "checks", "transitions",
        "diagnostics", "_program", "_outcome_map", "_indexed", "_seed",
        "_policies", "_journal", "_prefix", "_status", "_start_time",
        "_finish_time", "_outcomes", "_skipped", "_running", "_queue",
        "_sequence", "_held_finishes", "_services", "_started", "now",
        "_objects", "_gate_waiting", "_gate_alarms", "_parked", "_fast",
        "_masks", "_pending_m", "_running_m", "_done_m", "_skipped_m",
        "_val_m", "_dirty", "_callback_due", "_gate_check_mask",
    )

    def __init__(
        self,
        case: str,
        program: ConstraintProgram,
        outcomes: Optional[OutcomeMap] = None,
        indexed: bool = True,
        seed: int = 0,
        policies: Optional[RetryPolicies] = None,
        journal: Optional[Journal] = None,
        replay_prefix: Tuple[Event, ...] = (),
        objects: Optional["CaseHook"] = None,
        fast: bool = True,
    ) -> None:
        from repro.scheduler.services import ServiceSimulator

        self.case = case
        self.status = CaseStatus.ACTIVE
        self.reason: Optional[str] = None
        self.retries = 0
        self.checks = 0
        self.transitions = 0
        self.diagnostics: List[Diagnostic] = []

        self._program = program
        self._outcome_map: OutcomeMap = dict(outcomes or {})
        self._indexed = indexed
        self._seed = seed
        self._policies = policies or RetryPolicies()
        self._journal = journal
        self._prefix: List[Event] = list(replay_prefix)

        self._status: Dict[str, _ActivityStatus] = {
            name: _ActivityStatus.PENDING for name in program.activities
        }
        self._start_time: Dict[str, float] = {}
        self._finish_time: Dict[str, float] = {}
        self._outcomes: OutcomeMap = {}
        self._skipped: Set[str] = set()
        self._running: Set[str] = set()
        self._queue: List[Tuple[float, int, str, object]] = []
        self._sequence = itertools.count()
        self._held_finishes: Dict[str, float] = {}
        self._services = ServiceSimulator(program.process, strict=True)
        self._started = False
        self.now = 0.0

        self._objects = objects
        #: activities whose cross-case gate was closed at their ready check.
        self._gate_waiting: Set[str] = set()
        #: activities with a pending gate-release alarm in the queue.
        self._gate_alarms: Set[str] = set()
        self._parked = False

        # The naive (indexed=False) baseline deliberately measures the
        # full-scan object path, so fast only applies on top of the index.
        self._fast = fast and indexed
        self._masks = program.masks()
        self._pending_m = self._masks.all_mask
        self._running_m = 0
        self._done_m = 0
        self._skipped_m = 0
        self._val_m = 0
        #: activities to re-check at the next evaluation round.
        self._dirty = self._masks.all_mask
        #: min-heap of ``(callback time, service)`` — drained into the
        #: dirty set as virtual time passes each pending callback.
        self._callback_due: List[Tuple[float, str]] = []
        gate_mask = 0
        if self._fast and objects is not None:
            for act in self._masks.activities:
                if objects.gate(act.name):
                    gate_mask |= act.bit
        self._gate_check_mask = gate_mask

    @property
    def replaying(self) -> bool:
        """True while a journaled prefix remains to be re-derived.

        The deploy migration probe drives a candidate instance until this
        goes False: a case whose prefix re-derives cleanly under a new
        program version can be hot-upgraded in place.
        """
        return bool(self._prefix)

    @property
    def parked(self) -> bool:
        """True when the case froze on an unresolved cross-case barrier.

        A parked case returned False from :meth:`advance` but is *not*
        done: the coordinator keeps it aside and calls :meth:`wake` when
        its barrier releases (or :meth:`fail_stranded` when it never can).
        """
        return self._parked

    # -- public stepping API -------------------------------------------------

    def advance(self) -> bool:
        """Advance by one unit of work.  Returns True while the case is
        active: the first call runs the t=0 evaluation, each later call
        processes one timed event.  This is the coordinator's entry point —
        it lets freshly admitted and half-done cases share one loop."""
        if not self._started:
            self._started = True
            return self.start()
        return self.step()

    def start(self) -> bool:
        """Run the t=0 ready-set evaluation.  Returns True while active."""
        self._started = True
        try:
            self._evaluate(0.0)
        except _ReplayMismatch as mismatch:
            self._fail(self.now, JOURNAL_MISMATCH, str(mismatch), mismatch.diagnostic)
            return False
        return self._settle()

    def step(self) -> bool:
        """Process one timed event.  Returns True while the case is active."""
        if self.status is not CaseStatus.ACTIVE:
            return False
        if not self._queue:
            return self._settle()
        time, _seq, kind, payload = heapq.heappop(self._queue)
        self.now = time
        try:
            if kind == "finish":
                name = str(payload)
                if self._fine_grained_finish_blocked(name):
                    self._held_finishes[name] = time
                else:
                    self._finish(name, time)
            elif kind == "callback":
                # The message/barrier is now available; re-evaluation below.
                if self._fast and payload == "__objects__":
                    self._dirty |= self._gate_check_mask
            elif kind == "attempt":
                service, port, attempt = payload  # type: ignore[misc]
                self._attempt_invocation(service, port, attempt, time)
            elif kind == "exhausted":
                service, port, attempts = payload  # type: ignore[misc]
                self._fail(
                    time,
                    RETRY_EXHAUSTED,
                    "service %s port %s unreachable after %d attempt(s)"
                    % (service, port, attempts),
                )
                return False
            if self.status is not CaseStatus.ACTIVE:
                return False
            self._evaluate(time)
        except _ReplayMismatch as mismatch:
            self._fail(self.now, JOURNAL_MISMATCH, str(mismatch), mismatch.diagnostic)
            return False
        return self._settle()

    def run_to_completion(self) -> "CaseResult":
        """Drive this case alone (single-case convenience, used by tests)."""
        active = self.start()
        while active:
            active = self.step()
        return self.result()

    def wake(self) -> None:
        """Unpark after a barrier release.

        For every activity that was gate-waiting, schedules a re-check
        callback at ``max(release_time, now)`` — the *virtual* release
        time journaled with the contributions, never the wall-clock wake
        moment — with the constant ``-1`` sequence number, so the
        resulting heap tuples are independent of when (and on which
        shard) the release physically happened.
        """
        if not self._parked:
            return
        self._parked = False
        for name in sorted(self._gate_waiting):
            if name in self._gate_alarms:
                continue
            self._gate_alarms.add(name)
            mask = self._objects.gate(name) if self._objects is not None else 0
            release = (
                self._objects.release_time(mask)
                if self._objects is not None and mask and self._objects.gate_open(mask)
                else self.now
            )
            self._push_gate_alarm(max(release, self.now))
        self._gate_waiting.clear()

    def fail_stranded(self, evidence: Tuple[str, ...] = ()) -> None:
        """Fail a parked case whose barrier can never release (``RT006``)."""
        names = sorted(self._gate_waiting)
        self._parked = False
        message = (
            "case parked forever on cross-case barrier(s) gating: %s"
            % ", ".join(names)
        )
        gate_names: Tuple[str, ...] = ()
        if self._objects is not None and names:
            mask = 0
            for name in names:
                mask |= self._objects.gate(name)
            gate_names = self._objects.gate_names(mask)
        self._fail(
            self.now,
            STRANDED_BARRIER,
            message,
            diagnostic=Diagnostic(
                code=STRANDED_BARRIER,
                severity=Severity.ERROR,
                message="[%s] %s" % (self.case, message),
                location=SourceLocation("case", self.case),
                evidence=(
                    "case: %s" % self.case,
                    "time: %.1f" % self.now,
                )
                + tuple("barrier: %s" % name for name in gate_names)
                + evidence,
            ),
        )

    def fail_migration(self, message: str, diagnostic: Diagnostic) -> None:
        """Fail a case rejected at a hot-swap barrier (``DEP003``).

        Called by the coordinator's :meth:`~Runtime.reject_case` between
        scheduling rounds: the FAILED completion is journaled write-ahead
        exactly like any other terminal failure, so recovery and the
        uncrashed run agree on the case's fate.
        """
        self._parked = False
        self._fail(self.now, diagnostic.code, message, diagnostic)

    @property
    def makespan(self) -> float:
        return max(self._finish_time.values()) if self._finish_time else 0.0

    def result(self) -> CaseResult:
        executed = tuple(
            (name, self._start_time[name], finish)
            for name, finish in sorted(
                self._finish_time.items(), key=lambda kv: (kv[1], kv[0])
            )
        )
        return CaseResult(
            case=self.case,
            status=COMPLETED if self.status is CaseStatus.COMPLETED else FAILED,
            makespan=self.makespan,
            outcomes=tuple(sorted(self._outcomes.items())),
            executed=executed,
            skipped=tuple(sorted(self._skipped)),
            retries=self.retries,
            checks=self.checks,
            transitions=self.transitions,
            reason=self.reason,
        )

    # -- completion / failure ------------------------------------------------

    def _settle(self) -> bool:
        """After an event+evaluation round: decide completed/deadlocked.

        The gate-waiting check comes *before* the queue check on purpose:
        a case parks the moment any activity is gated on an unresolved
        barrier, even with events still queued.  Processing those events
        first would make the emitted sequence depend on how far the case
        got before the barrier physically resolved — i.e. on shard
        placement and crash timing.
        """
        if self.status is not CaseStatus.ACTIVE:
            return False
        if self._gate_waiting:
            self._parked = True
            if self._objects is not None:
                mask = 0
                for name in self._gate_waiting:
                    mask |= self._objects.gate(name)
                self._objects.register_wait(mask)
            return False
        if self._queue:
            return True
        if self._fast:
            live = self._pending_m | self._running_m
            unfinished = sorted(self._masks.names_of(live)) if live else []
        else:
            unfinished = sorted(
                name
                for name, status in self._status.items()
                if status in (_ActivityStatus.PENDING, _ActivityStatus.RUNNING)
            )
        if unfinished or self._held_finishes:
            stuck = unfinished or sorted(self._held_finishes)
            message = "case stalled with unfinished activities: %s" % ", ".join(stuck)
            self._fail(
                self.now,
                DEADLOCK,
                message,
                diagnostic=Diagnostic(
                    code=DEADLOCK,
                    severity=Severity.ERROR,
                    message="[%s] %s" % (self.case, message),
                    location=SourceLocation("case", self.case),
                    evidence=(
                        "case: %s" % self.case,
                        "time: %.1f" % self.now,
                    )
                    + self._deadlock_evidence(stuck),
                ),
            )
            return False
        self.status = CaseStatus.COMPLETED
        if self._journal is not None:
            self._journal.complete(self.case, self.makespan, COMPLETED)
        return False

    def _deadlock_evidence(self, stuck: List[str]) -> Tuple[str, ...]:
        """Per-activity blocking detail for RT004: the unsatisfied mask
        unpacked back into constraint ids via the program's interner, using
        the same phrasing as the verifier's VER001 counterexamples so the
        two reports cross-reference.  Cold path — only runs on failure."""
        masks = self._program.masks()
        resolved = 0
        for name, status in self._status.items():
            if status in (_ActivityStatus.DONE, _ActivityStatus.SKIPPED):
                index = masks.index.get(name)
                if index is not None:
                    resolved |= 1 << index
        evidence: List[str] = []
        for name in stuck:
            if name not in masks.index:
                continue
            if self._status.get(name) is _ActivityStatus.RUNNING:
                evidence.append("%s is RUNNING but its finish is gated" % name)
                continue
            if self._fate(name) is None:
                waiting = sorted(
                    cond.guard
                    for cond in self._program.guards.get(name, frozenset())
                )
                evidence.append(
                    "%s waits on undecided guard(s) %s" % (name, ", ".join(waiting))
                )
                continue
            blockers = masks.blocking_constraints(name, resolved)
            if blockers:
                evidence.append(
                    "%s blocked by unsatisfied constraint(s): %s"
                    % (name, ", ".join(str(c) for c in blockers))
                )
            elif not self._message_ready(name, self.now):
                evidence.append(
                    "%s awaits a service callback that never arrived" % name
                )
            elif self._exclusive_blocked(name):
                evidence.append("%s blocked by a RUNNING exclusive partner" % name)
            elif self._fine_grained_start_blocked(name):
                evidence.append("%s start-gated by a fine-grained dependency" % name)
            else:
                evidence.append("%s is blocked" % name)
        return tuple(evidence)

    def _fail(
        self,
        time: float,
        code: str,
        message: str,
        diagnostic: Optional[Diagnostic] = None,
    ) -> None:
        if self.status is CaseStatus.FAILED:
            return  # already failed (and journaled) with the first cause
        self.status = CaseStatus.FAILED
        self.reason = message
        self._queue.clear()
        self.diagnostics.append(
            diagnostic
            if diagnostic is not None
            else Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message="[%s] %s" % (self.case, message),
                location=SourceLocation("case", self.case),
                evidence=("case: %s" % self.case, "time: %.1f" % time),
            )
        )
        if self._journal is not None:
            self._journal.complete(self.case, time, FAILED, reason=message)

    # -- WAL emission --------------------------------------------------------

    def _emit(self, activity: str, lifecycle: str, time: float,
              outcome: Optional[str] = None) -> None:
        self.transitions += 1
        event = Event(
            self.case,
            activity,
            lifecycle,
            time,
            outcome=outcome,
            attrs=self._objects.attrs if self._objects is not None else (),
        )
        if self._prefix:
            expected = self._prefix.pop(0)
            if (
                expected.activity != event.activity
                or expected.lifecycle != event.lifecycle
                or expected.outcome != event.outcome
                or expected.time != event.time
            ):
                raise _ReplayMismatch(
                    Diagnostic(
                        code=JOURNAL_MISMATCH,
                        severity=Severity.ERROR,
                        message="[%s] recovery diverged from journal: "
                        "journal has %s, re-execution produced %s"
                        % (self.case, expected, event),
                        location=SourceLocation("case", self.case),
                        evidence=(
                            "journaled: %s" % expected,
                            "replayed:  %s" % event,
                        ),
                    )
                )
            return  # already durably journaled before the crash
        if self._journal is not None:
            self._journal.event(event)

    # -- fate & readiness (mirrors repro.scheduler.engine) -------------------

    def _resolve_outcome(self, guard: str) -> str:
        domain = self._program.outcome_domain(guard)
        value = self._outcome_map.get(guard, "T" if "T" in domain else domain[-1])
        if value not in domain:
            self._fail(
                self.now,
                DEADLOCK,
                "outcome %r not in domain %s of guard %r" % (value, domain, guard),
            )
            raise _ReplayMismatch(self.diagnostics[-1])
        return value

    def _fate(self, name: str) -> Optional[bool]:
        """True = will run, False = must skip, None = undecided."""
        for condition in self._program.guards.get(name, frozenset()):
            guard_status = self._status.get(condition.guard)
            if guard_status is _ActivityStatus.SKIPPED:
                return False
            if guard_status is _ActivityStatus.DONE:
                if self._outcomes.get(condition.guard) != condition.value:
                    return False
            else:
                return None
        return True

    def _constraints_satisfied(self, name: str) -> bool:
        if self._indexed:
            constraints = self._program.incoming[name]
        else:
            # Naive baseline: scan the whole program per evaluation.
            self.checks += len(self._program.constraints)
            constraints = tuple(
                c for c in self._program.constraints if c.target == name
            )
        for constraint in constraints:
            if self._indexed:
                self.checks += 1
            status = self._status[constraint.source]
            if status not in (_ActivityStatus.DONE, _ActivityStatus.SKIPPED):
                return False
        return True

    def _message_ready(self, name: str, now: float) -> bool:
        awaits = self._program.info[name].awaits
        if awaits is None:
            return True
        return self._services.message_available(awaits, now)

    def _exclusive_blocked(self, name: str) -> bool:
        for partner in self._program.exclusive_partners.get(name, ()):
            if partner in self._running:
                return True
        return False

    def _fine_grained_start_blocked(self, name: str) -> bool:
        for hb in self._program.fine_on_start.get(name, ()):
            if self._vacuous(hb):
                continue
            if hb.left.activity not in self._start_time and hb.left.state in (
                ActivityState.START,
                ActivityState.RUN,
            ):
                return True
            if (
                hb.left.state is ActivityState.FINISH
                and hb.left.activity not in self._finish_time
            ):
                return True
        return False

    def _fine_grained_finish_blocked(self, name: str) -> bool:
        for hb in self._program.fine_on_finish.get(name, ()):
            if self._vacuous(hb):
                continue
            left = hb.left.activity
            if hb.left.state is ActivityState.FINISH:
                if left not in self._finish_time:
                    return True
            elif left not in self._start_time:
                return True
        return False

    def _vacuous(self, hb) -> bool:
        return self._status.get(hb.left.activity) is _ActivityStatus.SKIPPED

    # -- transitions ---------------------------------------------------------

    def _push(self, time: float, kind: str, payload: object) -> None:
        heapq.heappush(self._queue, (time, next(self._sequence), kind, payload))

    def _push_gate_alarm(self, time: float) -> None:
        # Constant -1 sequence: the alarm neither consumes the sequence
        # counter nor ties unpredictably with ordinary pushes, so heap
        # order is identical whether the barrier resolved before or after
        # this case first checked its gate.
        heapq.heappush(self._queue, (time, -1, "callback", "__objects__"))

    def _start(self, name: str, now: float) -> None:
        self._emit(name, START, now)
        self._status[name] = _ActivityStatus.RUNNING
        self._start_time[name] = now
        self._running.add(name)
        if self._fast:
            masks = self._masks
            position = masks.index[name]
            bit = 1 << position
            self._pending_m &= ~bit
            self._running_m |= bit
            self._dirty |= masks.dependents[position]
        self._push(now + self._program.info[name].duration, "finish", name)

    def _finish(self, name: str, now: float) -> None:
        outcome: Optional[str] = None
        if self._program.info[name].is_guard:
            outcome = self._resolve_outcome(name)
        if self._objects is not None and not self._prefix:
            # Write-ahead: the obligation record must be durable before
            # the finish event that implies it.  During prefix replay the
            # contributions were already pre-applied from the journal.
            self._objects.contribute(name, "satisfy", now)
            self._objects.once(name, now)
        self._emit(name, FINISH, now, outcome=outcome)
        self._status[name] = _ActivityStatus.DONE
        self._finish_time[name] = now
        self._running.discard(name)
        if outcome is not None:
            self._outcomes[name] = outcome
        if self._fast:
            masks = self._masks
            position = masks.index[name]
            bit = 1 << position
            self._pending_m &= ~bit
            self._running_m &= ~bit
            self._done_m |= bit
            if outcome is not None:
                for value, value_mask in masks.activities[position].outcome_bits:
                    if value == outcome:
                        self._val_m |= value_mask
                        break
            self._dirty |= masks.dependents[position]
        self._register_invocation(name, now)
        self._release_held_finishes(now)

    def _skip(self, name: str, now: float) -> None:
        if self._objects is not None and not self._prefix:
            self._objects.contribute(name, "cancel", now)
        self._emit(name, SKIP, now)
        self._status[name] = _ActivityStatus.SKIPPED
        self._skipped.add(name)
        if self._fast:
            masks = self._masks
            position = masks.index[name]
            self._pending_m &= ~(1 << position)
            self._skipped_m |= 1 << position
            self._dirty |= masks.dependents[position]
        self._release_held_finishes(now)

    def _release_held_finishes(self, now: float) -> None:
        for name in list(self._held_finishes):
            if not self._fine_grained_finish_blocked(name):
                del self._held_finishes[name]
                self._finish(name, now)

    # -- remote services with retry ------------------------------------------

    def _register_invocation(self, name: str, now: float) -> None:
        invokes = self._program.info[name].invokes
        if invokes is None:
            return
        service, port = invokes
        self._attempt_invocation(service, port, 1, now)

    def _attempt_invocation(
        self, service: str, port: str, attempt: int, now: float
    ) -> None:
        policy = self._policies.for_service(service)
        if policy.attempt_delivered(self._seed, self.case, service, port, attempt):
            try:
                callback = self._services.invoke(service, port, now)
            except ProtocolViolation as violation:
                self._fail(now, PROTOCOL_FAULT, str(violation))
                return
            if callback is not None:
                self._push(callback, "callback", service)
                if self._fast:
                    if callback <= now:
                        # Zero-latency callback: the reference full scan
                        # would see the message this very round.
                        self._dirty |= self._masks.awaiters.get(service, 0)
                    else:
                        heapq.heappush(self._callback_due, (callback, service))
            return
        if attempt < policy.max_attempts:
            self.retries += 1
            self._push(now + policy.timeout, "attempt", (service, port, attempt + 1))
        else:
            self._push(
                now + policy.timeout, "exhausted", (service, port, attempt)
            )

    # -- the ready-set fixpoint ----------------------------------------------

    def _evaluate(self, now: float) -> None:
        """Start or skip every pending activity that can move; repeats to a
        fixpoint because skips cascade instantly."""
        if self._fast:
            self._evaluate_fast(now)
            return
        moved = True
        while moved and self.status is CaseStatus.ACTIVE:
            moved = False
            for name in self._program.activities:
                if self._status[name] is not _ActivityStatus.PENDING:
                    continue
                fate = self._fate(name)
                if fate is False:
                    self._gate_waiting.discard(name)
                    self._gate_alarms.discard(name)
                    self._skip(name, now)
                    moved = True
                    continue
                if fate is None:
                    continue
                if not self._constraints_satisfied(name):
                    continue
                if not self._message_ready(name, now):
                    continue
                if self._exclusive_blocked(name):
                    continue
                if self._fine_grained_start_blocked(name):
                    continue
                if self._gate_blocked(name, now):
                    continue
                self._start(name, now)
                moved = True

    def _evaluate_fast(self, now: float) -> None:
        """Dirty-set worklist twin of the full-scan fixpoint above.

        A reference pass is an ascending scan over *all* pending activities;
        here a pass is an ascending drain of the dirty set.  Equality of the
        emitted sequence follows from two invariants: every readiness/fate
        test is a pure function of state the ``dependents`` table tracks (so
        an activity that was checked and did not move cannot move until one
        of its inputs transitions), and a transition at position ``p`` routes
        the freshly dirtied bits above ``p`` into the *current* pass (the
        full scan would still reach them this pass) while bits at or below
        ``p`` wait for the next pass — exactly the visibility the reference
        scan gives them.  Message readiness is the one time-dependent test;
        the ``_callback_due`` heap re-dirties awaiting activities as virtual
        time passes each pending callback.
        """
        masks = self._masks
        due = self._callback_due
        while due and due[0][0] <= now:
            self._dirty |= masks.awaiters.get(heapq.heappop(due)[1], 0)
        activities = masks.activities
        services = self._services
        gate_mask = self._gate_check_mask
        foreign = masks.foreign_start_gate_mask
        while self.status is CaseStatus.ACTIVE:
            current = self._dirty & self._pending_m
            self._dirty = 0
            if not current:
                break
            while current and self.status is CaseStatus.ACTIVE:
                low = current & -current
                current ^= low
                if not (low & self._pending_m):
                    continue  # resolved by an earlier cascade this pass
                act = activities[low.bit_length() - 1]
                fate: Optional[bool] = True
                for guard_bit, value_bit in act.fate_checks:
                    if guard_bit & self._skipped_m:
                        fate = False
                        break
                    if guard_bit & self._done_m:
                        if not (self._val_m & value_bit):
                            fate = False
                            break
                    else:
                        fate = None
                        break
                if fate is None:
                    continue
                if fate is False:
                    name = act.name
                    self._gate_waiting.discard(name)
                    self._gate_alarms.discard(name)
                    self._skip(name, now)
                else:
                    self.checks += 1
                    if act.pred_mask & ~(self._done_m | self._skipped_m):
                        continue
                    service = act.awaits_service
                    if service is not None and not services.message_available(
                        service, now
                    ):
                        continue
                    if act.exclusive_mask & self._running_m:
                        continue
                    if (act.bit & foreign) or (
                        act.start_gates
                        and masks.start_blocked(
                            act, self._done_m, self._running_m, self._skipped_m
                        )
                    ):
                        continue
                    if (act.bit & gate_mask) and self._gate_blocked(act.name, now):
                        continue
                    self._start(act.name, now)
                # A transition happened (and may have cascaded through held
                # finishes): route the dirt it produced.
                changed = self._dirty
                if changed:
                    below_eq = (low << 1) - 1
                    current |= changed & ~below_eq & self._pending_m
                    self._dirty = changed & below_eq

    def _gate_blocked(self, name: str, now: float) -> bool:
        """Cross-case barrier check for ``name``; the last readiness gate.

        Unresolved barrier -> record the activity as gate-waiting (the
        case parks in ``_settle``).  Resolved with a release time in the
        future -> schedule the start via a ``-1``-sequence alarm, so the
        activity starts at exactly ``max(first_ready, release)`` with a
        heap footprint independent of resolution timing.
        """
        if self._objects is None:
            return False
        mask = self._objects.gate(name)
        if not mask:
            return False
        if not self._objects.gate_open(mask):
            self._gate_waiting.add(name)
            return True
        self._gate_waiting.discard(name)
        release = self._objects.release_time(mask)
        if release > now:
            if name not in self._gate_alarms:
                self._gate_alarms.add(name)
                self._push_gate_alarm(release)
            return True
        self._gate_alarms.discard(name)
        return False
