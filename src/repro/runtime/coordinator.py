"""The multi-case coordination runtime.

:class:`Runtime` admits process instances (cases) against a single
compiled :class:`~repro.runtime.program.ConstraintProgram`, places them on
hash shards, and drives them in interleaved batches: each scheduling round
takes a batch of runnable cases per shard and advances every case by
exactly one discrete event.  Every lifecycle transition is written ahead
to the JSONL journal; :meth:`Runtime.recover` rebuilds a crashed runtime
from that journal — completed cases are never re-run, in-flight cases are
re-executed deterministically while their journaled prefix is verified
record-for-record (``RT003`` on divergence).

Object-centric serving (an :class:`~repro.objects.model.ObjectSpec` plus
per-case :class:`~repro.objects.model.ObjectBinding`\\ s) adds cross-case
barriers on top: cases co-shard by object key (``co_shard=False`` falls
back to case-id placement as the comparison baseline), a case whose
barrier is unresolved parks outside the run queues until a contribution —
possibly from another shard — releases it, and obligation transitions are
journaled write-ahead so recovery restores partially satisfied barriers
exactly.  When no object spec is given, every object code path is skipped
and the runtime behaves bit-for-bit as before.

The runtime never raises for a sick case: retry exhaustion (``RT001``),
admission rejection (``RT002``), recovery divergence (``RT003``),
deadlock (``RT004``), runtime protocol faults (``RT005``) and stranded
cross-case barriers (``RT006``) become
:class:`~repro.lint.diagnostics.Diagnostic` records on the
:class:`RuntimeReport`, so the text/JSON/SARIF renderers and ``--fail-on``
gating of :mod:`repro.lint` apply unchanged.  The only exception that
escapes :meth:`run` is :class:`~repro.runtime.journal.SimulatedCrash` —
the fault-injection hook proving the recovery path.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.conformance.events import FINISH, SKIP, START
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
)
from repro.obs import Observability
from repro.objects.model import ObjectBinding, ObjectSpec
from repro.objects.runtime import ObjectRuntime
from repro.runtime import rules as _rules  # noqa: F401  (registers RT00x rules)
from repro.runtime.admission import ADMIT, QUEUE, AdmissionController
from repro.runtime.instance import CaseInstance, CaseResult
from repro.runtime.journal import (
    COMPLETED,
    Journal,
    JournaledCase,
    JournalState,
    read_journal,
)
from repro.runtime.metrics import RuntimeMetrics, latency_quantiles
from repro.runtime.program import ConstraintProgram
from repro.runtime.retry import RetryPolicies
from repro.runtime.rules import ADMISSION_REJECTED, RT_CODES
from repro.runtime.store import ShardedStore


@dataclass
class RuntimeReport:
    """Everything one serving run produced."""

    metrics: RuntimeMetrics
    results: Dict[str, CaseResult] = field(default_factory=dict)
    diagnostics: Tuple[Diagnostic, ...] = ()
    #: case -> program version the case was served under (all 1 when no
    #: hot swap ever ran; see :mod:`repro.deploy`).
    versions: Dict[str, int] = field(default_factory=dict)

    def completed_cases(self) -> Tuple[str, ...]:
        return tuple(
            sorted(c for c, r in self.results.items() if r.status == COMPLETED)
        )

    def failed_cases(self) -> Tuple[str, ...]:
        return tuple(
            sorted(c for c, r in self.results.items() if r.status != COMPLETED)
        )

    def final_states(self) -> Dict[str, Tuple]:
        """``case -> canonical final state`` for equivalence comparisons."""
        return {case: result.final_state() for case, result in self.results.items()}

    def to_lint_report(self) -> LintReport:
        return LintReport.from_diagnostics(list(self.diagnostics), rules_run=RT_CODES)

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        return self.to_lint_report().exit_code(fail_on)

    def summary(self) -> str:
        return self.metrics.summary()


def result_from_journal(journaled: JournaledCase) -> CaseResult:
    """Rebuild a completed case's :class:`CaseResult` from its journal."""
    starts: Dict[str, float] = {}
    finishes: Dict[str, float] = {}
    outcomes: Dict[str, str] = {}
    skipped: List[str] = []
    for event in journaled.events:
        if event.lifecycle == START:
            starts[event.activity] = event.time
        elif event.lifecycle == FINISH:
            finishes[event.activity] = event.time
            if event.outcome is not None:
                outcomes[event.activity] = event.outcome
        elif event.lifecycle == SKIP:
            skipped.append(event.activity)
    executed = tuple(
        (name, starts[name], finish)
        for name, finish in sorted(finishes.items(), key=lambda kv: (kv[1], kv[0]))
    )
    makespan = max(finishes.values()) if finishes else 0.0
    return CaseResult(
        case=journaled.case,
        status=journaled.status or COMPLETED,
        makespan=journaled.completed_at if journaled.completed_at is not None else makespan,
        outcomes=tuple(sorted(outcomes.items())),
        executed=executed,
        skipped=tuple(sorted(skipped)),
        transitions=len(journaled.events),
        reason=journaled.reason,
    )


class Runtime:
    """Coordinates many concurrent cases over one constraint program.

    Parameters
    ----------
    program:
        The compiled constraint program all cases share.
    shards:
        Number of instance-store shards (``K``).
    batch:
        Cases advanced per shard per scheduling round.
    indexed:
        Use the per-activity constraint index (default); ``False`` swaps in
        the naive full-scan evaluation as a cost baseline.
    fast:
        Serve cases on the mask-compiled dirty-set fast path (default);
        ``False`` keeps the object-walking evaluation as the bit-for-bit
        reference.  Ignored (off) when ``indexed=False``.
    flush_every:
        Journal group-commit size: flush the write-ahead journal every N
        records instead of per record (see
        :class:`~repro.runtime.journal.Journal`).
    external_gates:
        This runtime is one shard worker of a multi-process pool (see
        :mod:`repro.runtime.workers`): cross-case obligation records are
        queued for shipping to sibling workers, and the driver uses
        :meth:`run_until_blocked` / :meth:`apply_foreign_gates` /
        :meth:`finalize_stranded` instead of :meth:`run`.
    max_in_flight / max_queue:
        Admission bounds (see :mod:`repro.runtime.admission`).
    journal_path:
        Enable the write-ahead journal at this path.
    crash_after:
        Fault injection: simulate a crash after N journal records.
    policies:
        Per-service retry-with-timeout policies.
    seed:
        Seed for the deterministic service-loss model.
    obs:
        Optional :class:`~repro.obs.Observability` bundle.  ``None``
        (the default) disables all instrumentation; the only residual
        cost on the scheduling loop is a ``None`` check, pinned at <5%
        by ``benchmarks/bench_obs_overhead.py``.
    """

    def __init__(
        self,
        program: ConstraintProgram,
        shards: int = 4,
        batch: int = 8,
        indexed: bool = True,
        max_in_flight: Optional[int] = None,
        max_queue: Optional[int] = None,
        journal_path: Optional[str] = None,
        crash_after: Optional[int] = None,
        policies: Optional[RetryPolicies] = None,
        seed: int = 0,
        obs: Optional[Observability] = None,
        objects: Optional[ObjectSpec] = None,
        co_shard: bool = True,
        fast: bool = True,
        flush_every: int = 1,
        external_gates: bool = False,
        version: int = 1,
        programs: Optional[Mapping[int, ConstraintProgram]] = None,
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be at least 1")
        self.program = program
        #: current program version — newly admitted cases run this version.
        self.version = version
        #: every version this runtime can serve (hot swaps add entries).
        self._programs: Dict[int, ConstraintProgram] = dict(programs or {})
        self._programs.setdefault(version, program)
        self._case_versions: Dict[str, int] = {}
        # Hot-swap migration counters (see repro.deploy.migrate).
        self.upgraded = 0
        self.drained = 0
        self.swap_rejected = 0
        self._batch = batch
        self._indexed = indexed
        self._fast = fast
        self._flush_every = flush_every
        self._seed = seed
        self._policies = policies or RetryPolicies()
        self._store = ShardedStore(shards)
        self._admission = AdmissionController(max_in_flight, max_queue)
        self._obs = obs
        if obs is not None:
            self._bind_instruments(obs)
        self._journal: Optional[Journal] = (
            Journal(
                journal_path,
                crash_after=crash_after,
                observe_flush=self._m_flush.observe if obs is not None else None,
                flush_every=flush_every,
            )
            if journal_path is not None
            else None
        )
        self._results: Dict[str, CaseResult] = {}
        self._recovered: Dict[str, CaseResult] = {}
        self._outcome_plans: Dict[str, Dict[str, str]] = {}
        self.diagnostics: List[Diagnostic] = []
        self._submitted = 0
        self._admitted = 0
        self._wall_seconds = 0.0
        self._co_shard = co_shard
        self._objects: Optional[ObjectRuntime] = (
            ObjectRuntime(objects) if objects is not None and objects else None
        )
        if self._objects is not None:
            self._objects.journal = self._journal
            self._objects.outbox_enabled = external_gates
        self._external_gates = external_gates
        #: declared bindings for cases not yet activated (admission queue).
        self._case_bindings: Dict[str, ObjectBinding] = {}
        #: parked cases: frozen on an unresolved cross-case barrier.
        self._parked: Dict[str, Tuple[CaseInstance, object]] = {}

    def _bind_instruments(self, obs: Observability) -> None:
        """Register runtime metrics once and cache the hot-path handles."""
        registry = obs.metrics
        self._m_cases = registry.counter(
            "repro_runtime_cases_total", "Cases finished, by final status.", ("status",)
        )
        self._m_admission = registry.counter(
            "repro_runtime_admission_total",
            "Admission verdicts for offered cases.",
            ("verdict",),
        )
        self._m_recovery = registry.counter(
            "repro_runtime_recovery_cases_total",
            "Cases rebuilt from the journal, by recovery kind.",
            ("kind",),
        )
        self._m_transitions = registry.counter(
            "repro_runtime_transitions_total", "Case lifecycle transitions executed."
        )
        self._m_checks = registry.counter(
            "repro_runtime_checks_total", "Constraint evaluations during serving."
        )
        self._m_retries = registry.counter(
            "repro_runtime_retries_total", "Service retry attempts."
        )
        self._m_batch = registry.histogram(
            "repro_runtime_batch_cases",
            "Cases advanced per shard scheduling batch.",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._m_makespan = registry.histogram(
            "repro_runtime_case_makespan_virtual",
            "Virtual (simulated-clock) makespan of finished cases.",
            buckets=(1, 2, 5, 10, 20, 50, 100, 200),
        )
        self._m_flush = registry.histogram(
            "repro_runtime_journal_flush_seconds",
            "Wall-clock latency of one write-ahead journal record flush.",
        )

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        journal_path: str,
        program: ConstraintProgram,
        crash_after: Optional[int] = None,
        state: Optional[JournalState] = None,
        **kwargs,
    ) -> "Runtime":
        """Rebuild a runtime from a (possibly crashed) journal.

        Completed cases are adopted as-is; in-flight cases are re-admitted
        with their journaled event prefix armed for verification.  The
        journal is reopened in append mode, so the recovered run extends
        the same file.  ``state`` passes an already-parsed journal (the
        multi-worker pool parses each shard journal once to gather
        cross-shard records); ``None`` reads ``journal_path``.
        """
        if state is None:
            state = read_journal(journal_path)
        runtime = cls(program, **kwargs)
        if "version" not in kwargs:
            # Adopt the journal's committed version: new admissions after a
            # recovered (possibly mid-swap) run continue on the version the
            # last committed deploy established.
            runtime.version = state.current_version()
            runtime._programs.setdefault(runtime.version, program)
        obs = runtime._obs
        span = (
            obs.tracer.span("runtime.recover", journal=journal_path)
            if obs is not None
            else None
        )
        if span is not None:
            span.__enter__()
        runtime._journal = Journal(
            journal_path,
            resume=True,
            crash_after=crash_after,
            already_written=state.records,
            observe_flush=runtime._m_flush.observe if obs is not None else None,
            flush_every=runtime._flush_every,
        )
        if runtime._objects is not None:
            runtime._objects.journal = runtime._journal
            # Rebuild the wait index before any case resumes: bindings come
            # from admit records, partially satisfied barriers from the
            # idempotent obj records.  Completed cases are bound here;
            # in-flight ones re-bind through _activate below.
            for journaled in state.completed():
                if journaled.binding is not None:
                    runtime._objects.bind(
                        journaled.case, ObjectBinding.from_dict(journaled.binding)
                    )
            for journaled in state.in_flight():
                if journaled.binding is not None:
                    runtime._case_bindings[journaled.case] = ObjectBinding.from_dict(
                        journaled.binding
                    )
            for record in state.objects:
                runtime._objects.preapply(record)
        for journaled in state.completed():
            runtime._recovered[journaled.case] = result_from_journal(journaled)
            runtime._case_versions[journaled.case] = journaled.version
            if obs is not None:
                runtime._m_recovery.labels(kind="adopted").inc()
        for journaled in state.in_flight():
            if journaled.version not in runtime._programs:
                raise ValueError(
                    "journal assigns case %r to program version %d but no "
                    "program was supplied for that version (pass programs="
                    "{...} to recover)" % (journaled.case, journaled.version)
                )
            runtime._submitted += 1
            runtime._admission.force_admit()
            runtime._activate(
                journaled.case,
                journaled.outcomes,
                prefix=tuple(journaled.events),
                journal_admission=False,
                version=journaled.version,
            )
            if obs is not None:
                runtime._m_recovery.labels(kind="resumed").inc()
        if span is not None:
            span.set(
                adopted=len(state.completed()),
                resumed=len(state.in_flight()),
                records=state.records,
            )
            span.__exit__(None, None, None)
        return runtime

    # -- admission -----------------------------------------------------------

    @property
    def known_cases(self) -> Tuple[str, ...]:
        """Every case this runtime owns (any state), sorted."""
        known = set(self._results)
        known.update(self._recovered)
        known.update(self._store.active_cases())
        known.update(self._admission.waiting_cases())
        return tuple(sorted(known))

    def submit(
        self,
        case: str,
        outcomes: Optional[Mapping[str, str]] = None,
        binding: Optional[ObjectBinding] = None,
    ) -> bool:
        """Offer one case.  Returns False when admission rejected it.

        ``binding`` attaches the case to a business object; it is kept
        through admission queueing and applied when the case activates.
        """
        plan = dict(outcomes or {})
        if binding is not None:
            self._case_bindings[case] = binding
        self._submitted += 1
        verdict = self._admission.offer(case, plan)
        if self._obs is not None:
            self._m_admission.labels(verdict=verdict).inc()
        if verdict == ADMIT:
            self._activate(case, plan)
            return True
        if verdict == QUEUE:
            return True
        self.diagnostics.append(
            Diagnostic(
                code=ADMISSION_REJECTED,
                severity=Severity.WARNING,
                message="[%s] rejected: %d case(s) in flight and the waiting "
                "queue is full" % (case, self._admission.in_flight),
                location=SourceLocation("case", case),
                evidence=(
                    "max_in_flight: %s" % self._admission.max_in_flight,
                    "max_queue: %s" % self._admission.max_queue,
                ),
            )
        )
        return False

    def submit_batch(
        self,
        plans: Mapping[str, Mapping[str, str]],
        bindings: Optional[Mapping[str, ObjectBinding]] = None,
    ) -> Tuple[str, ...]:
        """Offer many cases; returns the rejected ones."""
        bindings = bindings or {}
        rejected = [
            case
            for case, outcomes in plans.items()
            if not self.submit(case, outcomes, binding=bindings.get(case))
        ]
        return tuple(rejected)

    def _activate(
        self,
        case: str,
        outcomes: Dict[str, str],
        prefix: Tuple = (),
        journal_admission: bool = True,
        version: Optional[int] = None,
    ) -> None:
        self._admitted += 1
        self._outcome_plans[case] = dict(outcomes)
        effective = self.version if version is None else version
        self._case_versions[case] = effective
        binding = self._case_bindings.pop(case, None)
        hook = None
        if self._objects is not None and binding is not None:
            # Bind before journaling so a spec violation surfaces before
            # the admit record exists; the binding itself travels on the
            # admit record so recovery can rebuild the wait index.
            hook = self._objects.bind(case, binding)
        if self._journal is not None and journal_admission:
            self._journal.admit(
                case,
                0.0,
                outcomes,
                binding=binding.to_dict() if binding is not None else None,
                version=effective,
            )
        instance = CaseInstance(
            case,
            self._programs.get(effective, self.program),
            outcomes=outcomes,
            indexed=self._indexed,
            seed=self._seed,
            policies=self._policies,
            journal=self._journal,
            replay_prefix=prefix,
            objects=hook,
            fast=self._fast,
        )
        placement_key = (
            binding.object_key
            if binding is not None and self._co_shard
            else None
        )
        self._store.add(instance, key=placement_key)

    # -- the scheduling loop -------------------------------------------------

    def run(self) -> RuntimeReport:
        """Drive every admitted case to completion and return the report.

        :class:`~repro.runtime.journal.SimulatedCrash` (fault injection)
        propagates to the caller; wall-clock time spent before the crash is
        still accounted, so a recovered run reports only its own time.
        """
        started = _time.perf_counter()
        obs = self._obs
        try:
            if obs is None:
                while True:
                    self._drain_wakes()
                    if not self._store.any_runnable():
                        if self._parked:
                            self._fail_stranded()
                            continue
                        break
                    for shard in self._store.shards:
                        self._advance_batch(shard, shard.take_batch(self._batch))
            else:
                with obs.tracer.span("runtime.run", admitted=self._admitted):
                    while True:
                        self._drain_wakes()
                        if not self._store.any_runnable():
                            if self._parked:
                                self._fail_stranded()
                                continue
                            break
                        for shard in self._store.shards:
                            batch = shard.take_batch(self._batch)
                            if not batch:
                                continue
                            self._m_batch.observe(len(batch))
                            with obs.tracer.span(
                                "runtime.batch",
                                shard=shard.index,
                                cases=len(batch),
                            ):
                                self._advance_batch(shard, batch)
        finally:
            self._wall_seconds += _time.perf_counter() - started
        return self.report()

    def run_until_blocked(self) -> bool:
        """Drive until no runnable work remains, leaving parked cases parked.

        The multi-worker scheduling round: where :meth:`run` fails parked
        cases as stranded once the store drains, a shard worker instead
        reports back to the pool — a contribution from *another worker*
        may still release the barrier.  Returns True while cases are
        parked (the worker is blocked on foreign gate traffic).
        """
        started = _time.perf_counter()
        try:
            while True:
                self._drain_wakes()
                if not self._store.any_runnable():
                    break
                for shard in self._store.shards:
                    self._advance_batch(shard, shard.take_batch(self._batch))
        finally:
            self._wall_seconds += _time.perf_counter() - started
        return bool(self._parked)

    def run_until_completed(self, target: int) -> bool:
        """Drive scheduling rounds until ``target`` cases have finished.

        The pause point for a mid-run hot swap (``serve --redeploy-after
        N``): the method returns *between* scheduling rounds, where every
        resident non-parked case sits in its shard queue exactly once —
        the invariant :meth:`swap_case` relies on.  Returns True while
        runnable work remains (the run is paused, not finished).
        """
        started = _time.perf_counter()
        try:
            while len(self._results) + len(self._recovered) < target:
                self._drain_wakes()
                if not self._store.any_runnable():
                    if self._parked:
                        self._fail_stranded()
                        continue
                    break
                for shard in self._store.shards:
                    self._advance_batch(shard, shard.take_batch(self._batch))
        finally:
            self._wall_seconds += _time.perf_counter() - started
        self._drain_wakes()
        return self._store.any_runnable() or bool(self._parked)

    # -- hot swap (driven by repro.deploy.migrate) ----------------------------

    @property
    def journal(self) -> Optional[Journal]:
        """The write-ahead journal (None when journaling is off)."""
        return self._journal

    @property
    def has_objects(self) -> bool:
        """True when an object spec is declared (hot swap is refused)."""
        return self._objects is not None

    def version_map(self) -> Dict[str, int]:
        """``case -> program version`` for every case this runtime owns."""
        return dict(self._case_versions)

    def register_program(self, version: int, program: ConstraintProgram) -> None:
        """Make ``program`` available as ``version`` for upgrades/admissions."""
        self._programs[version] = program

    def activate_version(self, version: int) -> None:
        """Route *new* admissions to ``version`` (must be registered)."""
        if version not in self._programs:
            raise KeyError("program version %d is not registered" % version)
        self.version = version
        self.program = self._programs[version]

    def resident_cases(self) -> Dict[str, CaseInstance]:
        """Every in-flight case instance currently resident on a shard."""
        resident: Dict[str, CaseInstance] = {}
        for shard in self._store.shards:
            resident.update(shard.cases)
        return resident

    def case_plan(self, case: str) -> Dict[str, str]:
        """The outcome plan ``case`` was admitted with."""
        return dict(self._outcome_plans.get(case, {}))

    def probe_case(self, case: str, program: ConstraintProgram, prefix: Tuple) -> CaseInstance:
        """Build an *unjournaled* replay probe of ``case`` under ``program``.

        Identical construction to :meth:`swap_case`'s replacement —
        same outcome plan, seed, policies and evaluation strategy — but
        with no journal attached, so the migration engine can drive the
        probe through its prefix without emitting anything.
        """
        return CaseInstance(
            case,
            program,
            outcomes=self._outcome_plans.get(case, {}),
            indexed=self._indexed,
            seed=self._seed,
            policies=self._policies,
            journal=None,
            replay_prefix=prefix,
            fast=self._fast,
        )

    def _shard_holding(self, case: str):
        for shard in self._store.shards:
            if case in shard.cases:
                return shard
        raise KeyError("case %r is not resident on any shard" % case)

    def swap_case(self, case: str, version: int, prefix: Tuple) -> None:
        """Hot-upgrade one resident case to ``version`` in place.

        The replacement instance re-derives the journaled ``prefix`` under
        the new program exactly like crash recovery does — verified record
        for record as the scheduler drives it.  Only the instance behind
        the case id changes; queue membership is untouched, so this is
        safe precisely at the between-rounds point
        :meth:`run_until_completed` pauses at.  The caller (the migration
        engine) has already probed that the replay succeeds.
        """
        shard = self._shard_holding(case)
        instance = CaseInstance(
            case,
            self._programs[version],
            outcomes=self._outcome_plans.get(case, {}),
            indexed=self._indexed,
            seed=self._seed,
            policies=self._policies,
            journal=self._journal,
            replay_prefix=prefix,
            fast=self._fast,
        )
        shard.cases[case] = instance
        self._case_versions[case] = version
        self.upgraded += 1

    def drain_case(self, case: str) -> None:
        """Leave ``case`` on its current version; count the decision."""
        self._shard_holding(case)  # raises for unknown cases
        self.drained += 1

    def reject_case(self, case: str, message: str, diagnostic: Diagnostic) -> None:
        """Fail a resident case rejected at the swap barrier (``DEP003``)."""
        shard = self._shard_holding(case)
        instance = shard.cases[case]
        try:
            shard.queue.remove(case)
        except ValueError:
            pass  # parked or mid-batch; resident but not queued
        instance.fail_migration(message, diagnostic)
        shard.retire(instance)
        self._on_case_done(instance)
        self.swap_rejected += 1

    def take_gate_outbox(self) -> List[Dict[str, object]]:
        """Drain obligation records destined for sibling workers.

        Flushes the journal first: a record must be durable on the shard
        that owns it *before* any other shard acts on it, otherwise a
        crash could strand effects recovery cannot re-derive.
        """
        if self._objects is None:
            return []
        if self._journal is not None:
            self._journal.flush()
        return self._objects.take_outbox()  # type: ignore[return-value]

    def apply_foreign_gates(self, records) -> None:
        """Apply obligation records shipped from sibling workers."""
        if self._objects is None:
            return
        for record in records:
            self._objects.apply_foreign(record)

    def seed_foreign_bindings(self, bindings: Mapping[str, ObjectBinding]) -> None:
        """Seed registrations/declarations for cases owned by other workers."""
        if self._objects is None:
            return
        for case in sorted(bindings):
            self._objects.seed_binding(case, bindings[case])

    def finalize_stranded(self) -> None:
        """Fail every parked case (``RT006``) — pool consensus says no
        worker can produce further gate traffic."""
        if self._parked:
            self._fail_stranded()

    def _advance_batch(self, shard, batch) -> None:
        """Advance each case in ``batch`` by one event; retire finished ones.

        A case that parked on a cross-case barrier is neither requeued nor
        retired: it stays resident on its shard but leaves the run queue
        until :meth:`_drain_wakes` puts it back.
        """
        for instance in batch:
            if instance.advance():
                shard.requeue(instance)
            elif instance.parked:
                self._parked[instance.case] = (instance, shard)
            else:
                shard.retire(instance)
                self._on_case_done(instance)

    def _drain_wakes(self) -> None:
        """Requeue parked cases whose barriers have released.

        Wakes are produced by contributions on *any* shard (the wait
        index is shared); draining at the top of each scheduling round is
        the cross-shard mailbox.
        """
        if self._objects is None:
            return
        for case in self._objects.take_wakes():
            entry = self._parked.pop(case, None)
            if entry is None:
                continue  # woke before parking was recorded; nothing to do
            instance, shard = entry
            instance.wake()
            shard.requeue(instance)

    def _fail_stranded(self) -> None:
        """Fail every parked case: no runnable work and no pending wakes
        means their barriers can never release (``RT006``)."""
        evidence: Tuple[str, ...] = ()
        if self._objects is not None:
            evidence = tuple(self._objects.stranded_evidence())
            self._objects.index.barriers_stranded = len(self._objects.index.pending())
        for case in sorted(self._parked):
            instance, shard = self._parked.pop(case)
            instance.fail_stranded(evidence)
            shard.retire(instance)
            self._on_case_done(instance)

    def _on_case_done(self, instance: CaseInstance) -> None:
        result = instance.result()
        self._results[instance.case] = result
        self.diagnostics.extend(instance.diagnostics)
        if self._obs is not None:
            self._m_cases.labels(status=result.status).inc()
            self._m_transitions.inc(result.transitions)
            self._m_checks.inc(result.checks)
            if result.retries:
                self._m_retries.inc(result.retries)
            self._m_makespan.observe(result.makespan)
        promoted = self._admission.complete()
        if promoted is not None:
            case, outcomes = promoted
            self._activate(case, outcomes)

    # -- reporting -----------------------------------------------------------

    def metrics(self) -> RuntimeMetrics:
        completed = [r for r in self._results.values() if r.status == COMPLETED]
        failed = len(self._results) - len(completed)
        p50, p95 = latency_quantiles(tuple(r.makespan for r in completed))
        snapshot = RuntimeMetrics(
            shards=len(self._store.shards),
            submitted=self._submitted,
            admitted=self._admitted,
            completed=len(completed),
            failed=failed,
            rejected=self._admission.rejected,
            recovered=len(self._recovered),
            in_flight=self._admission.in_flight,
            queue_depth=self._admission.queue_depth,
            peak_in_flight=self._admission.peak_in_flight,
            peak_queue_depth=self._admission.peak_queue_depth,
            retries=sum(r.retries for r in self._results.values()),
            transitions=sum(r.transitions for r in self._results.values()),
            checks=sum(r.checks for r in self._results.values()),
            journal_records=(
                self._journal.records_written if self._journal is not None else 0
            ),
            wall_seconds=self._wall_seconds,
            latency_p50=p50,
            latency_p95=p95,
            shard_assigned=self._store.assigned_counts(),
            objects=(
                self._objects.index.objects() if self._objects is not None else 0
            ),
            barriers_released=(
                self._objects.index.barriers_released
                if self._objects is not None
                else 0
            ),
            barriers_stranded=(
                self._objects.index.barriers_stranded
                if self._objects is not None
                else 0
            ),
            upgraded=self.upgraded,
            drained=self.drained,
            swap_rejected=self.swap_rejected,
        )
        if self._obs is not None:
            snapshot.publish(self._obs.metrics)
        return snapshot

    def object_counters(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Per-object obligation counters (empty without an object spec).

        The crash-recovery tests compare this snapshot verbatim between
        crashed-and-recovered and uninterrupted runs.
        """
        if self._objects is None:
            return {}
        return self._objects.index.counters()

    def report(self) -> RuntimeReport:
        results = dict(self._recovered)
        results.update(self._results)
        return RuntimeReport(
            metrics=self.metrics(),
            results=results,
            diagnostics=tuple(self.diagnostics),
            versions=self.version_map(),
        )

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
