"""The compiled per-activity constraint program shared across all cases.

A :class:`ConstraintProgram` is the runtime counterpart of
:class:`repro.conformance.monitor.MonitorProgram`: one immutable, indexed
compilation of a constraint set that *every* concurrent case executes
against.  Compiling once amortizes the indexing cost over thousands of
process instances, and the per-activity ``incoming`` index means each
ready-set evaluation touches only the constraints incident to the
activity under consideration — ``O(degree)`` instead of ``O(|SC|)``.

The unindexed strategy is kept (``indexed=False`` on
:class:`~repro.runtime.instance.CaseInstance` /
:class:`~repro.runtime.coordinator.Runtime`) as the baseline that
``benchmarks/bench_runtime_throughput.py`` compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.conditions import Cond, ConditionDomains
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.dscl.ast import Exclusive, HappenBefore
from repro.errors import SchedulingError
from repro.model.activity import ActivityKind, ActivityState
from repro.model.process import BusinessProcess


@dataclass(frozen=True)
class ActivityInfo:
    """The static facts one case needs about one activity."""

    name: str
    duration: float = 0.0
    is_guard: bool = False
    #: ``(service, port)`` the activity invokes, for INVOKE activities.
    invokes: Optional[Tuple[str, str]] = None
    #: service whose callback the activity awaits, for bound RECEIVEs.
    awaits: Optional[str] = None


@dataclass
class ConstraintProgram:
    """One compiled constraint set, shared (read-only) by all cases.

    ``activities`` preserves the constraint set's scheduling order — the
    order the single-case :class:`~repro.scheduler.engine.ConstraintScheduler`
    evaluates pending activities in, which keeps multi-case execution
    bit-for-bit equivalent to single-case simulation.
    """

    process: BusinessProcess
    activities: Tuple[str, ...]
    constraints: Tuple[Constraint, ...]
    guards: Dict[str, FrozenSet[Cond]]
    domains: ConditionDomains
    fine_grained: Tuple[HappenBefore, ...]
    exclusives: Tuple[Exclusive, ...]
    #: derived indexes, built in ``__post_init__``
    info: Dict[str, ActivityInfo] = field(default_factory=dict)
    incoming: Dict[str, Tuple[Constraint, ...]] = field(default_factory=dict)
    fine_on_start: Dict[str, Tuple[HappenBefore, ...]] = field(default_factory=dict)
    fine_on_finish: Dict[str, Tuple[HappenBefore, ...]] = field(default_factory=dict)
    exclusive_partners: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        incoming: Dict[str, List[Constraint]] = {name: [] for name in self.activities}
        for constraint in self.constraints:
            incoming[constraint.target].append(constraint)
        self.incoming = {name: tuple(found) for name, found in incoming.items()}

        info: Dict[str, ActivityInfo] = {}
        for name in self.activities:
            if not self.process.has_activity(name):
                # Synthetic coordinators (HappenTogether desugaring) take no
                # time and talk to no service.
                info[name] = ActivityInfo(name=name)
                continue
            activity = self.process.activity(name)
            invokes = awaits = None
            if activity.kind is ActivityKind.INVOKE and activity.port is not None:
                invokes = (activity.port.service, activity.port.port)
            elif activity.kind is ActivityKind.RECEIVE and activity.port is not None:
                awaits = activity.port.service
            info[name] = ActivityInfo(
                name=name,
                duration=activity.duration,
                is_guard=activity.is_guard,
                invokes=invokes,
                awaits=awaits,
            )
        self.info = info

        on_start: Dict[str, List[HappenBefore]] = {}
        on_finish: Dict[str, List[HappenBefore]] = {}
        for hb in self.fine_grained:
            bucket = on_finish if hb.right.state is ActivityState.FINISH else on_start
            bucket.setdefault(hb.right.activity, []).append(hb)
        self.fine_on_start = {k: tuple(v) for k, v in on_start.items()}
        self.fine_on_finish = {k: tuple(v) for k, v in on_finish.items()}

        partners: Dict[str, List[str]] = {}
        for exclusive in self.exclusives:
            left, right = exclusive.left.activity, exclusive.right.activity
            partners.setdefault(left, []).append(right)
            partners.setdefault(right, []).append(left)
        self.exclusive_partners = {k: tuple(v) for k, v in partners.items()}

    @property
    def size(self) -> int:
        """Total number of compiled obligations."""
        return len(self.constraints) + len(self.fine_grained) + len(self.exclusives)

    def guard_names(self) -> Tuple[str, ...]:
        """Guard activities, in scheduling order (for outcome plans)."""
        return tuple(
            name for name in self.activities if self.info[name].is_guard
        )

    def outcome_domain(self, guard: str) -> List[str]:
        return sorted(self.domains.domain(guard))


def compile_program(
    process: BusinessProcess,
    sc: SynchronizationConstraintSet,
    fine_grained: Iterable[HappenBefore] = (),
    exclusives: Iterable[Exclusive] = (),
) -> ConstraintProgram:
    """Compile ``sc`` (an activity constraint set) for multi-case serving."""
    if not sc.is_activity_set:
        raise SchedulingError(
            "runtime requires an activity constraint set; run service "
            "dependency translation first"
        )
    for name in sc.activities:
        if not process.has_activity(name) and not name.startswith("__"):
            raise SchedulingError(
                "constraint set mentions activity %r unknown to process %r"
                % (name, process.name)
            )
    return ConstraintProgram(
        process=process,
        activities=tuple(sc.activities),
        constraints=tuple(sc),
        guards=dict(sc.guards),
        domains=sc.domains,
        fine_grained=tuple(fine_grained),
        exclusives=tuple(exclusives),
    )


# The historical home of the runtime-compiling ``program_from_weave``; the
# canonical implementation (shared with repro.conformance) lives in
# :mod:`repro.programs`.  Runtime callers pass ``target="runtime"``.
from repro.programs import program_from_weave  # noqa: E402,F401
