"""The compiled per-activity constraint program shared across all cases.

A :class:`ConstraintProgram` is the runtime counterpart of
:class:`repro.conformance.monitor.MonitorProgram`: one immutable, indexed
compilation of a constraint set that *every* concurrent case executes
against.  Compiling once amortizes the indexing cost over thousands of
process instances, and the per-activity ``incoming`` index means each
ready-set evaluation touches only the constraints incident to the
activity under consideration — ``O(degree)`` instead of ``O(|SC|)``.

The unindexed strategy is kept (``indexed=False`` on
:class:`~repro.runtime.instance.CaseInstance` /
:class:`~repro.runtime.coordinator.Runtime`) as the baseline that
``benchmarks/bench_runtime_throughput.py`` compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.conditions import Cond, ConditionDomains
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.dscl.ast import Exclusive, HappenBefore
from repro.errors import SchedulingError
from repro.model.activity import ActivityKind, ActivityState
from repro.model.process import BusinessProcess


@dataclass(frozen=True)
class ActivityInfo:
    """The static facts one case needs about one activity."""

    name: str
    duration: float = 0.0
    is_guard: bool = False
    #: ``(service, port)`` the activity invokes, for INVOKE activities.
    invokes: Optional[Tuple[str, str]] = None
    #: service whose callback the activity awaits, for bound RECEIVEs.
    awaits: Optional[str] = None


@dataclass
class ConstraintProgram:
    """One compiled constraint set, shared (read-only) by all cases.

    ``activities`` preserves the constraint set's scheduling order — the
    order the single-case :class:`~repro.scheduler.engine.ConstraintScheduler`
    evaluates pending activities in, which keeps multi-case execution
    bit-for-bit equivalent to single-case simulation.
    """

    process: BusinessProcess
    activities: Tuple[str, ...]
    constraints: Tuple[Constraint, ...]
    guards: Dict[str, FrozenSet[Cond]]
    domains: ConditionDomains
    fine_grained: Tuple[HappenBefore, ...]
    exclusives: Tuple[Exclusive, ...]
    #: derived indexes, built in ``__post_init__``
    info: Dict[str, ActivityInfo] = field(default_factory=dict)
    incoming: Dict[str, Tuple[Constraint, ...]] = field(default_factory=dict)
    fine_on_start: Dict[str, Tuple[HappenBefore, ...]] = field(default_factory=dict)
    fine_on_finish: Dict[str, Tuple[HappenBefore, ...]] = field(default_factory=dict)
    exclusive_partners: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        incoming: Dict[str, List[Constraint]] = {name: [] for name in self.activities}
        for constraint in self.constraints:
            incoming[constraint.target].append(constraint)
        self.incoming = {name: tuple(found) for name, found in incoming.items()}

        info: Dict[str, ActivityInfo] = {}
        for name in self.activities:
            if not self.process.has_activity(name):
                # Synthetic coordinators (HappenTogether desugaring) take no
                # time and talk to no service.
                info[name] = ActivityInfo(name=name)
                continue
            activity = self.process.activity(name)
            invokes = awaits = None
            if activity.kind is ActivityKind.INVOKE and activity.port is not None:
                invokes = (activity.port.service, activity.port.port)
            elif activity.kind is ActivityKind.RECEIVE and activity.port is not None:
                awaits = activity.port.service
            info[name] = ActivityInfo(
                name=name,
                duration=activity.duration,
                is_guard=activity.is_guard,
                invokes=invokes,
                awaits=awaits,
            )
        self.info = info

        on_start: Dict[str, List[HappenBefore]] = {}
        on_finish: Dict[str, List[HappenBefore]] = {}
        for hb in self.fine_grained:
            bucket = on_finish if hb.right.state is ActivityState.FINISH else on_start
            bucket.setdefault(hb.right.activity, []).append(hb)
        self.fine_on_start = {k: tuple(v) for k, v in on_start.items()}
        self.fine_on_finish = {k: tuple(v) for k, v in on_finish.items()}

        partners: Dict[str, List[str]] = {}
        for exclusive in self.exclusives:
            left, right = exclusive.left.activity, exclusive.right.activity
            partners.setdefault(left, []).append(right)
            partners.setdefault(right, []).append(left)
        self.exclusive_partners = {k: tuple(v) for k, v in partners.items()}

    @property
    def size(self) -> int:
        """Total number of compiled obligations."""
        return len(self.constraints) + len(self.fine_grained) + len(self.exclusives)

    def guard_names(self) -> Tuple[str, ...]:
        """Guard activities, in scheduling order (for outcome plans)."""
        return tuple(
            name for name in self.activities if self.info[name].is_guard
        )

    def outcome_domain(self, guard: str) -> List[str]:
        return sorted(self.domains.domain(guard))

    def masks(self) -> "MaskProgram":
        """The interned bitmask view of this program (built once, cached)."""
        view = getattr(self, "_mask_view", None)
        if view is None:
            view = MaskProgram(self)
            self._mask_view = view
        return view


def compile_program(
    process: BusinessProcess,
    sc: SynchronizationConstraintSet,
    fine_grained: Iterable[HappenBefore] = (),
    exclusives: Iterable[Exclusive] = (),
) -> ConstraintProgram:
    """Compile ``sc`` (an activity constraint set) for multi-case serving."""
    if not sc.is_activity_set:
        raise SchedulingError(
            "runtime requires an activity constraint set; run service "
            "dependency translation first"
        )
    for name in sc.activities:
        if not process.has_activity(name) and not name.startswith("__"):
            raise SchedulingError(
                "constraint set mentions activity %r unknown to process %r"
                % (name, process.name)
            )
    return ConstraintProgram(
        process=process,
        activities=tuple(sc.activities),
        constraints=tuple(sc),
        guards=dict(sc.guards),
        domains=sc.domains,
        fine_grained=tuple(fine_grained),
        exclusives=tuple(exclusives),
    )


@dataclass(frozen=True)
class MaskActivity:
    """Compiled bitmask facts for one activity.

    All masks live in the program's shared :class:`~repro.core.kernel.Interner`
    universe: activity bits are dense node ids, condition bits are interned
    ``Cond`` positions.  The runtime's readiness predicate for activity ``a``
    becomes ``pred_mask & ~resolved == 0`` and its fate test a pair of mask
    intersections — the exact tests :mod:`repro.verify` explores symbolically.
    """

    name: str
    index: int
    bit: int
    is_guard: bool
    #: sources of incoming constraints (activity bits); conditionality is
    #: deliberately ignored here — it only matters through guard maps, the
    #: same asymmetry ``CaseInstance._constraints_satisfied`` implements.
    pred_mask: int
    #: condition bits that must all be present in the valuation to run.
    req_cond_mask: int
    #: valuation bits contradicting a required condition (sibling values).
    conflict_mask: int
    #: activity bits of the guards this activity's fate reads.
    guard_dep_mask: int
    #: for branching guards: ``(outcome, valuation bit mask)`` per domain value.
    outcome_bits: Tuple[Tuple[str, int], ...]
    #: mentioned by fine-grained / exclusive obligations: start and finish
    #: are distinct transitions (a ``running`` phase is observable).
    two_phase: bool
    #: activity bits whose RUNNING status blocks this activity's start.
    exclusive_mask: int
    #: fine-grained gates: (left bit, left-must-be-finished?, vacuous-if-skipped)
    start_gates: Tuple[Tuple[int, bool], ...]
    finish_gates: Tuple[Tuple[int, bool], ...]
    #: for bound RECEIVEs: one mask of invoker activities per request port.
    await_ports: Optional[Tuple[int, ...]]
    #: False when the awaited service can never call back (synchronous, or
    #: some request port has no invoking activity in the program).
    await_possible: bool
    #: name of the awaited service (``None`` when not a bound RECEIVE) —
    #: the serving fast path consults the live :class:`ServiceSimulator`
    #: clock through this, where the verifier abstracts time away.
    awaits_service: Optional[str] = None
    #: fate conditions as ``(guard bit, required valuation bit)`` pairs in
    #: the *exact* iteration order of ``program.guards[name]`` — the order
    #: ``CaseInstance._fate`` walks them — so the mask-compiled engine
    #: resolves skip-vs-undecided ties identically to the object path.
    fate_checks: Tuple[Tuple[int, int], ...] = ()


class MaskProgram:
    """Dense bitmask compilation of a :class:`ConstraintProgram`.

    This is the *shared ready-set test*: the verifier's successor relation
    and the runtime's deadlock diagnostics both evaluate these masks, so a
    ``VER001`` counterexample and an ``RT004`` failure name the same
    blocking constraints.
    """

    def __init__(self, program: ConstraintProgram) -> None:
        # Imported here (not at module top) to keep the runtime importable
        # without pulling the kernel into every case-serving process.
        from repro.core.kernel import Interner

        self.program = program
        self.interner = Interner()
        order = program.activities
        self.index: Dict[str, int] = {}
        for name in order:
            self.index[name] = self.interner.node_id(name)
        self.all_mask = (1 << len(order)) - 1 if order else 0

        # Intern every referenced condition plus the full declared domain of
        # each referenced guard, so "resolved to another value" is visible
        # to the fate test through sibling conflict masks.
        referenced = sorted({c for conds in program.guards.values() for c in conds})
        referenced_guards = sorted({c.guard for c in referenced})
        for cond in referenced:
            self.interner.cond_bit(cond)
        for guard in referenced_guards:
            for value in sorted(program.domains.domain(guard)):
                self.interner.cond_bit(Cond(guard, value))

        invoker_masks: Dict[Tuple[str, str], int] = {}
        for name in order:
            invokes = program.info[name].invokes
            if invokes is not None:
                invoker_masks[invokes] = invoker_masks.get(invokes, 0) | (
                    1 << self.index[name]
                )

        two_phase_names = set()
        for hb in program.fine_grained:
            two_phase_names.add(hb.left.activity)
            two_phase_names.add(hb.right.activity)
        two_phase_names.update(program.exclusive_partners)

        activities: List[MaskActivity] = []
        for position, name in enumerate(order):
            index = self.index[name]
            bit = 1 << index
            info = program.info[name]
            pred_mask = 0
            for constraint in program.incoming.get(name, ()):
                source_index = self.index.get(constraint.source)
                if source_index is not None:
                    pred_mask |= 1 << source_index
            req_cond_mask = 0
            conflict_mask = 0
            guard_dep_mask = 0
            fate_checks: List[Tuple[int, int]] = []
            for cond in program.guards.get(name, frozenset()):
                cond_mask = 1 << self.interner.cond_bit(cond)
                req_cond_mask |= cond_mask
                conflict_mask |= self.interner.conflict_of(cond_mask)
                guard_index = self.index.get(cond.guard)
                if guard_index is not None:
                    guard_dep_mask |= 1 << guard_index
                    fate_checks.append((1 << guard_index, cond_mask))
                else:
                    # A guard outside the program can never resolve; the
                    # zero-bit pair makes the fast fate report "undecided"
                    # exactly where the object path does.
                    fate_checks.append((0, cond_mask))

            outcome_bits: Tuple[Tuple[str, int], ...] = ()
            if info.is_guard and name in {c.guard for c in referenced}:
                outcome_bits = tuple(
                    (value, 1 << self.interner.cond_bit(Cond(name, value)))
                    for value in program.outcome_domain(name)
                )

            exclusive_mask = 0
            for partner in program.exclusive_partners.get(name, ()):
                partner_index = self.index.get(partner)
                if partner_index is not None:
                    exclusive_mask |= 1 << partner_index

            start_gates = tuple(
                (1 << self.index[hb.left.activity],
                 hb.left.state is ActivityState.FINISH)
                for hb in program.fine_on_start.get(name, ())
                if hb.left.activity in self.index
            )
            finish_gates = tuple(
                (1 << self.index[hb.left.activity],
                 hb.left.state is ActivityState.FINISH)
                for hb in program.fine_on_finish.get(name, ())
                if hb.left.activity in self.index
            )

            await_ports: Optional[Tuple[int, ...]] = None
            await_possible = True
            if info.awaits is not None:
                service = program.process.service(info.awaits)
                await_ports = tuple(
                    invoker_masks.get((service.name, port.name), 0)
                    for port in service.request_ports
                )
                await_possible = service.asynchronous and all(await_ports)

            activities.append(
                MaskActivity(
                    awaits_service=info.awaits,
                    fate_checks=tuple(fate_checks),
                    name=name,
                    index=index,
                    bit=bit,
                    is_guard=info.is_guard,
                    pred_mask=pred_mask,
                    req_cond_mask=req_cond_mask,
                    conflict_mask=conflict_mask,
                    guard_dep_mask=guard_dep_mask,
                    outcome_bits=outcome_bits,
                    two_phase=name in two_phase_names,
                    exclusive_mask=exclusive_mask,
                    start_gates=start_gates,
                    finish_gates=finish_gates,
                    await_ports=await_ports,
                    await_possible=await_possible,
                )
            )
        self.activities: Tuple[MaskActivity, ...] = tuple(activities)

        # Reverse adjacency for the serving fast path: ``dependents[i]`` is
        # the mask of activities whose readiness or fate tests read activity
        # ``i``'s status — the only ones worth re-checking after ``i``
        # transitions.  Over-approximating (re-checking a blocked activity)
        # is harmless; the dirty-set worklist only needs a superset of the
        # activities the reference full scan would actually move.
        dependents = [0] * len(self.activities)
        awaiters: Dict[str, int] = {}
        for act in self.activities:
            reads = act.pred_mask | act.guard_dep_mask | act.exclusive_mask
            for left_bit, _needs_finish in act.start_gates:
                reads |= left_bit
            remaining = reads
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                dependents[low.bit_length() - 1] |= act.bit
            if act.awaits_service is not None:
                awaiters[act.awaits_service] = (
                    awaiters.get(act.awaits_service, 0) | act.bit
                )
        self.dependents: Tuple[int, ...] = tuple(dependents)
        #: service name -> mask of activities awaiting its callback.
        self.awaiters: Dict[str, int] = awaiters

        # ``start_gates`` drops fine-grained lefts outside the program, but
        # the object path blocks on them forever (never skipped, so never
        # vacuous; never started, so never satisfied).  The fast path must
        # treat these activities as permanently start-blocked too.
        foreign = 0
        for act in self.activities:
            for hb in program.fine_on_start.get(act.name, ()):
                if hb.left.activity not in self.index:
                    foreign |= act.bit
        #: activities start-gated on a left side outside the program.
        self.foreign_start_gate_mask: int = foreign

        # Projection table: a branching guard's valuation bits stop mattering
        # once every activity whose fate reads them is resolved.
        branch_guards: List[Tuple[int, int]] = []
        for act in self.activities:
            if not act.outcome_bits:
                continue
            dependents = 0
            for other in self.activities:
                if other.guard_dep_mask & act.bit:
                    dependents |= other.bit
            guard_value_bits = 0
            for _, value_mask in act.outcome_bits:
                guard_value_bits |= value_mask
            # Keep only this guard's bits (value_bits may span other guards).
            branch_guards.append((dependents, guard_value_bits))
        self.branch_guards: Tuple[Tuple[int, int], ...] = tuple(branch_guards)

    # -- the shared ready-set / fate tests -----------------------------------

    def fate(self, act: MaskActivity, valuation: int, skipped: int) -> Optional[bool]:
        """True = will run, False = must skip, None = undecided (bitmask twin
        of ``CaseInstance._fate``)."""
        if valuation & act.conflict_mask:
            return False
        if skipped & act.guard_dep_mask:
            return False
        if act.req_cond_mask & ~valuation == 0:
            return True
        return None

    def ready(self, act: MaskActivity, resolved: int) -> bool:
        """The runtime's constraint readiness test: every incoming source
        DONE or SKIPPED."""
        return act.pred_mask & ~resolved == 0

    def unsatisfied(self, act: MaskActivity, resolved: int) -> int:
        """The blocking sources as a mask (for RT004/VER001 diagnostics)."""
        return act.pred_mask & ~resolved

    def blocking_constraints(self, name: str, resolved: int) -> List[Constraint]:
        """Unpack the unsatisfied mask back into the constraint objects."""
        act = self.activities[self._position(name)]
        blocked_bits = self.unsatisfied(act, resolved)
        blockers: List[Constraint] = []
        for constraint in self.program.incoming.get(name, ()):
            source_index = self.index.get(constraint.source)
            if source_index is not None and blocked_bits & (1 << source_index):
                blockers.append(constraint)
        return blockers

    def message_ready(self, act: MaskActivity, done: int) -> bool:
        if act.await_ports is None:
            return True
        if not act.await_possible:
            return False
        return all(mask & done for mask in act.await_ports)

    def start_blocked(self, act: MaskActivity, done: int, running: int,
                      skipped: int) -> bool:
        started = done | running
        for left_bit, needs_finish in act.start_gates:
            if skipped & left_bit:
                continue  # vacuous: the left side was skipped
            if needs_finish:
                if not done & left_bit:
                    return True
            elif not started & left_bit:
                return True
        return False

    def finish_blocked(self, act: MaskActivity, done: int, running: int,
                       skipped: int) -> bool:
        started = done | running
        for left_bit, needs_finish in act.finish_gates:
            if skipped & left_bit:
                continue
            if needs_finish:
                if not done & left_bit:
                    return True
            elif not started & left_bit:
                return True
        return False

    def project_valuation(self, valuation: int, pending: int) -> int:
        """Drop valuation bits no pending activity's fate can still read."""
        for dependents, value_bits in self.branch_guards:
            if dependents & pending == 0:
                valuation &= ~value_bits
        return valuation

    # -- convenience ---------------------------------------------------------

    def _position(self, name: str) -> int:
        position = self.index.get(name)
        if position is None:
            raise SchedulingError("unknown activity %r" % name)
        return position

    def index_bit(self, name: str) -> int:
        return 1 << self._position(name)

    def mask_of(self, names: Iterable[str]) -> int:
        mask = 0
        for name in names:
            mask |= 1 << self._position(name)
        return mask

    def names_of(self, mask: int) -> List[str]:
        found = []
        while mask:
            low = mask & -mask
            mask ^= low
            found.append(self.interner.node_name(low.bit_length() - 1))
        return found


# The historical home of the runtime-compiling ``program_from_weave``; the
# canonical implementation (shared with repro.conformance) lives in
# :mod:`repro.programs`.  Runtime callers pass ``target="runtime"``.
from repro.programs import program_from_weave  # noqa: E402,F401
