"""Sharded multi-case coordination runtime.

Where :mod:`repro.scheduler` executes *one* process instance to
completion, this package serves *thousands* concurrently over a single
compiled constraint program:

* :mod:`repro.runtime.program` — the shared per-activity constraint
  program (:func:`compile_program` / :func:`program_from_weave`);
* :mod:`repro.runtime.instance` — one case's stepwise state machine,
  bit-for-bit equivalent to ``ConstraintScheduler`` per case;
* :mod:`repro.runtime.store` — hash-sharded instance store with
  per-shard run queues and batched scheduling;
* :mod:`repro.runtime.journal` — write-ahead JSONL journal (conformance
  event format) with crash recovery and fault injection;
* :mod:`repro.runtime.admission` — bounded in-flight admission control
  with a waiting queue and load shedding;
* :mod:`repro.runtime.retry` — deterministic per-service
  retry-with-timeout policies;
* :mod:`repro.runtime.metrics` — the :class:`RuntimeMetrics` snapshot;
* :mod:`repro.runtime.coordinator` — the :class:`Runtime` tying it all
  together, surfaced on the CLI as ``dscweaver serve``;
* :mod:`repro.runtime.workers` — the multi-process :class:`WorkerPool`
  partitioning one case load over N shard worker processes with
  segmented journals (``dscweaver serve --workers N``).

Importing the package registers the ``RT001``–``RT005`` runtime rules
with the lint registry (see :mod:`repro.runtime.rules`).
"""

from repro.runtime import rules  # noqa: F401  (registers RT00x lint rules)
from repro.runtime.admission import ADMIT, QUEUE, REJECT, AdmissionController
from repro.runtime.coordinator import Runtime, RuntimeReport, result_from_journal
from repro.runtime.instance import CaseInstance, CaseResult, CaseStatus
from repro.runtime.journal import (
    COMPLETED,
    FAILED,
    Journal,
    JournaledCase,
    JournalError,
    JournalState,
    SimulatedCrash,
    read_journal,
)
from repro.runtime.metrics import RuntimeMetrics, latency_quantiles
from repro.runtime.program import (
    ActivityInfo,
    ConstraintProgram,
    compile_program,
    program_from_weave,
)
from repro.runtime.retry import RetryPolicies, RetryPolicy
from repro.runtime.store import Shard, ShardedStore, shard_index
from repro.runtime.workers import (
    WorkerPool,
    WorkerPoolError,
    read_manifest,
    worker_of,
    write_manifest,
)

__all__ = [
    "ADMIT",
    "QUEUE",
    "REJECT",
    "COMPLETED",
    "FAILED",
    "ActivityInfo",
    "AdmissionController",
    "CaseInstance",
    "CaseResult",
    "CaseStatus",
    "ConstraintProgram",
    "Journal",
    "JournalError",
    "JournalState",
    "JournaledCase",
    "RetryPolicies",
    "RetryPolicy",
    "Runtime",
    "RuntimeMetrics",
    "RuntimeReport",
    "Shard",
    "ShardedStore",
    "SimulatedCrash",
    "WorkerPool",
    "WorkerPoolError",
    "compile_program",
    "latency_quantiles",
    "program_from_weave",
    "read_journal",
    "read_manifest",
    "result_from_journal",
    "rules",
    "shard_index",
    "worker_of",
    "write_manifest",
]
