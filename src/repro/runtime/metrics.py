"""Serving metrics for the multi-case runtime.

A :class:`RuntimeMetrics` value is an immutable snapshot of one
:class:`~repro.runtime.coordinator.Runtime`: admission counters
(admitted / queued / rejected, peak in-flight, peak queue depth),
execution cost (lifecycle transitions, constraint checks and the
checks-per-transition ratio the paper's minimization story is about),
throughput (completed cases per wall second) and case-latency quantiles
over the virtual makespans of completed cases.

Since the :mod:`repro.obs` registry became the shared exchange format,
the dataclass doubles as a *typed view* over it: :meth:`publish` writes
the snapshot's gauge-like fields into a
:class:`~repro.obs.MetricsRegistry` (the live counters —
``repro_runtime_cases_total`` and friends — are incremented by the
coordinator as cases finish), and :meth:`from_registry` reconstructs a
snapshot from a published registry.  Counter-backed fields round-trip
exactly; the latency quantiles come back as fixed-bucket estimates from
``repro_runtime_case_makespan_virtual``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.scheduler.montecarlo import quantile

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry


@dataclass(frozen=True)
class RuntimeMetrics:
    """One snapshot; produced by ``Runtime.metrics()``."""

    shards: int
    submitted: int
    admitted: int
    completed: int
    failed: int
    rejected: int
    recovered: int
    in_flight: int
    queue_depth: int
    peak_in_flight: int
    peak_queue_depth: int
    retries: int
    transitions: int
    checks: int
    journal_records: int
    wall_seconds: float
    latency_p50: float
    latency_p95: float
    shard_assigned: Tuple[int, ...]
    # Object-centric serving (all zero when no object constraints declared).
    objects: int = 0
    barriers_released: int = 0
    barriers_stranded: int = 0
    #: shard worker processes that served the load (1 = in-process runtime).
    workers: int = 1
    # Hot-swap migration outcomes (all zero when no redeploy happened).
    upgraded: int = 0
    drained: int = 0
    swap_rejected: int = 0

    @property
    def checks_per_transition(self) -> float:
        return self.checks / self.transitions if self.transitions else 0.0

    @property
    def cases_per_second(self) -> float:
        finished = self.completed + self.failed
        return finished / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> str:
        """Multi-line operator-facing snapshot (what ``serve`` prints)."""
        lines = [
            "cases: %d submitted, %d admitted, %d completed, %d failed, %d rejected"
            % (self.submitted, self.admitted, self.completed, self.failed, self.rejected),
            "throughput: %.1f cases/sec (%.3fs wall) | workers: %d | "
            "shards: %d, occupancy %s"
            % (
                self.cases_per_second,
                self.wall_seconds,
                self.workers,
                self.shards,
                "/".join(str(count) for count in self.shard_assigned),
            ),
            "latency (virtual): p50=%.1f p95=%.1f" % (self.latency_p50, self.latency_p95),
            "constraint checks: %d over %d transitions (%.2f per transition)"
            % (self.checks, self.transitions, self.checks_per_transition),
            "backpressure: peak in-flight %d, peak queue depth %d | retries: %d"
            % (self.peak_in_flight, self.peak_queue_depth, self.retries),
        ]
        if self.recovered or self.journal_records:
            lines.append(
                "journal: %d record(s) | recovered completed cases: %d"
                % (self.journal_records, self.recovered)
            )
        if self.objects:
            lines.append(
                "objects: %d tracked | barriers: %d released, %d stranded"
                % (self.objects, self.barriers_released, self.barriers_stranded)
            )
        if self.upgraded or self.drained or self.swap_rejected:
            lines.append(
                "redeploy: %d upgraded, %d drained, %d rejected"
                % (self.upgraded, self.drained, self.swap_rejected)
            )
        return "\n".join(lines)

    def publish(self, registry: "MetricsRegistry") -> None:
        """Write the snapshot's gauge-valued fields into ``registry``.

        Cumulative facts (finished cases, transitions, checks, retries,
        admission verdicts, makespans) are *not* re-emitted here — the
        coordinator increments those counters live; publishing again
        would double-count.  This method covers the point-in-time rest.
        """
        gauges = {
            "repro_runtime_shards": self.shards,
            "repro_runtime_submitted_cases": self.submitted,
            "repro_runtime_admitted_cases": self.admitted,
            "repro_runtime_recovered_cases": self.recovered,
            "repro_runtime_in_flight_cases": self.in_flight,
            "repro_runtime_queue_depth_cases": self.queue_depth,
            "repro_runtime_peak_in_flight_cases": self.peak_in_flight,
            "repro_runtime_peak_queue_depth_cases": self.peak_queue_depth,
            "repro_runtime_journal_records": self.journal_records,
            "repro_runtime_wall_seconds": self.wall_seconds,
            "repro_runtime_objects": self.objects,
            "repro_runtime_barriers_released": self.barriers_released,
            "repro_runtime_barriers_stranded": self.barriers_stranded,
            "repro_runtime_workers": self.workers,
            "repro_deploy_upgraded_cases": self.upgraded,
            "repro_deploy_drained_cases": self.drained,
            "repro_deploy_rejected_cases": self.swap_rejected,
        }
        for name, value in gauges.items():
            registry.gauge(name, _GAUGE_HELP[name]).set(value)
        shard_gauge = registry.gauge(
            "repro_runtime_shard_assigned_cases",
            _GAUGE_HELP["repro_runtime_shard_assigned_cases"],
            ("shard",),
        )
        for shard, assigned in enumerate(self.shard_assigned):
            shard_gauge.labels(shard=str(shard)).set(assigned)

    @classmethod
    def from_registry(cls, registry: "MetricsRegistry") -> "RuntimeMetrics":
        """Rebuild a snapshot from a registry populated by one serve run.

        The inverse of the coordinator's live counters plus
        :meth:`publish`.  Integer fields round-trip exactly; latency
        quantiles are bucket estimates (see module docstring).
        """
        from repro.runtime.journal import COMPLETED

        def gauge(name: str) -> float:
            metric = registry.get(name)
            return metric.value() if metric is not None else 0.0  # type: ignore[union-attr]

        def counter(name: str, **labels: str) -> float:
            metric = registry.get(name)
            return metric.value(**labels) if metric is not None else 0.0  # type: ignore[union-attr]

        cases = registry.get("repro_runtime_cases_total")
        completed = failed = 0
        if cases is not None:
            for (status,), child in cases.children():
                if status == COMPLETED:
                    completed += int(child.value)  # type: ignore[attr-defined]
                else:
                    failed += int(child.value)  # type: ignore[attr-defined]
        makespan = registry.get("repro_runtime_case_makespan_virtual")
        p50 = makespan.quantile(0.5) if makespan is not None else 0.0  # type: ignore[union-attr]
        p95 = makespan.quantile(0.95) if makespan is not None else 0.0  # type: ignore[union-attr]
        shard_gauge = registry.get("repro_runtime_shard_assigned_cases")
        assigned: Tuple[int, ...] = ()
        if shard_gauge is not None:
            pairs = sorted(
                (int(values[0]), int(child.value))  # type: ignore[attr-defined]
                for values, child in shard_gauge.children()
            )
            assigned = tuple(count for _shard, count in pairs)
        return cls(
            shards=int(gauge("repro_runtime_shards")),
            submitted=int(gauge("repro_runtime_submitted_cases")),
            admitted=int(gauge("repro_runtime_admitted_cases")),
            completed=completed,
            failed=failed,
            rejected=int(counter("repro_runtime_admission_total", verdict="reject")),
            recovered=int(gauge("repro_runtime_recovered_cases")),
            in_flight=int(gauge("repro_runtime_in_flight_cases")),
            queue_depth=int(gauge("repro_runtime_queue_depth_cases")),
            peak_in_flight=int(gauge("repro_runtime_peak_in_flight_cases")),
            peak_queue_depth=int(gauge("repro_runtime_peak_queue_depth_cases")),
            retries=int(counter("repro_runtime_retries_total")),
            transitions=int(counter("repro_runtime_transitions_total")),
            checks=int(counter("repro_runtime_checks_total")),
            journal_records=int(gauge("repro_runtime_journal_records")),
            wall_seconds=gauge("repro_runtime_wall_seconds"),
            latency_p50=p50,
            latency_p95=p95,
            shard_assigned=assigned,
            objects=int(gauge("repro_runtime_objects")),
            barriers_released=int(gauge("repro_runtime_barriers_released")),
            barriers_stranded=int(gauge("repro_runtime_barriers_stranded")),
            workers=int(gauge("repro_runtime_workers")) or 1,
            upgraded=int(gauge("repro_deploy_upgraded_cases")),
            drained=int(gauge("repro_deploy_drained_cases")),
            swap_rejected=int(gauge("repro_deploy_rejected_cases")),
        )


_GAUGE_HELP = {
    "repro_runtime_shards": "Number of instance-store shards.",
    "repro_runtime_submitted_cases": "Cases offered to admission.",
    "repro_runtime_admitted_cases": "Cases admitted (including promotions).",
    "repro_runtime_recovered_cases": "Completed cases adopted from the journal.",
    "repro_runtime_in_flight_cases": "Cases currently in flight.",
    "repro_runtime_queue_depth_cases": "Cases waiting in the admission queue.",
    "repro_runtime_peak_in_flight_cases": "Peak concurrent in-flight cases.",
    "repro_runtime_peak_queue_depth_cases": "Peak admission queue depth.",
    "repro_runtime_journal_records": "Write-ahead journal records written.",
    "repro_runtime_wall_seconds": "Wall-clock seconds spent in the run loop.",
    "repro_runtime_shard_assigned_cases": "Cases ever assigned, per shard.",
    "repro_runtime_objects": "Business objects tracked by the wait index.",
    "repro_runtime_barriers_released": "Cross-case barriers released.",
    "repro_runtime_barriers_stranded": "Cross-case barriers never released.",
    "repro_runtime_workers": "Shard worker processes that served the load.",
    "repro_deploy_upgraded_cases": "In-flight cases hot-upgraded to the new version.",
    "repro_deploy_drained_cases": "In-flight cases drained on their old version.",
    "repro_deploy_rejected_cases": "In-flight cases rejected at the swap barrier.",
}


def latency_quantiles(makespans: Tuple[float, ...]) -> Tuple[float, float]:
    """``(p50, p95)`` of completed-case makespans (0.0 when none finished)."""
    if not makespans:
        return 0.0, 0.0
    return quantile(makespans, 0.5), quantile(makespans, 0.95)
