"""Serving metrics for the multi-case runtime.

A :class:`RuntimeMetrics` value is an immutable snapshot of one
:class:`~repro.runtime.coordinator.Runtime`: admission counters
(admitted / queued / rejected, peak in-flight, peak queue depth),
execution cost (lifecycle transitions, constraint checks and the
checks-per-transition ratio the paper's minimization story is about),
throughput (completed cases per wall second) and case-latency quantiles
over the virtual makespans of completed cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.scheduler.montecarlo import quantile


@dataclass(frozen=True)
class RuntimeMetrics:
    """One snapshot; produced by ``Runtime.metrics()``."""

    shards: int
    submitted: int
    admitted: int
    completed: int
    failed: int
    rejected: int
    recovered: int
    in_flight: int
    queue_depth: int
    peak_in_flight: int
    peak_queue_depth: int
    retries: int
    transitions: int
    checks: int
    journal_records: int
    wall_seconds: float
    latency_p50: float
    latency_p95: float
    shard_assigned: Tuple[int, ...]

    @property
    def checks_per_transition(self) -> float:
        return self.checks / self.transitions if self.transitions else 0.0

    @property
    def cases_per_second(self) -> float:
        finished = self.completed + self.failed
        return finished / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> str:
        """Multi-line operator-facing snapshot (what ``serve`` prints)."""
        lines = [
            "cases: %d submitted, %d admitted, %d completed, %d failed, %d rejected"
            % (self.submitted, self.admitted, self.completed, self.failed, self.rejected),
            "throughput: %.1f cases/sec (%.3fs wall) | shards: %d, occupancy %s"
            % (
                self.cases_per_second,
                self.wall_seconds,
                self.shards,
                "/".join(str(count) for count in self.shard_assigned),
            ),
            "latency (virtual): p50=%.1f p95=%.1f" % (self.latency_p50, self.latency_p95),
            "constraint checks: %d over %d transitions (%.2f per transition)"
            % (self.checks, self.transitions, self.checks_per_transition),
            "backpressure: peak in-flight %d, peak queue depth %d | retries: %d"
            % (self.peak_in_flight, self.peak_queue_depth, self.retries),
        ]
        if self.recovered or self.journal_records:
            lines.append(
                "journal: %d record(s) | recovered completed cases: %d"
                % (self.journal_records, self.recovered)
            )
        return "\n".join(lines)


def latency_quantiles(makespans: Tuple[float, ...]) -> Tuple[float, float]:
    """``(p50, p95)`` of completed-case makespans (0.0 when none finished)."""
    if not makespans:
        return 0.0, 0.0
    return quantile(makespans, 0.5), quantile(makespans, 0.95)
