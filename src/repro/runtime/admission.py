"""Admission control and backpressure for the multi-case runtime.

The runtime bounds the number of *in-flight* cases (cases holding real
resources: shard slots, journal traffic, service conversations).  Offers
beyond ``max_in_flight`` wait in a bounded FIFO queue; offers beyond
``max_queue`` are **rejected** immediately (an ``RT002`` diagnostic and a
rejection counter) — load shedding at the door instead of collapse under
it.  Every case completion frees one slot and promotes the longest-waiting
queued case.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: Verdicts of :meth:`AdmissionController.offer`.
ADMIT = "admit"
QUEUE = "queue"
REJECT = "reject"

#: ``case -> guard outcomes`` pair travelling through the queue.
Offer = Tuple[str, Dict[str, str]]


class AdmissionController:
    """Bounded in-flight slots plus a bounded waiting queue.

    ``max_in_flight=None`` (default) admits everything immediately;
    ``max_queue=None`` never rejects (the queue grows without bound).
    """

    def __init__(
        self,
        max_in_flight: Optional[int] = None,
        max_queue: Optional[int] = None,
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if max_queue is not None and max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.in_flight = 0
        self.rejected = 0
        self.peak_in_flight = 0
        self.peak_queue_depth = 0
        self._waiting: Deque[Offer] = deque()

    @property
    def queue_depth(self) -> int:
        return len(self._waiting)

    def waiting_cases(self) -> Tuple[str, ...]:
        return tuple(case for case, _outcomes in self._waiting)

    def offer(self, case: str, outcomes: Dict[str, str]) -> str:
        """Try to admit ``case``; returns :data:`ADMIT`/:data:`QUEUE`/:data:`REJECT`."""
        if self.max_in_flight is None or self.in_flight < self.max_in_flight:
            self._take_slot()
            return ADMIT
        if self.max_queue is None or len(self._waiting) < self.max_queue:
            self._waiting.append((case, dict(outcomes)))
            self.peak_queue_depth = max(self.peak_queue_depth, len(self._waiting))
            return QUEUE
        self.rejected += 1
        return REJECT

    def force_admit(self) -> None:
        """Take a slot unconditionally (recovery of already-admitted cases)."""
        self._take_slot()

    def complete(self) -> Optional[Offer]:
        """Release one slot; returns the promoted offer, if any waited.

        The promoted case keeps the released slot, so ``in_flight`` stays
        constant while the queue drains.
        """
        self.in_flight -= 1
        if self._waiting:
            self._take_slot()
            return self._waiting.popleft()
        return None

    def _take_slot(self) -> None:
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
