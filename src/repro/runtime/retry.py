"""Per-service retry-with-timeout policies for simulated remote services.

The discrete-event world of :mod:`repro.scheduler.services` is lossless;
a serving runtime cannot assume that.  A :class:`RetryPolicy` models the
client side of an unreliable channel: each invocation attempt is lost with
``failure_rate`` probability, a lost attempt times out after ``timeout``
virtual time units, and the runtime retries up to ``max_attempts`` total
attempts before declaring the interaction dead (an ``RT001`` diagnostic
that fails the case).

Loss is **deterministic**: whether attempt ``k`` of a given case/port gets
through is a pure function of ``(seed, case, service, port, k)``, so crash
recovery replays the exact same delivery schedule and paired experiments
(minimal vs. full constraint set) observe identical service behavior.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side delivery policy for one remote service.

    The default policy (``failure_rate=0``) is the lossless channel, under
    which multi-case execution is bit-for-bit identical to the single-case
    :class:`~repro.scheduler.engine.ConstraintScheduler`.
    """

    failure_rate: float = 0.0
    timeout: float = 2.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def attempt_delivered(
        self, seed: int, case: str, service: str, port: str, attempt: int
    ) -> bool:
        """Does attempt ``attempt`` (1-based) reach the service?

        Deterministic in its arguments: :class:`random.Random` seeded with
        a string hashes it stably (unlike built-in ``hash``), so the same
        draw is reproduced across processes and recoveries.
        """
        if self.failure_rate == 0.0:
            return True
        draw = random.Random(
            "%d:%s:%s:%s:%d" % (seed, case, service, port, attempt)
        ).random()
        return draw >= self.failure_rate


class RetryPolicies:
    """Per-service policy table with a default."""

    def __init__(
        self,
        default: Optional[RetryPolicy] = None,
        per_service: Optional[Mapping[str, RetryPolicy]] = None,
    ) -> None:
        self.default = default or RetryPolicy()
        self.per_service = dict(per_service or {})

    def for_service(self, service: str) -> RetryPolicy:
        return self.per_service.get(service, self.default)
