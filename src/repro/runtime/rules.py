"""RT00x runtime failure codes, registered with the :mod:`repro.lint` engine.

Like the ``CONF00x`` conformance codes, runtime diagnostics are produced
by execution (the multi-case coordinator), not by a static check — but
registering them here gives them the same first-class treatment: they
appear in the SARIF ``tool.driver.rules`` table, honor
``--select``/``--ignore`` prefixes (``RT`` selects the group), text/JSON/
SARIF rendering and ``--fail-on`` severity gating apply unchanged, and
:func:`~repro.lint.engine.run_lint` surfaces them when a
:class:`~repro.runtime.coordinator.RuntimeReport` is attached to the lint
context (``context.runtime = report``).
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintContext, rule

#: Stable runtime failure codes.
RETRY_EXHAUSTED = "RT001"
ADMISSION_REJECTED = "RT002"
JOURNAL_MISMATCH = "RT003"
DEADLOCK = "RT004"
PROTOCOL_FAULT = "RT005"
STRANDED_BARRIER = "RT006"

#: The runtime rule codes, in reporting order.
RT_CODES = (
    RETRY_EXHAUSTED,
    ADMISSION_REJECTED,
    JOURNAL_MISMATCH,
    DEADLOCK,
    PROTOCOL_FAULT,
    STRANDED_BARRIER,
)


def _runtime(context: LintContext, code: str) -> Iterable[Diagnostic]:
    report = getattr(context, "runtime", None)
    if report is None:
        return ()
    return tuple(d for d in report.diagnostics if d.code == code)


@rule(
    RETRY_EXHAUSTED,
    "service-retry-exhausted",
    "a remote service stayed unreachable through every retry attempt",
    Severity.ERROR,
)
def check_retry_exhausted(context: LintContext) -> Iterable[Diagnostic]:
    return _runtime(context, RETRY_EXHAUSTED)


@rule(
    ADMISSION_REJECTED,
    "admission-rejected",
    "a case was rejected because the admission queue was full",
    Severity.WARNING,
)
def check_admission_rejected(context: LintContext) -> Iterable[Diagnostic]:
    return _runtime(context, ADMISSION_REJECTED)


@rule(
    JOURNAL_MISMATCH,
    "journal-recovery-mismatch",
    "re-execution after a crash diverged from the journaled event prefix",
    Severity.ERROR,
)
def check_journal_mismatch(context: LintContext) -> Iterable[Diagnostic]:
    return _runtime(context, JOURNAL_MISMATCH)


@rule(
    DEADLOCK,
    "case-deadlocked",
    "a case stalled with unfinished activities and no pending events",
    Severity.ERROR,
)
def check_case_deadlock(context: LintContext) -> Iterable[Diagnostic]:
    return _runtime(context, DEADLOCK)


@rule(
    PROTOCOL_FAULT,
    "service-protocol-fault",
    "a state-aware service rejected an out-of-order invocation at runtime",
    Severity.ERROR,
)
def check_protocol_fault(context: LintContext) -> Iterable[Diagnostic]:
    return _runtime(context, PROTOCOL_FAULT)


@rule(
    STRANDED_BARRIER,
    "stranded-cross-case-barrier",
    "a case waited on a cross-case barrier whose declared children can "
    "no longer all resolve",
    Severity.ERROR,
)
def check_stranded_barrier(context: LintContext) -> Iterable[Diagnostic]:
    return _runtime(context, STRANDED_BARRIER)
