"""Multi-process shard workers: scale-out serving over segmented journals.

A :class:`WorkerPool` splits one case load across ``N`` worker processes.
Each worker owns a disjoint partition of the cases (placed by the same
CRC-32 :func:`~repro.runtime.store.shard_index` hash the in-process store
uses, over the object key when co-sharding so an object's cases stay
together) and runs a full single-process
:class:`~repro.runtime.coordinator.Runtime` over them, writing its own
write-ahead journal segment::

    <journal_dir>/manifest.json      # worker count + segment names
    <journal_dir>/journal.0.jsonl    # worker 0's WAL (same record format)
    ...
    <journal_dir>/journal.N-1.jsonl

Cross-shard object barriers survive the process split through a
bulk-synchronous gate exchange: every worker runs until it has no
runnable work (parked cases stay parked instead of failing as stranded),
ships the obligation records it journaled since the last exchange to the
pool, and the pool broadcasts each worker's records to all siblings.
Barrier release times are running maxima over the declared child set
(see :mod:`repro.objects.waitindex`), so the merged index state — and
therefore every case's event sequence — is independent of which worker
applied a record first, of the worker count, and of exchange timing.
Only when a full exchange moves no new record while cases are still
parked does the pool broadcast *finalize*, and every worker fails its
parked cases (``RT006``) against the same converged index state the
single-process runtime would have seen.

Durability across the split: a worker flushes its journal segment before
shipping an outbox (see ``Runtime.take_gate_outbox``), so any record a
sibling acted on is durable on the shard that owns it.  Recovery reads
all segments (in parallel, one worker process per segment), re-executes
in-flight cases with prefix verification exactly like single-process
recovery, and pre-applies the union of all segments' obligation records
so partially satisfied barriers are restored globally.

``crash_after=N`` arms fault injection on *every* worker's journal (the
whole-box power-loss model); pass a mapping ``{worker: N}`` to crash a
subset.  The pool then stops the surviving workers at the next exchange
barrier — their segments end at a group-commit boundary — and re-raises
:class:`~repro.runtime.journal.SimulatedCrash`, mirroring the
single-process contract.

``processes=False`` runs the same bulk-synchronous protocol with all
workers in the calling process — the sequential-recovery baseline the
``BENCH_runtime`` recovery curves compare against, and the fallback
where ``fork`` is unavailable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.lint.diagnostics import Diagnostic
from repro.objects.model import ObjectBinding, ObjectSpec
from repro.runtime.coordinator import Runtime, RuntimeReport
from repro.runtime.journal import SimulatedCrash, read_journal
from repro.runtime.metrics import RuntimeMetrics, latency_quantiles
from repro.runtime.program import ConstraintProgram
from repro.runtime.retry import RetryPolicies
from repro.runtime.store import shard_index

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "dscweaver-worker-journal/1"


class WorkerPoolError(ReproError):
    """Pool misconfiguration or a broken segmented-journal directory."""


def segment_name(worker: int) -> str:
    return "journal.%d.jsonl" % worker


def worker_of(case: str, binding: Optional[ObjectBinding], workers: int,
              co_shard: bool = True) -> int:
    """The worker owning ``case`` — the store's placement hash, verbatim,
    so a case lands on the same worker across restarts and recovery."""
    key = (
        binding.object_key
        if binding is not None and co_shard
        else case
    )
    return shard_index(key, workers)


def write_manifest(journal_dir: str, workers: int, co_shard: bool,
                   flush_every: int) -> str:
    """Write ``manifest.json`` describing the segmented journal layout."""
    payload = {
        "format": MANIFEST_FORMAT,
        "workers": workers,
        "journals": [segment_name(i) for i in range(workers)],
        "co_shard": co_shard,
        "flush_every": flush_every,
    }
    path = os.path.join(journal_dir, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_manifest(journal_dir: str) -> Dict[str, Any]:
    path = os.path.join(journal_dir, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise WorkerPoolError("no %s in %r" % (MANIFEST_NAME, journal_dir))
    except ValueError as error:
        raise WorkerPoolError("malformed manifest in %r: %s" % (journal_dir, error))
    if payload.get("format") != MANIFEST_FORMAT:
        raise WorkerPoolError(
            "unsupported manifest format %r" % payload.get("format")
        )
    return payload


@dataclass
class _WorkerOptions:
    """Everything one shard worker needs to build its Runtime."""

    index: int
    journal_path: Optional[str]
    crash_after: Optional[int]
    shards: int
    batch: int
    indexed: bool
    fast: bool
    flush_every: int
    co_shard: bool
    seed: int
    policies: Optional[RetryPolicies]
    #: armed hot-swap spec (:class:`repro.deploy.migrate.PoolSwap`), or
    #: None.  Set at construction, before any fork, so worker processes
    #: inherit the compiled old/new programs by memory.
    deploy: Optional[object] = None


class _ShardWorker:
    """The per-worker state machine; identical in-process and forked.

    Commands (one reply each)::

        ("scan",)                      -> ("meta", bindings, records,
                                           cases, begun)
        ("start", plans, bindings,
         foreign_b, foreign_r,
         swap_now)                     -> ("round", blocked, outbox, paused)
        ("gates", records)             -> ("round", blocked, outbox, paused)
        ("finalize",)                  -> ("round", blocked, outbox, paused)
        ("swap",)                      -> ("round", blocked, outbox, paused)
        ("finish",)                    -> ("done", results, diagnostics,
                                           metrics, counters, versions)
        ("stop",)                      -> ("stopped",)

    ``paused`` is True while an armed hot swap has not been applied yet:
    the worker stopped at the scheduling barrier once its local pause
    target was reached and waits for the pool to broadcast ``("swap",)``,
    so all workers flip versions in the same exchange round.  A
    :class:`SimulatedCrash` during any run (including the swap itself)
    turns the reply into ``("crashed", records_written)``; the worker
    then only accepts ``("stop",)``.
    """

    def __init__(self, program: ConstraintProgram, spec: Optional[ObjectSpec],
                 options: _WorkerOptions, recovering: bool = False) -> None:
        self._program = program
        self._spec = spec
        self._options = options
        self._recovering = recovering
        self._runtime: Optional[Runtime] = None
        self._state = None  # parsed JournalState in recover mode
        self._swapped = options.deploy is None

    def handle(self, command: Tuple) -> Tuple:
        kind = command[0]
        if kind == "scan":
            return self._scan()
        if kind == "start":
            _, plans, bindings, foreign_bindings, foreign_records, swap_now = command
            return self._start(
                plans, bindings, foreign_bindings, foreign_records, swap_now
            )
        if kind == "gates":
            return self._run(apply_records=command[1])
        if kind == "finalize":
            return self._run(finalize=True)
        if kind == "swap":
            return self._swap()
        if kind == "finish":
            return self._finish()
        if kind == "stop":
            if self._runtime is not None:
                self._runtime.close()
            return ("stopped",)
        raise WorkerPoolError("unknown worker command %r" % (kind,))

    # -- recovery scan --------------------------------------------------------

    def _scan(self) -> Tuple:
        """Parse this worker's journal segment; report what other workers
        need — admit bindings (index seeding), obligation records and the
        journaled case ids (so the pool can resubmit only unknown cases)."""
        assert self._options.journal_path is not None
        self._state = read_journal(self._options.journal_path)
        bindings = {
            journaled.case: dict(journaled.binding)
            for journaled in self._state.cases.values()
            if journaled.binding is not None
        }
        deploy = self._options.deploy
        begun = self._state.pending_deploy() is not None or (
            deploy is not None
            and self._state.current_version() >= deploy.new.version
        )
        return (
            "meta",
            bindings,
            [dict(r) for r in self._state.objects],
            sorted(self._state.cases),
            begun,
        )

    # -- rounds ---------------------------------------------------------------

    def _build(self) -> Runtime:
        options = self._options
        kwargs = dict(
            shards=options.shards,
            batch=options.batch,
            indexed=options.indexed,
            fast=options.fast,
            flush_every=options.flush_every,
            co_shard=options.co_shard,
            seed=options.seed,
            policies=options.policies,
            objects=self._spec,
            external_gates=True,
        )
        deploy = options.deploy
        if deploy is not None:
            kwargs["programs"] = {
                deploy.old.version: deploy.old.program,
                deploy.new.version: deploy.new.program,
            }
            kwargs["version"] = deploy.old.version
        if self._recovering:
            assert options.journal_path is not None
            if deploy is not None:
                # Recovery must trust the journal, not the pre-swap
                # default, for the serving version of this segment.
                kwargs.pop("version")
            return Runtime.recover(
                options.journal_path,
                self._program,
                crash_after=options.crash_after,
                state=self._state,
                **kwargs,
            )
        return Runtime(
            self._program,
            journal_path=options.journal_path,
            crash_after=options.crash_after,
            **kwargs,
        )

    def _start(self, plans, bindings, foreign_bindings, foreign_records,
               swap_now: bool = False) -> Tuple:
        try:
            self._runtime = self._build()
            if self._recovering and self._options.deploy is not None:
                self._recover_swap(swap_now)
            self._runtime.seed_foreign_bindings(
                {
                    case: ObjectBinding.from_dict(payload)
                    for case, payload in foreign_bindings.items()
                }
            )
            self._runtime.apply_foreign_gates(foreign_records)
            if plans:
                self._runtime.submit_batch(
                    plans,
                    bindings={
                        case: ObjectBinding.from_dict(payload)
                        for case, payload in bindings.items()
                    },
                )
            return self._round()
        except SimulatedCrash as crash:
            return ("crashed", crash.records_written)

    def _recover_swap(self, swap_now: bool) -> None:
        """Converge this segment's version state at recovery start.

        Any sibling segment with a ``begin`` means the crashed run was
        mid-swap, so *every* worker completes the swap before any case
        resumes: segments with a pending ``begin`` roll forward
        (:func:`~repro.deploy.migrate.resume_swap`), segments the crash
        hit before their ``begin`` swap from scratch, and segments whose
        ``commit`` survived only re-register the new program.
        """
        from repro.deploy.migrate import MigrationEngine, execute_swap, resume_swap

        spec = self._options.deploy
        runtime = self._runtime
        state = self._state
        assert spec is not None and runtime is not None and state is not None
        if state.current_version() >= spec.new.version:
            # Committed before the crash; recover() adopted the version.
            runtime.register_program(spec.new.version, spec.new.program)
            self._swapped = True
            return
        engine = MigrationEngine(spec.old, spec.new, state_limit=spec.state_limit)
        if state.pending_deploy() is not None:
            resume_swap(runtime, engine, state, spec.strategy)
            self._swapped = True
        elif swap_now:
            execute_swap(runtime, engine, spec.strategy)
            self._swapped = True
        # else: no segment begun — the swap is still armed and will run
        # at the pause barrier like an uncrashed serve.

    def _run(self, apply_records=None, finalize: bool = False) -> Tuple:
        runtime = self._runtime
        assert runtime is not None
        try:
            if apply_records:
                runtime.apply_foreign_gates(apply_records)
            if finalize:
                runtime.finalize_stranded()
            return self._round()
        except SimulatedCrash as crash:
            return ("crashed", crash.records_written)

    def _swap(self) -> Tuple:
        """Apply the armed hot swap at the pool's exchange barrier."""
        from repro.deploy.migrate import MigrationEngine, execute_swap

        spec = self._options.deploy
        runtime = self._runtime
        assert runtime is not None
        try:
            if spec is not None and not self._swapped:
                engine = MigrationEngine(
                    spec.old, spec.new, state_limit=spec.state_limit
                )
                execute_swap(runtime, engine, spec.strategy)
                self._swapped = True
            return self._round()
        except SimulatedCrash as crash:
            return ("crashed", crash.records_written)

    def _round(self) -> Tuple:
        runtime = self._runtime
        assert runtime is not None
        if not self._swapped:
            # Armed swap: pause at the scheduling barrier once the local
            # target is reached (or the store drains) and wait for the
            # pool to broadcast ("swap",).
            deploy = self._options.deploy
            assert deploy is not None
            runtime.run_until_completed(deploy.after)
            return ("round", False, runtime.take_gate_outbox(), True)
        blocked = runtime.run_until_blocked()
        return ("round", blocked, runtime.take_gate_outbox(), False)

    # -- completion -----------------------------------------------------------

    def _finish(self) -> Tuple:
        runtime = self._runtime
        assert runtime is not None
        report = runtime.report()
        runtime.close()
        return (
            "done",
            report.results,
            list(report.diagnostics),
            report.metrics,
            runtime.object_counters(),
            runtime.version_map(),
        )


def _forked_main(conn, worker: _ShardWorker) -> None:
    """Child-process loop: serve commands over the pipe until told to stop."""
    try:
        while True:
            command = conn.recv()
            reply = worker.handle(command)
            conn.send(reply)
            if command[0] in ("finish", "stop"):
                break
    except EOFError:  # parent died; nothing sensible left to do
        pass
    finally:
        conn.close()


class _LocalHandle:
    """In-process worker with the same send/recv surface as a fork."""

    def __init__(self, worker: _ShardWorker) -> None:
        self._worker = worker
        self._reply: Optional[Tuple] = None

    def send(self, command: Tuple) -> None:
        self._reply = self._worker.handle(command)

    def recv(self) -> Tuple:
        reply = self._reply
        assert reply is not None, "recv before send"
        self._reply = None
        return reply

    def join(self) -> None:  # symmetry with _ForkedHandle
        pass


class _ForkedHandle:
    """One worker process plus the parent end of its pipe."""

    def __init__(self, context, worker: _ShardWorker) -> None:
        parent_conn, child_conn = context.Pipe()
        self._conn = parent_conn
        self._process = context.Process(
            target=_forked_main, args=(child_conn, worker), daemon=True
        )
        self._process.start()
        child_conn.close()

    def send(self, command: Tuple) -> None:
        self._conn.send(command)

    def recv(self) -> Tuple:
        return self._conn.recv()

    def join(self) -> None:
        self._process.join(timeout=60)
        self._conn.close()


class WorkerPool:
    """Serve (or recover) one case load across N shard worker processes.

    One-shot: :meth:`serve` (or the :meth:`recover` classmethod) drives
    the whole load to completion, merges the per-worker reports and shuts
    the workers down.  Admission bounds are unsupported across workers —
    the pool serves everything submitted.

    Parameters mirror :class:`~repro.runtime.coordinator.Runtime` where
    they share a name; ``workers`` is the process count, ``journal_dir``
    the segmented-journal directory (``None`` serves without a WAL) and
    ``processes=False`` keeps every worker in the calling process.
    """

    def __init__(
        self,
        program: ConstraintProgram,
        workers: int = 2,
        journal_dir: Optional[str] = None,
        objects: Optional[ObjectSpec] = None,
        co_shard: bool = True,
        indexed: bool = True,
        fast: bool = True,
        flush_every: int = 1,
        crash_after: Optional[object] = None,
        shards_per_worker: int = 2,
        batch: int = 8,
        seed: int = 0,
        policies: Optional[RetryPolicies] = None,
        processes: bool = True,
        deploy: Optional[object] = None,
    ) -> None:
        if workers < 1:
            raise WorkerPoolError("workers must be at least 1")
        if crash_after is not None and journal_dir is None:
            raise WorkerPoolError("crash_after requires journal_dir")
        if deploy is not None:
            if journal_dir is None:
                raise WorkerPoolError("hot swap requires journal_dir")
            if objects:
                raise WorkerPoolError(
                    "hot swap is not supported for object-centric runs"
                )
        self._program = program
        self._workers = workers
        self._journal_dir = journal_dir
        self._spec = objects if objects else None
        self._co_shard = co_shard
        self._indexed = indexed
        self._fast = fast
        self._flush_every = flush_every
        self._crash_after = crash_after
        self._shards_per_worker = shards_per_worker
        self._batch = batch
        self._seed = seed
        self._policies = policies
        self._processes = processes
        self._deploy = deploy

    # -- public one-shot entry points ----------------------------------------

    def serve(
        self,
        plans: Mapping[str, Mapping[str, str]],
        bindings: Optional[Mapping[str, ObjectBinding]] = None,
    ) -> RuntimeReport:
        """Partition ``plans`` over the workers and drive them to completion."""
        bindings = dict(bindings or {})
        if self._journal_dir is not None:
            os.makedirs(self._journal_dir, exist_ok=True)
            write_manifest(
                self._journal_dir, self._workers, self._co_shard, self._flush_every
            )
        per_worker_plans: List[Dict[str, Dict[str, str]]] = [
            {} for _ in range(self._workers)
        ]
        per_worker_bindings: List[Dict[str, Dict[str, Any]]] = [
            {} for _ in range(self._workers)
        ]
        all_bindings = {
            case: binding.to_dict() for case, binding in bindings.items()
        }
        for case, outcomes in plans.items():
            index = worker_of(
                case, bindings.get(case), self._workers, self._co_shard
            )
            per_worker_plans[index][case] = dict(outcomes)
            if case in all_bindings:
                per_worker_bindings[index][case] = all_bindings[case]
        handles = self._spawn(recovering=False)
        starts = []
        for index in range(self._workers):
            foreign = {
                case: payload
                for case, payload in all_bindings.items()
                if case not in per_worker_bindings[index]
            }
            starts.append(
                (
                    "start",
                    per_worker_plans[index],
                    per_worker_bindings[index],
                    foreign,
                    [],
                    False,
                )
            )
        return self._drive(handles, starts)

    @classmethod
    def recover(
        cls,
        journal_dir: str,
        program: ConstraintProgram,
        objects: Optional[ObjectSpec] = None,
        processes: bool = True,
        plans: Optional[Mapping[str, Mapping[str, str]]] = None,
        bindings: Optional[Mapping[str, ObjectBinding]] = None,
        **kwargs,
    ) -> RuntimeReport:
        """Recover a crashed segmented-journal run and drive it to completion.

        Every worker parses its own segment (in parallel under
        ``processes=True``); the pool then broadcasts each segment's
        admit bindings and obligation records to the siblings before any
        case resumes, so the rebuilt wait indexes converge on the same
        global state single-process recovery would compute.  ``plans``
        optionally resubmits a case load: cases already in any journal
        segment are skipped, the rest are placed on their hash worker
        and served alongside the recovered ones.
        """
        manifest = read_manifest(journal_dir)
        pool = cls(
            program,
            workers=int(manifest["workers"]),
            journal_dir=journal_dir,
            objects=objects,
            co_shard=bool(manifest.get("co_shard", True)),
            flush_every=int(manifest.get("flush_every", 1)),
            processes=processes,
            **kwargs,
        )
        handles = pool._spawn(recovering=True)
        for handle in handles:
            handle.send(("scan",))
        metas = [handle.recv() for handle in handles]
        all_bindings: List[Dict[str, Dict[str, Any]]] = []
        all_records: List[List[Dict[str, Any]]] = []
        known: set = set()
        any_begun = False
        for reply in metas:
            if reply[0] != "meta":
                raise WorkerPoolError("unexpected scan reply %r" % (reply[0],))
            all_bindings.append(reply[1])
            all_records.append(reply[2])
            known.update(reply[3])
            any_begun = any_begun or bool(reply[4])
        bindings = dict(bindings or {})
        fresh_plans: List[Dict[str, Dict[str, str]]] = [
            {} for _ in range(pool._workers)
        ]
        fresh_bindings: List[Dict[str, Dict[str, Any]]] = [
            {} for _ in range(pool._workers)
        ]
        fresh_all: Dict[str, Dict[str, Any]] = {}
        for case, outcomes in (plans or {}).items():
            if case in known:
                continue
            index = worker_of(
                case, bindings.get(case), pool._workers, pool._co_shard
            )
            fresh_plans[index][case] = dict(outcomes)
            if case in bindings:
                payload = bindings[case].to_dict()
                fresh_bindings[index][case] = payload
                fresh_all[case] = payload
        starts = []
        for index in range(pool._workers):
            foreign_bindings: Dict[str, Dict[str, Any]] = {}
            foreign_records: List[Dict[str, Any]] = []
            for other in range(pool._workers):
                if other == index:
                    continue
                foreign_bindings.update(all_bindings[other])
                foreign_records.extend(all_records[other])
            for case, payload in fresh_all.items():
                if case not in fresh_bindings[index]:
                    foreign_bindings[case] = payload
            starts.append(
                (
                    "start",
                    fresh_plans[index],
                    fresh_bindings[index],
                    foreign_bindings,
                    foreign_records,
                    # A crash mid-swap leaves some segments without their
                    # ``begin``: if any sibling begun, those workers swap
                    # at start so recovery converges on one version map.
                    any_begun,
                )
            )
        return pool._drive(handles, starts)

    # -- the bulk-synchronous exchange ----------------------------------------

    def _spawn(self, recovering: bool) -> List:
        workers = []
        for index in range(self._workers):
            journal_path = (
                os.path.join(self._journal_dir, segment_name(index))
                if self._journal_dir is not None
                else None
            )
            workers.append(
                _ShardWorker(
                    self._program,
                    self._spec,
                    _WorkerOptions(
                        index=index,
                        journal_path=journal_path,
                        crash_after=self._crash_for(index, recovering),
                        shards=self._shards_per_worker,
                        batch=self._batch,
                        indexed=self._indexed,
                        fast=self._fast,
                        flush_every=self._flush_every,
                        co_shard=self._co_shard,
                        seed=self._seed,
                        policies=self._policies,
                        deploy=self._deploy,
                    ),
                    recovering=recovering,
                )
            )
        if not self._processes:
            return [_LocalHandle(worker) for worker in workers]
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            return [_LocalHandle(worker) for worker in workers]
        return [_ForkedHandle(context, worker) for worker in workers]

    def _crash_for(self, index: int, recovering: bool) -> Optional[int]:
        if recovering or self._crash_after is None:
            return None
        if isinstance(self._crash_after, Mapping):
            value = self._crash_after.get(index)
            return int(value) if value is not None else None
        return int(self._crash_after)

    def _drive(self, handles: List, commands: List[Tuple]) -> RuntimeReport:
        """Run exchange rounds until quiescent, then merge worker reports."""
        import time as _time

        started = _time.perf_counter()
        finalized = False
        while True:
            for handle, command in zip(handles, commands):
                handle.send(command)
            replies = [handle.recv() for handle in handles]
            crashed = [reply for reply in replies if reply[0] == "crashed"]
            if crashed:
                self._abort(handles, replies)
                raise SimulatedCrash(max(reply[1] for reply in crashed))
            if any(len(reply) > 3 and reply[3] for reply in replies):
                # Every worker paused at the scheduling barrier with its
                # armed swap (hot swap excludes objects, so outboxes are
                # empty): flip all workers in this one exchange round.
                commands = [("swap",) for _ in handles]
                continue
            blocked = [index for index, reply in enumerate(replies) if reply[1]]
            outboxes = [reply[2] for reply in replies]
            if any(outboxes):
                # Records moved: broadcast each worker's records to every
                # sibling (index convergence), then run another round.
                finalized = False
                commands = []
                for index in range(len(handles)):
                    foreign: List[Dict[str, Any]] = []
                    for other, outbox in enumerate(outboxes):
                        if other != index:
                            foreign.extend(outbox)
                    commands.append(("gates", foreign))
                continue
            if blocked and not finalized:
                # Global quiescence with parked cases: no worker can make
                # gate progress, so the barriers are stranded everywhere.
                finalized = True
                commands = [("finalize",) for _ in handles]
                continue
            break
        for handle in handles:
            handle.send(("finish",))
        dones = [handle.recv() for handle in handles]
        for handle in handles:
            handle.join()
        wall = _time.perf_counter() - started
        return self._merge(dones, wall)

    def _abort(self, handles: List, replies: List[Tuple]) -> None:
        """A worker crashed: stop every worker at the exchange barrier.

        Survivors flush and close their journal segments (a consistent
        group-commit prefix); the crashed worker's journal is already
        closed, so its stop is a plain shutdown handshake.
        """
        for handle in handles:
            handle.send(("stop",))
        for handle in handles:
            handle.recv()
        for handle in handles:
            handle.join()

    def _merge(self, dones: List[Tuple], wall: float) -> RuntimeReport:
        results: Dict[str, Any] = {}
        diagnostics: List[Diagnostic] = []
        per_worker_metrics: List[RuntimeMetrics] = []
        self._counters: List[Dict] = []
        self._version_map: Dict[str, int] = {}
        for reply in dones:
            if reply[0] != "done":
                raise WorkerPoolError("unexpected finish reply %r" % (reply[0],))
            _, worker_results, worker_diags, worker_metrics, counters, versions = reply
            results.update(worker_results)
            diagnostics.extend(worker_diags)
            per_worker_metrics.append(worker_metrics)
            self._counters.append(counters)
            self._version_map.update(versions)
        from repro.runtime.journal import COMPLETED

        makespans = tuple(
            result.makespan
            for result in results.values()
            if result.status == COMPLETED
        )
        p50, p95 = latency_quantiles(makespans)
        shard_assigned: Tuple[int, ...] = ()
        for metrics in per_worker_metrics:
            shard_assigned += metrics.shard_assigned
        merged = RuntimeMetrics(
            shards=sum(m.shards for m in per_worker_metrics),
            submitted=sum(m.submitted for m in per_worker_metrics),
            admitted=sum(m.admitted for m in per_worker_metrics),
            completed=sum(m.completed for m in per_worker_metrics),
            failed=sum(m.failed for m in per_worker_metrics),
            rejected=sum(m.rejected for m in per_worker_metrics),
            recovered=sum(m.recovered for m in per_worker_metrics),
            in_flight=sum(m.in_flight for m in per_worker_metrics),
            queue_depth=sum(m.queue_depth for m in per_worker_metrics),
            peak_in_flight=sum(m.peak_in_flight for m in per_worker_metrics),
            peak_queue_depth=sum(m.peak_queue_depth for m in per_worker_metrics),
            retries=sum(m.retries for m in per_worker_metrics),
            transitions=sum(m.transitions for m in per_worker_metrics),
            checks=sum(m.checks for m in per_worker_metrics),
            journal_records=sum(m.journal_records for m in per_worker_metrics),
            wall_seconds=wall,
            latency_p50=p50,
            latency_p95=p95,
            shard_assigned=shard_assigned,
            # Indexes converge through the exchange, so these agree on
            # every worker that saw the whole run; max covers workers
            # that never parked (and so never counted stranded barriers).
            objects=max(m.objects for m in per_worker_metrics),
            barriers_released=max(m.barriers_released for m in per_worker_metrics),
            barriers_stranded=max(m.barriers_stranded for m in per_worker_metrics),
            workers=self._workers,
            upgraded=sum(m.upgraded for m in per_worker_metrics),
            drained=sum(m.drained for m in per_worker_metrics),
            swap_rejected=sum(m.swap_rejected for m in per_worker_metrics),
        )
        return RuntimeReport(
            metrics=merged,
            results=results,
            diagnostics=tuple(diagnostics),
            versions=dict(self._version_map),
        )

    def object_counters(self) -> Dict:
        """Converged per-object counters (worker 0's view) of the last run."""
        counters = getattr(self, "_counters", None)
        return counters[0] if counters else {}

    def version_map(self) -> Dict[str, int]:
        """Merged case → program-version assignments of the last run."""
        return dict(getattr(self, "_version_map", {}) or {})
