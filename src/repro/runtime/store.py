"""Sharded instance store with per-shard run queues.

Cases are partitioned over ``K`` shards by a stable hash of the case id
(CRC-32, so placement survives restarts and recovery).  Each shard owns
the :class:`~repro.runtime.instance.CaseInstance` objects assigned to it
plus a FIFO run queue of cases with work to do; the coordinator drains the
queues in batches, round-robin across shards, so thousands of cases make
interleaved progress and no single case can monopolize the loop.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.runtime.instance import CaseInstance


class Shard:
    """One shard: its resident cases and their run queue."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.cases: Dict[str, CaseInstance] = {}
        self.queue: Deque[str] = deque()
        #: cumulative cases ever placed on this shard (occupancy metric)
        self.assigned = 0

    def add(self, instance: CaseInstance) -> None:
        self.cases[instance.case] = instance
        self.queue.append(instance.case)
        self.assigned += 1

    def take_batch(self, limit: int) -> List[CaseInstance]:
        batch: List[CaseInstance] = []
        while self.queue and len(batch) < limit:
            batch.append(self.cases[self.queue.popleft()])
        return batch

    def requeue(self, instance: CaseInstance) -> None:
        self.queue.append(instance.case)

    def retire(self, instance: CaseInstance) -> None:
        self.cases.pop(instance.case, None)

    @property
    def active(self) -> int:
        return len(self.cases)


class ShardedStore:
    """The fixed shard array and its placement function."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.shards: Tuple[Shard, ...] = tuple(Shard(i) for i in range(shards))

    def shard_of(self, case: str) -> Shard:
        return self.shards[zlib.crc32(case.encode("utf-8")) % len(self.shards)]

    def add(self, instance: CaseInstance) -> Shard:
        shard = self.shard_of(instance.case)
        shard.add(instance)
        return shard

    def any_runnable(self) -> bool:
        return any(shard.queue for shard in self.shards)

    def active_cases(self) -> Tuple[str, ...]:
        found: List[str] = []
        for shard in self.shards:
            found.extend(shard.cases)
        return tuple(found)

    def assigned_counts(self) -> Tuple[int, ...]:
        return tuple(shard.assigned for shard in self.shards)

    def queue_depths(self) -> Tuple[int, ...]:
        return tuple(len(shard.queue) for shard in self.shards)
