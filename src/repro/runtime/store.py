"""Sharded instance store with per-shard run queues.

Cases are partitioned over ``K`` shards by a stable hash of a *placement
key* (CRC-32, so placement survives restarts and recovery).  The key
defaults to the case id; object-centric serving passes the object key
instead so every case of one order co-shards with its line items.  Both
paths go through the single :func:`shard_index` helper so they can never
drift.  Each shard owns the
:class:`~repro.runtime.instance.CaseInstance` objects assigned to it
plus a FIFO run queue of cases with work to do; the coordinator drains the
queues in batches, round-robin across shards, so thousands of cases make
interleaved progress and no single case can monopolize the loop.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.runtime.instance import CaseInstance


def shard_index(key: str, count: int) -> int:
    """The one shard-placement hash: stable CRC-32 of ``key`` mod ``count``.

    Case-id sharding and object-key co-sharding both route through here;
    the mapping is pinned by regression tests because journaled recovery
    and co-shard placement both depend on it never changing.
    """
    if count < 1:
        raise ValueError("shard count must be at least 1")
    return zlib.crc32(key.encode("utf-8")) % count


class Shard:
    """One shard: its resident cases and their run queue."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.cases: Dict[str, CaseInstance] = {}
        self.queue: Deque[str] = deque()
        #: cumulative cases ever placed on this shard (occupancy metric)
        self.assigned = 0

    def add(self, instance: CaseInstance) -> None:
        self.cases[instance.case] = instance
        self.queue.append(instance.case)
        self.assigned += 1

    def take_batch(self, limit: int) -> List[CaseInstance]:
        batch: List[CaseInstance] = []
        while self.queue and len(batch) < limit:
            batch.append(self.cases[self.queue.popleft()])
        return batch

    def requeue(self, instance: CaseInstance) -> None:
        self.queue.append(instance.case)

    def retire(self, instance: CaseInstance) -> None:
        self.cases.pop(instance.case, None)

    @property
    def active(self) -> int:
        return len(self.cases)


class ShardedStore:
    """The fixed shard array and its placement function."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.shards: Tuple[Shard, ...] = tuple(Shard(i) for i in range(shards))

    def shard_of(self, case: str, key: Optional[str] = None) -> Shard:
        """The shard owning ``case``; ``key`` overrides the placement key."""
        return self.shards[shard_index(key if key is not None else case, len(self.shards))]

    def add(self, instance: CaseInstance, key: Optional[str] = None) -> Shard:
        shard = self.shard_of(instance.case, key=key)
        shard.add(instance)
        return shard

    def any_runnable(self) -> bool:
        return any(shard.queue for shard in self.shards)

    def active_cases(self) -> Tuple[str, ...]:
        found: List[str] = []
        for shard in self.shards:
            found.extend(shard.cases)
        return tuple(found)

    def assigned_counts(self) -> Tuple[int, ...]:
        return tuple(shard.assigned for shard in self.shards)

    def queue_depths(self) -> Tuple[int, ...]:
        return tuple(len(shard.queue) for shard in self.shards)
