"""Write-ahead journal for the multi-case runtime, with crash recovery.

The journal is JSON Lines.  Activity-lifecycle records reuse the
:class:`repro.conformance.events.Event` dictionary format verbatim — a
journal stripped of its control records *is* a conformance event log, so
``dscweaver monitor`` and :func:`repro.conformance.replay.replay` consume
it unchanged.  Two control record types frame each case::

    {"rt": "admit",    "case": "case-7", "time": 0.0, "outcomes": {"if_au": "T"}}
    {"case": "case-7", "activity": "recClient_po", "lifecycle": "start", "time": 0.0}
    ...
    {"rt": "complete", "case": "case-7", "time": 9.0, "status": "completed"}

Object-centric runs add two extensions (absent entirely when no object
constraints are declared, keeping plain journals byte-identical):

* admit records may carry an ``"object"`` binding
  (``{"key": "ord-0001", "role": "order", "children": 3}``);
* ``obj`` control records journal cross-case obligation transitions
  *before* the event record that causes them::

    {"rt": "obj", "kind": "satisfy", "case": "ord-0001-item-002",
     "object": "ord-0001", "sync": "all:item.pack_item->order.ship_order",
     "time": 4.0}

  ``kind`` is ``satisfy`` (child finished), ``cancel`` (child skipped) or
  ``once`` (exactly-once firing).  Application is idempotent per
  ``(object, sync, case)``, so recovery pre-applies every journaled
  record and re-execution of the surrounding prefix cannot double-count
  a partially satisfied barrier.

Hot constraint redeploys (:mod:`repro.deploy`) add ``dep`` control
records — again absent entirely from runs that never swap, keeping
plain journals byte-identical.  A swap is framed write-ahead as::

    {"rt": "dep", "kind": "begin",  "from": 1, "to": 2, "time": 4.0}
    {"rt": "dep", "kind": "assign", "case": "case-7", "version": 2,
     "action": "upgrade", "time": 4.0}
    ...one assign per in-flight case...
    {"rt": "dep", "kind": "commit", "version": 2, "time": 4.0}

and admissions after the swap carry the program version in a ``"v"``
field (omitted at version 1).  A ``begin`` without its ``commit`` marks
a crash mid-swap; recovery rolls the swap *forward* deterministically —
the migration decisions are pure functions of the journaled prefixes —
so a crashed-and-recovered run converges to the same version map as an
uninterrupted one.

Every record is flushed before the state transition it describes is
applied (write-ahead), so after a crash the journal is a faithful prefix
of the run.  :func:`read_journal` rebuilds the durable state: which cases
completed (never re-run) and which were in flight, together with each
in-flight case's event prefix and recorded guard outcomes, so the
coordinator can re-execute them deterministically and verify the replayed
prefix record-for-record (mismatches are ``RT003``).

``crash_after=N`` is the fault-injection hook: the journal raises
:class:`SimulatedCrash` immediately after durably writing its N-th
record — the moral equivalent of ``kill -9`` at event N — which the
crash-recovery tests use to prove that an interrupted-then-recovered run
completes exactly the same set of cases as an uninterrupted one.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.conformance.events import Event
from repro.errors import ReproError

#: ``status`` values of a ``complete`` control record.
COMPLETED = "completed"
FAILED = "failed"


class SimulatedCrash(ReproError):
    """Raised by the fault-injection hook after the N-th journal record."""

    def __init__(self, records_written: int) -> None:
        self.records_written = records_written
        super().__init__(
            "simulated crash after journal record %d" % records_written
        )


class JournalError(ReproError):
    """The journal file is malformed or recovery found an inconsistency."""


class Journal:
    """Append-only JSONL write-ahead journal.

    ``resume=True`` appends to an existing journal (recovery); the default
    truncates.  ``crash_after`` arms the fault-injection hook.
    ``observe_flush`` is the observability hook: when set, it is called
    with the wall-clock seconds each flushed batch took to serialize and
    flush (the coordinator feeds it a
    ``repro_runtime_journal_flush_seconds`` histogram); ``None`` keeps the
    write path clock-free.

    ``flush_every=N`` enables group commit: records are serialized
    immediately but buffered, and the buffer is flushed once N records
    accumulate (plus on :meth:`flush`/:meth:`close`).  The write-ahead
    guarantee then holds at batch granularity — a real crash can lose at
    most the last ``N-1`` *applied-but-buffered* records, whose effects
    recovery re-derives by deterministic re-execution.  ``crash_after``
    stays exact under batching: the buffer is flushed before the simulated
    crash fires, so the journal always holds precisely N records.
    """

    def __init__(
        self,
        path: str,
        resume: bool = False,
        crash_after: Optional[int] = None,
        already_written: int = 0,
        observe_flush: Optional[Callable[[float], None]] = None,
        flush_every: int = 1,
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be at least 1")
        self.path = path
        self.records_written = already_written
        self._crash_after = crash_after
        self._observe_flush = observe_flush
        self._flush_every = flush_every
        self._buffer: List[str] = []
        self._handle = open(path, "a" if resume else "w", encoding="utf-8")

    def _write(self, payload: Dict[str, Any]) -> None:
        # Compact separators, no key sorting: every record type is built
        # with a fixed insertion order (Event.to_dict and the control-record
        # constructors below), so the output is still deterministic — just
        # without re-sorting every payload on the hot path.
        self._buffer.append(json.dumps(payload, separators=(",", ":")) + "\n")
        self.records_written += 1
        crash_now = (
            self._crash_after is not None
            and self.records_written >= self._crash_after
        )
        if crash_now or len(self._buffer) >= self._flush_every:
            self.flush()
        if crash_now:
            self.close()
            raise SimulatedCrash(self.records_written)

    def flush(self) -> None:
        """Flush buffered records to disk (group-commit boundary)."""
        if not self._buffer:
            return
        if self._observe_flush is not None:
            started = _time.perf_counter()
            self._handle.write("".join(self._buffer))
            self._buffer.clear()
            self._handle.flush()
            self._observe_flush(_time.perf_counter() - started)
        else:
            self._handle.write("".join(self._buffer))
            self._buffer.clear()
            self._handle.flush()

    def admit(
        self,
        case: str,
        time: float,
        outcomes: Dict[str, str],
        binding: Optional[Dict[str, Any]] = None,
        version: int = 1,
    ) -> None:
        payload: Dict[str, Any] = {
            "rt": "admit",
            "case": case,
            "time": time,
            "outcomes": dict(outcomes),
        }
        if binding is not None:
            payload["object"] = dict(binding)
        if version != 1:
            payload["v"] = version
        self._write(payload)

    def dep_begin(self, from_version: int, to_version: int, time: float) -> None:
        """Open a swap frame (write-ahead: before any migration applies)."""
        self._write(
            {
                "rt": "dep",
                "kind": "begin",
                "from": from_version,
                "to": to_version,
                "time": time,
            }
        )

    def dep_assign(self, case: str, version: int, action: str, time: float) -> None:
        """Journal one case's migration decision before applying it."""
        self._write(
            {
                "rt": "dep",
                "kind": "assign",
                "case": case,
                "version": version,
                "action": action,
                "time": time,
            }
        )

    def dep_commit(self, version: int, time: float) -> None:
        """Close the swap frame: every decision is journaled and applied."""
        self._write({"rt": "dep", "kind": "commit", "version": version, "time": time})

    def object_record(
        self, kind: str, case: str, object_key: str, sync: str, time: float
    ) -> None:
        """Journal one cross-case obligation transition (write-ahead)."""
        self._write(
            {
                "rt": "obj",
                "kind": kind,
                "case": case,
                "object": object_key,
                "sync": sync,
                "time": time,
            }
        )

    def event(self, event: Event) -> None:
        self._write(event.to_dict())

    def complete(
        self, case: str, time: float, status: str, reason: Optional[str] = None
    ) -> None:
        payload: Dict[str, Any] = {
            "rt": "complete",
            "case": case,
            "time": time,
            "status": status,
        }
        if reason:
            payload["reason"] = reason
        self._write(payload)

    def close(self) -> None:
        if not self._handle.closed:
            self.flush()
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


@dataclass
class JournaledCase:
    """Everything the journal knows about one admitted case."""

    case: str
    outcomes: Dict[str, str] = field(default_factory=dict)
    events: List[Event] = field(default_factory=list)
    status: Optional[str] = None  # None while in flight
    completed_at: Optional[float] = None
    reason: Optional[str] = None
    #: object binding payload of the admit record, when present.
    binding: Optional[Dict[str, Any]] = None
    #: program version the case runs under (admit ``"v"`` field, then
    #: overridden by any later ``dep``/``assign`` record).
    version: int = 1
    #: migration action of the last ``assign`` touching the case, if any.
    migration: Optional[str] = None

    @property
    def in_flight(self) -> bool:
        return self.status is None


@dataclass
class JournalState:
    """Parsed journal: admission order, per-case history, record count."""

    cases: Dict[str, JournaledCase] = field(default_factory=dict)
    #: activity events in journal (commit) order, control records stripped —
    #: exactly the multi-case conformance event log of the run so far.
    event_stream: List[Event] = field(default_factory=list)
    #: ``obj`` control records in journal order, for obligation pre-apply.
    objects: List[Dict[str, Any]] = field(default_factory=list)
    #: ``dep`` control records in journal order, for swap roll-forward.
    deploys: List[Dict[str, Any]] = field(default_factory=list)
    records: int = 0

    def in_flight(self) -> List[JournaledCase]:
        return [case for case in self.cases.values() if case.in_flight]

    def completed(self) -> List[JournaledCase]:
        return [case for case in self.cases.values() if not case.in_flight]

    def version_map(self) -> Dict[str, int]:
        """Program version of every journaled case (admit + assign records)."""
        return {case.case: case.version for case in self.cases.values()}

    def current_version(self) -> int:
        """The serving version: the last committed swap's target, else 1."""
        version = 1
        for record in self.deploys:
            if record.get("kind") == "commit":
                version = int(record["version"])
        return version

    def pending_deploy(self) -> Optional[Dict[str, Any]]:
        """The last ``begin`` record lacking its ``commit`` — a crashed swap."""
        pending: Optional[Dict[str, Any]] = None
        for record in self.deploys:
            kind = record.get("kind")
            if kind == "begin":
                pending = record
            elif kind == "commit":
                pending = None
        return pending


def read_journal(path: str, strict: bool = True) -> JournalState:
    """Parse a journal file back into a :class:`JournalState`.

    ``strict=True`` (the recovery path) treats any inconsistency — a
    case admitted twice, a completion or event for an unadmitted case,
    a repeated activity-lifecycle record — as a :class:`JournalError`,
    because the coordinator's write path can never produce one.

    ``strict=False`` is the *ingestion* path (``dscweaver discover`` /
    ``replay`` on a journal of unknown provenance): re-admissions keep
    the original case, records for unadmitted cases admit the case
    implicitly, and a duplicated ``(case, activity, lifecycle)`` event —
    the write-ahead artifact of a crash between journaling a record and
    applying it, then re-journaling after recovery — is dropped, first
    occurrence wins, so crash/recover journals replay and mine cleanly.
    """
    state = JournalState()
    seen_events = set()
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as error:
                raise JournalError("record %d: invalid JSON (%s)" % (number, error))
            state.records += 1
            kind = payload.get("rt")
            if kind == "admit":
                case = str(payload["case"])
                if case in state.cases:
                    if strict:
                        raise JournalError(
                            "record %d: case %r admitted twice" % (number, case)
                        )
                    continue  # re-admission: the original case wins
                binding = payload.get("object")
                state.cases[case] = JournaledCase(
                    case=case,
                    outcomes=dict(payload.get("outcomes") or {}),
                    binding=dict(binding) if binding is not None else None,
                    version=int(payload.get("v", 1)),
                )
            elif kind == "complete":
                case = str(payload["case"])
                journaled = state.cases.get(case)
                if journaled is None:
                    if strict:
                        raise JournalError(
                            "record %d: completion of unknown case %r"
                            % (number, case)
                        )
                    journaled = state.cases[case] = JournaledCase(case=case)
                journaled.status = str(payload["status"])
                journaled.completed_at = float(payload["time"])
                journaled.reason = payload.get("reason")
            elif kind is None:
                try:
                    event = Event.from_dict(payload)
                except (KeyError, TypeError, ValueError) as error:
                    raise JournalError(
                        "record %d: invalid event (%s)" % (number, error)
                    )
                journaled = state.cases.get(event.case)
                if journaled is None:
                    if strict:
                        raise JournalError(
                            "record %d: event for unadmitted case %r"
                            % (number, event.case)
                        )
                    journaled = state.cases[event.case] = JournaledCase(
                        case=event.case
                    )
                key = (event.case, event.activity, event.lifecycle)
                if key in seen_events:
                    if strict:
                        raise JournalError(
                            "record %d: repeated %s of %r in case %r"
                            % (number, event.lifecycle, event.activity, event.case)
                        )
                    continue  # recovery-duplicated record; first wins
                seen_events.add(key)
                journaled.events.append(event)
                state.event_stream.append(event)
            elif kind == "obj":
                # Obligation records are pre-applied by object-aware
                # recovery and harmless to ingestion (application is
                # idempotent, so duplicates from the crash window are
                # fine to keep).
                state.objects.append(dict(payload))
            elif kind == "dep":
                dep_kind = payload.get("kind")
                if dep_kind not in ("begin", "assign", "commit"):
                    if strict:
                        raise JournalError(
                            "record %d: unknown dep record kind %r"
                            % (number, dep_kind)
                        )
                    continue
                if dep_kind == "assign":
                    case = str(payload["case"])
                    journaled = state.cases.get(case)
                    if journaled is None:
                        if strict:
                            raise JournalError(
                                "record %d: version assignment for unknown "
                                "case %r" % (number, case)
                            )
                        continue  # ingestion: stray assigns carry no events
                    journaled.version = int(payload["version"])
                    journaled.migration = payload.get("action")
                state.deploys.append(dict(payload))
            else:
                if strict:
                    raise JournalError(
                        "record %d: unknown control record %r" % (number, kind)
                    )
    return state
