"""Metrics registry: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` per :class:`~repro.obs.trace.Observability`
bundle.  Registration is get-or-create (two subsystems asking for the
same counter share it); re-registering with a different kind, help text
or label set raises.  Names follow the repo convention
``repro_<subsystem>_<name>_<unit>`` and the Prometheus data model:

* :class:`Counter` — monotonically increasing float;
* :class:`Gauge` — set/inc/dec snapshot value;
* :class:`Histogram` — fixed cumulative ``le`` buckets (inclusive upper
  bounds, implicit ``+Inf``), running sum and count — **no per-sample
  storage**, so observing is O(log buckets) and memory is constant.

Labeled metrics hand out children via ``.labels(status="completed")``;
unlabeled ones are used directly.  Everything is deterministic: children
and metrics iterate in insertion order, so two identical runs render
byte-identical expositions (modulo wall-clock valued samples).

Exporters live in :mod:`repro.obs.export` (Prometheus text exposition and
JSON); :meth:`MetricsRegistry.to_prometheus` / :meth:`to_json` are thin
conveniences over them.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[str, ...]

#: Default histogram buckets (seconds-flavoured, like the Prometheus client).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _check_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise ValueError("invalid metric name %r" % name)


def _check_labels(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ValueError("invalid label name %r" % label)
    if len(set(names)) != len(names):
        raise ValueError("duplicate label names in %r" % (names,))
    return names


class _Metric:
    """Common child bookkeeping for all three kinds."""

    kind = ""

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        _check_name(name)
        self.name = name
        self.help = help
        self.labelnames = _check_labels(labelnames)
        self._children: Dict[LabelKey, object] = {}

    def _child_key(self, labels: Mapping[str, str]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                "%s expects labels %r, got %r"
                % (self.name, self.labelnames, tuple(sorted(labels)))
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _unlabeled_key(self) -> LabelKey:
        if self.labelnames:
            raise ValueError(
                "%s is labeled (%r); use .labels(...)" % (self.name, self.labelnames)
            )
        return ()

    def children(self) -> Iterator[Tuple[LabelKey, object]]:
        """``(label_values, child)`` pairs in insertion order."""
        return iter(self._children.items())


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters can only increase (got %r)" % amount)
        self.value += amount


class Counter(_Metric):
    kind = "counter"

    def labels(self, **labels: str) -> _CounterChild:
        key = self._child_key(labels)
        child = self._children.get(key)
        if child is None:
            child = _CounterChild()
            self._children[key] = child
        return child  # type: ignore[return-value]

    def _default(self) -> _CounterChild:
        key = self._unlabeled_key()
        child = self._children.get(key)
        if child is None:
            child = _CounterChild()
            self._children[key] = child
        return child  # type: ignore[return-value]

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._default().inc(amount)

    def value(self, **labels: str) -> float:
        if labels:
            child = self._children.get(self._child_key(labels))
        else:
            child = self._children.get(())
        return child.value if child is not None else 0.0  # type: ignore[union-attr]


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount


class Gauge(_Metric):
    kind = "gauge"

    def labels(self, **labels: str) -> _GaugeChild:
        key = self._child_key(labels)
        child = self._children.get(key)
        if child is None:
            child = _GaugeChild()
            self._children[key] = child
        return child  # type: ignore[return-value]

    def _default(self) -> _GaugeChild:
        key = self._unlabeled_key()
        child = self._children.get(key)
        if child is None:
            child = _GaugeChild()
            self._children[key] = child
        return child  # type: ignore[return-value]

    def set(self, value: Union[int, float]) -> None:
        self._default().set(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._default().inc(amount)

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._default().dec(amount)

    def value(self, **labels: str) -> float:
        if labels:
            child = self._children.get(self._child_key(labels))
        else:
            child = self._children.get(())
        return child.value if child is not None else 0.0  # type: ignore[union-attr]


class _HistogramChild:
    """Per-bucket counts (non-cumulative), running sum and total count."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        # ``le`` bounds are inclusive: a value exactly on a bucket edge
        # lands in that bucket, matching Prometheus semantics.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts (Prometheus ``_bucket`` samples)."""
        running = 0
        out = []
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from the fixed buckets.

        Linear interpolation inside the bucket the target rank falls in;
        an empty histogram estimates 0.0; a rank landing in the ``+Inf``
        bucket is clamped to the largest finite bound (the histogram
        cannot see past its buckets).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % q)
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0.0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if running + count >= target:
                if index == len(self.bounds):  # +Inf bucket
                    return self.bounds[-1] if self.bounds else 0.0
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index > 0 else min(0.0, upper)
                fraction = (target - running) / count
                return lower + (upper - lower) * fraction
            running += count
        return self.bounds[-1] if self.bounds else 0.0  # pragma: no cover


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_BUCKETS))
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError("buckets must be finite (+Inf is implicit)")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be strictly increasing: %r" % (bounds,))
        self.buckets = bounds

    def labels(self, **labels: str) -> _HistogramChild:
        key = self._child_key(labels)
        child = self._children.get(key)
        if child is None:
            child = _HistogramChild(self.buckets)
            self._children[key] = child
        return child  # type: ignore[return-value]

    def _default(self) -> _HistogramChild:
        key = self._unlabeled_key()
        child = self._children.get(key)
        if child is None:
            child = _HistogramChild(self.buckets)
            self._children[key] = child
        return child  # type: ignore[return-value]

    def observe(self, value: Union[int, float]) -> None:
        self._default().observe(value)

    def quantile(self, q: float, **labels: str) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % q)
        if labels:
            child = self._children.get(self._child_key(labels))
        else:
            child = self._children.get(())
        if child is None:
            return 0.0
        return child.quantile(q)  # type: ignore[union-attr]


AnyMetric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Deterministic, insertion-ordered collection of metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, AnyMetric] = {}

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        labelnames: Sequence[str],
        **kwargs: object,
    ) -> AnyMetric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    "%s already registered as a %s" % (name, existing.kind)
                )
            if existing.labelnames != tuple(labelnames):
                raise ValueError(
                    "%s already registered with labels %r"
                    % (name, existing.labelnames)
                )
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[AnyMetric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[AnyMetric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def to_prometheus(self) -> str:
        from repro.obs.export import render_prometheus

        return render_prometheus(self)

    def to_json(self) -> Dict[str, object]:
        from repro.obs.export import metrics_to_json

        return metrics_to_json(self)
