"""Structured tracing core: lightweight spans over a monotonic clock.

A :class:`Tracer` hands out spans through :meth:`Tracer.span` — usable as
a context manager or a decorator::

    with tracer.span("runtime.batch", shard=3, cases=8):
        ...

    @tracer.span("core.weave")
    def weave(...): ...

Spans record monotonic-clock durations (``time.perf_counter``), nest via
an explicit stack (parent = innermost open span), and carry arbitrary
string/number attributes (per-case, per-shard, ...).  Completed spans land
in a bounded ring buffer (``collections.deque(maxlen=capacity)``) so a
long-running serve cannot grow memory without bound; evictions are counted
in :attr:`Tracer.dropped`.

The disabled path is the whole point: ``Tracer(enabled=False)`` (or any
component receiving ``obs=None``) must cost nothing on hot paths.
:meth:`Tracer.span` on a disabled tracer returns one shared no-op object
whose ``__enter__``/``__exit__`` do nothing and whose decorator form
returns the function unchanged — no allocation, no clock read, no branch
beyond the ``enabled`` check.  ``benchmarks/bench_obs_overhead.py`` pins
the end-to-end cost of the guards at <5% on the runtime throughput bench.
"""

from __future__ import annotations

import time
from collections import deque
from functools import wraps
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

from repro.obs.metrics import MetricsRegistry

_F = TypeVar("_F", bound=Callable[..., Any])

#: Attribute values we record on spans (kept JSON-friendly).
AttrValue = Union[str, int, float, bool, None]


class Span:
    """One *completed* span: a named interval with nesting and attributes.

    ``start`` is seconds since the tracer's epoch (its construction time),
    ``duration`` is seconds; both come from ``time.perf_counter`` so they
    are monotonic and unaffected by wall-clock adjustments.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "duration", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        duration: float,
        attrs: Dict[str, AttrValue],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%d, parent=%s, %r, %.6fs)" % (
            self.span_id,
            self.parent_id,
            self.name,
            self.duration,
        )


class _SpanHandle:
    """A live span: context manager and decorator in one object."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, AttrValue]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span_id = -1
        self._parent_id: Optional[int] = None
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        self._span_id = tracer._next_id
        tracer._next_id += 1
        self._parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self._span_id)
        self._start = tracer._clock()
        return self

    def __exit__(self, *_exc: object) -> None:
        tracer = self._tracer
        duration = tracer._clock() - self._start
        if tracer._stack and tracer._stack[-1] == self._span_id:
            tracer._stack.pop()
        tracer._finish(
            Span(
                self._span_id,
                self._parent_id,
                self._name,
                self._start - tracer._epoch,
                duration,
                self._attrs,
            )
        )

    def set(self, **attrs: AttrValue) -> "_SpanHandle":
        """Attach attributes to the open span (chainable)."""
        self._attrs.update(attrs)
        return self

    def __call__(self, func: _F) -> _F:
        @wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with self._tracer.span(self._name, **self._attrs):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc: object) -> None:
        return None

    def set(self, **_attrs: AttrValue) -> "_NoopSpan":
        return self

    def __call__(self, func: _F) -> _F:
        return func


#: The single no-op span shared by every disabled tracer.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces spans and keeps the most recent ``capacity`` completed ones.

    Span ids are sequential in creation order and the scheduling loops
    that use the tracer are single-threaded and deterministic, so two
    identical runs produce identical span *trees* (names + nesting) —
    property-tested in ``tests/test_obs_integration.py``.
    """

    def __init__(
        self,
        enabled: bool = True,
        capacity: int = 65536,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        self._clock = clock
        self._epoch = clock()
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._stack: List[int] = []
        self._next_id = 0

    def span(self, name: str, **attrs: AttrValue) -> Union[_SpanHandle, _NoopSpan]:
        """Open a span; returns the shared no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return _SpanHandle(self, name, attrs)

    def _finish(self, span: Span) -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)

    def finished_spans(self) -> List[Span]:
        """Completed spans, oldest first (bounded by ``capacity``)."""
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0


def span_forest(spans: List[Span]) -> List[Tuple[str, tuple]]:
    """The structural shape of a span list: ``(name, (children...))`` roots.

    Durations, timestamps, ids and attributes are all discarded — this is
    the representation the determinism test compares across runs.  Spans
    whose parent was evicted from the ring buffer surface as roots.
    """
    children: Dict[Optional[int], List[Span]] = {}
    present = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in present else None
        children.setdefault(parent, []).append(span)

    def build(span: Span) -> Tuple[str, tuple]:
        kids = sorted(children.get(span.span_id, []), key=lambda s: s.span_id)
        return (span.name, tuple(build(kid) for kid in kids))

    roots = sorted(children.get(None, []), key=lambda s: s.span_id)
    return [build(root) for root in roots]


class Observability:
    """The bundle instrumented components accept: one tracer, one registry.

    Components take ``obs: Optional[Observability] = None``; ``None``
    means fully disabled — the only cost left on hot paths is the
    ``if obs is not None`` guard.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracing: bool = True,
        capacity: int = 65536,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer(enabled=tracing, capacity=capacity)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
