"""Exporters: Prometheus text exposition, JSON metrics, Chrome trace JSON.

The Prometheus renderer follows the text exposition format (version
0.0.4): one ``# HELP`` / ``# TYPE`` header per metric family, samples as
``name{label="value"} number``, histograms expanded into cumulative
``_bucket`` samples (inclusive ``le`` bounds plus ``+Inf``), ``_sum`` and
``_count``.  Label values escape ``\\``, ``"`` and newlines.

The Chrome trace exporter emits the ``trace_event`` JSON-object format —
complete (``ph: "X"``) events with microsecond timestamps — which loads
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
Span ids and parent ids ride along in ``args`` so the flame summary
(:mod:`repro.obs.flame`) can rebuild exact nesting.

Both formats ship a validator (:func:`validate_prometheus_text`,
:func:`validate_chrome_trace`) used by the test suite and the CI
``obs-smoke`` job; each returns a list of problems, empty when valid.
``CHROME_TRACE_SCHEMA`` is the same contract as a JSON Schema document
for external validators.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Sequence, Union

from repro.obs.metrics import Histogram, MetricsRegistry, _HistogramChild
from repro.obs.trace import Span, Tracer

# -- Prometheus text exposition ------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labelnames: Sequence[str], values: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, _escape_label(value))
        for name, value in zip(labelnames, values)
    )
    return "{%s}" % inner


def _bucket_labels(labelnames: Sequence[str], values: Sequence[str], le: str) -> str:
    pairs = ['%s="%s"' % (n, _escape_label(v)) for n, v in zip(labelnames, values)]
    pairs.append('le="%s"' % le)
    return "{%s}" % ",".join(pairs)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in the registry as text exposition format."""
    lines: List[str] = []
    for metric in registry:
        lines.append("# HELP %s %s" % (metric.name, _escape_help(metric.help)))
        lines.append("# TYPE %s %s" % (metric.name, metric.kind))
        if isinstance(metric, Histogram):
            for values, child in metric.children():
                assert isinstance(child, _HistogramChild)
                cumulative = child.cumulative()
                for bound, count in zip(metric.buckets, cumulative):
                    lines.append(
                        "%s_bucket%s %d"
                        % (
                            metric.name,
                            _bucket_labels(
                                metric.labelnames, values, _format_value(bound)
                            ),
                            count,
                        )
                    )
                lines.append(
                    "%s_bucket%s %d"
                    % (
                        metric.name,
                        _bucket_labels(metric.labelnames, values, "+Inf"),
                        child.count,
                    )
                )
                label_text = _format_labels(metric.labelnames, values)
                lines.append(
                    "%s_sum%s %s"
                    % (metric.name, label_text, _format_value(child.sum))
                )
                lines.append("%s_count%s %d" % (metric.name, label_text, child.count))
        else:
            for values, child in metric.children():
                lines.append(
                    "%s%s %s"
                    % (
                        metric.name,
                        _format_labels(metric.labelnames, values),
                        _format_value(child.value),  # type: ignore[attr-defined]
                    )
                )
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_json(registry: MetricsRegistry) -> Dict[str, Any]:
    """A JSON-friendly dump of the registry (stable key order)."""
    families: List[Dict[str, Any]] = []
    for metric in registry:
        family: Dict[str, Any] = {
            "name": metric.name,
            "kind": metric.kind,
            "help": metric.help,
            "samples": [],
        }
        for values, child in metric.children():
            labels = dict(zip(metric.labelnames, values))
            if isinstance(metric, Histogram):
                assert isinstance(child, _HistogramChild)
                family["samples"].append(
                    {
                        "labels": labels,
                        "buckets": [
                            {"le": bound, "count": count}
                            for bound, count in zip(
                                metric.buckets, child.cumulative()
                            )
                        ]
                        + [{"le": "+Inf", "count": child.count}],
                        "sum": child.sum,
                        "count": child.count,
                    }
                )
            else:
                family["samples"].append(
                    {"labels": labels, "value": child.value}  # type: ignore[attr-defined]
                )
        families.append(family)
    return {"metrics": families}


_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_LABEL = r"[a-zA-Z_][a-zA-Z0-9_]*"
_HELP_RE = re.compile(r"^# HELP (%s) .*$" % _PROM_NAME)
_TYPE_RE = re.compile(r"^# TYPE (%s) (counter|gauge|histogram|summary|untyped)$" % _PROM_NAME)
_SAMPLE_RE = re.compile(
    r"^(%s)(\{(%s=\"(?:[^\"\\]|\\.)*\")(,%s=\"(?:[^\"\\]|\\.)*\")*\})? "
    r"([-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf)|NaN)$"
    % (_PROM_NAME, _PROM_LABEL, _PROM_LABEL)
)


def validate_prometheus_text(text: str) -> List[str]:
    """Check ``text`` against the exposition-format grammar.

    Returns a list of problems (empty = valid).  Validated: line grammar
    (HELP/TYPE/sample shapes), TYPE before samples of its family, one
    TYPE per family, histogram completeness (``+Inf`` bucket present and
    equal to ``_count``, cumulative bucket counts non-decreasing).
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    # histogram series are keyed per (family, labels-without-le): a labeled
    # histogram renders one cumulative bucket run per child
    bucket_counts: Dict[tuple, List[float]] = {}
    histogram_counts: Dict[tuple, float] = {}
    histogram_inf: Dict[tuple, float] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if typed.get(base) == "histogram":
                    return base
        return sample_name

    def series_key(family: str, label_text: str) -> tuple:
        pairs = re.findall(
            r'(%s)="((?:[^"\\]|\\.)*)"' % _PROM_LABEL, label_text or ""
        )
        return (family, tuple((k, v) for k, v in pairs if k != "le"))

    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP"):
            if not _HELP_RE.match(line):
                problems.append("line %d: malformed HELP: %r" % (number, line))
            continue
        if line.startswith("# TYPE"):
            match = _TYPE_RE.match(line)
            if not match:
                problems.append("line %d: malformed TYPE: %r" % (number, line))
                continue
            name, kind = match.group(1), match.group(2)
            if name in typed:
                problems.append("line %d: duplicate TYPE for %s" % (number, name))
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue  # comments are legal
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append("line %d: malformed sample: %r" % (number, line))
            continue
        sample_name = match.group(1)
        family = family_of(sample_name)
        if family not in typed:
            problems.append(
                "line %d: sample %s before its TYPE line" % (number, sample_name)
            )
            continue
        value = float(match.group(5).replace("Inf", "inf"))
        if typed[family] == "histogram" and sample_name == family + "_bucket":
            label_text = match.group(2) or ""
            le_match = re.search(r'le="([^"]+)"', label_text)
            if le_match is None:
                problems.append("line %d: histogram bucket without le" % number)
                continue
            key = series_key(family, label_text)
            if le_match.group(1) == "+Inf":
                histogram_inf[key] = value
            series = bucket_counts.setdefault(key, [])
            if series and value < series[-1]:
                problems.append(
                    "line %d: bucket counts of %s not cumulative" % (number, family)
                )
            series.append(value)
        elif typed[family] == "histogram" and sample_name == family + "_count":
            histogram_counts[series_key(family, match.group(2) or "")] = value

    # every bucket series must end in a +Inf bucket that equals its _count
    for key in sorted(set(bucket_counts) | set(histogram_counts)):
        family = key[0]
        if key not in histogram_inf:
            problems.append("histogram %s: missing +Inf bucket" % family)
        elif key in histogram_counts and histogram_inf[key] != histogram_counts[key]:
            problems.append(
                "histogram %s: +Inf bucket (%s) != _count (%s)"
                % (family, histogram_inf[key], histogram_counts[key])
            )
    return problems


# -- Chrome trace_event --------------------------------------------------------

#: JSON Schema for the exported Chrome trace (trace_event JSON-object format).
CHROME_TRACE_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "ts", "pid", "tid"],
                "properties": {
                    "name": {"type": "string", "minLength": 1},
                    "ph": {"type": "string", "enum": ["X", "M"]},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "cat": {"type": "string"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
    },
}


def chrome_trace(
    spans_or_tracer: Union[Tracer, Sequence[Span]],
    process_name: str = "dscweaver",
) -> Dict[str, Any]:
    """Convert finished spans to the Chrome ``trace_event`` JSON object."""
    if isinstance(spans_or_tracer, Tracer):
        spans: Sequence[Span] = spans_or_tracer.finished_spans()
    else:
        spans = spans_or_tracer
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        args: Dict[str, Any] = {"id": span.span_id}
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        for key, value in span.attrs.items():
            args[key] = value
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Any) -> List[str]:
    """Self-contained structural validation of a Chrome trace document."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append("%s: missing %r" % (where, key))
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append("%s: name must be a non-empty string" % where)
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append("%s: unsupported phase %r" % (where, ph))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append("%s: ts must be a non-negative number" % where)
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                problems.append("%s: dur must be a non-negative number" % where)
        if "args" in event and not isinstance(event["args"], dict):
            problems.append("%s: args must be an object" % where)
    return problems


# -- file helpers --------------------------------------------------------------


def write_trace(
    tracer: Tracer, path: str, process_name: str = "dscweaver"
) -> Dict[str, Any]:
    """Write the tracer's finished spans as Chrome trace JSON; returns it."""
    payload = chrome_trace(tracer, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write the registry to ``path``: JSON for ``*.json``, else Prometheus."""
    if path.endswith(".json"):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(metrics_to_json(registry), handle, indent=1, sort_keys=False)
            handle.write("\n")
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(registry))


def load_trace(path: str) -> Dict[str, Any]:
    """Read a Chrome trace JSON file (as written by :func:`write_trace`)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, list):  # the bare JSON-array flavour is also legal
        payload = {"traceEvents": payload}
    return payload


__all__ = [
    "CHROME_TRACE_SCHEMA",
    "chrome_trace",
    "load_trace",
    "metrics_to_json",
    "render_prometheus",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "write_metrics",
    "write_trace",
]
