"""Unified observability: structured tracing, metrics, and trace export.

The package is one cross-cutting layer over the four subsystems (bitset
kernel, sharded runtime, conformance monitor, scheduler):

* :mod:`repro.obs.trace` — lightweight spans with monotonic durations,
  parent/child nesting and a bounded ring buffer, bundled with a metrics
  registry into :class:`Observability`;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with labels (no per-sample storage);
* :mod:`repro.obs.export` — Prometheus text exposition, JSON metrics and
  Chrome ``trace_event`` JSON (Perfetto-loadable), each with a validator;
* :mod:`repro.obs.flame` — the ``dscweaver trace`` flame summary
  (top-N spans by self time).

Instrumented components accept ``obs: Optional[Observability] = None``
and must stay disabled-cheap when it is ``None``: the contract, pinned by
``benchmarks/bench_obs_overhead.py`` and ``BENCH_obs.json``, is <5%
overhead on the runtime throughput bench with observability off.

Metric names follow ``repro_<subsystem>_<name>_<unit>``::

    obs = Observability()
    runtime = Runtime(program, obs=obs)
    runtime.submit_batch(plans)
    runtime.run()
    print(obs.metrics.to_prometheus())
    write_trace(obs.tracer, "spans.json")   # open in ui.perfetto.dev
"""

from repro.obs.export import (
    CHROME_TRACE_SCHEMA,
    chrome_trace,
    load_trace,
    metrics_to_json,
    render_prometheus,
    validate_chrome_trace,
    validate_prometheus_text,
    write_metrics,
    write_trace,
)
from repro.obs.flame import FlameRow, flame_summary, render_flame
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Observability,
    Span,
    Tracer,
    span_forest,
)

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "DEFAULT_BUCKETS",
    "Counter",
    "FlameRow",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Observability",
    "Span",
    "Tracer",
    "chrome_trace",
    "flame_summary",
    "load_trace",
    "metrics_to_json",
    "render_flame",
    "render_prometheus",
    "span_forest",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "write_metrics",
    "write_trace",
]
