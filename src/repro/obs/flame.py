"""Flame summary over an exported Chrome trace: top-N spans by self time.

``dscweaver trace spans.json`` aggregates the complete (``ph: "X"``)
events of a trace file by span name and ranks them by *self* time — the
span's duration minus the time spent in its direct children.  Nesting
comes from the exported ``args.parent`` ids when present (our exporter
always writes them); events from other producers fall back to interval
containment per thread, the same reconstruction Perfetto performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple


@dataclass
class FlameRow:
    """Aggregated cost of one span name."""

    name: str
    count: int
    total_us: float
    self_us: float

    @property
    def avg_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


def _child_time_by_parent(events: List[Dict[str, Any]]) -> Dict[int, float]:
    """``event index -> total duration of direct children`` (µs)."""
    child_time: Dict[int, float] = {}
    by_id: Dict[Tuple[Any, Any], int] = {}
    explicit = True
    for index, event in enumerate(events):
        args = event.get("args") or {}
        if "id" not in args:
            explicit = False
            break
        by_id[(event.get("tid"), args["id"])] = index

    if explicit:
        for event in events:
            args = event.get("args") or {}
            parent = args.get("parent")
            if parent is None:
                continue
            parent_index = by_id.get((event.get("tid"), parent))
            if parent_index is not None:
                child_time[parent_index] = child_time.get(parent_index, 0.0) + float(
                    event.get("dur", 0.0)
                )
        return child_time

    # Fallback: interval containment per thread (stack discipline).
    by_tid: Dict[Any, List[int]] = {}
    for index, event in enumerate(events):
        by_tid.setdefault(event.get("tid"), []).append(index)
    for indices in by_tid.values():
        indices.sort(
            key=lambda i: (float(events[i]["ts"]), -float(events[i].get("dur", 0.0)))
        )
        stack: List[int] = []
        for index in indices:
            start = float(events[index]["ts"])
            end = start + float(events[index].get("dur", 0.0))
            while stack:
                top = events[stack[-1]]
                top_end = float(top["ts"]) + float(top.get("dur", 0.0))
                if start >= top_end:
                    stack.pop()
                else:
                    break
            if stack:
                parent_index = stack[-1]
                child_time[parent_index] = child_time.get(parent_index, 0.0) + (
                    end - start
                )
            stack.append(index)
    return child_time


def flame_summary(payload: Dict[str, Any], top: int = 15) -> List[FlameRow]:
    """Top ``top`` span names by self time from a Chrome trace document."""
    events = [
        event
        for event in payload.get("traceEvents", [])
        if isinstance(event, dict) and event.get("ph") == "X"
    ]
    child_time = _child_time_by_parent(events)
    rows: Dict[str, FlameRow] = {}
    for index, event in enumerate(events):
        name = str(event.get("name", "?"))
        duration = float(event.get("dur", 0.0))
        self_us = max(0.0, duration - child_time.get(index, 0.0))
        row = rows.get(name)
        if row is None:
            rows[name] = FlameRow(name=name, count=1, total_us=duration, self_us=self_us)
        else:
            row.count += 1
            row.total_us += duration
            row.self_us += self_us
    ranked = sorted(rows.values(), key=lambda r: (-r.self_us, r.name))
    return ranked[: top if top > 0 else len(ranked)]


def render_flame(rows: List[FlameRow], total_events: int = 0) -> str:
    """Human-readable table for ``dscweaver trace``."""
    if not rows:
        return "no complete (ph=X) events in trace"
    name_width = max(len(row.name) for row in rows)
    name_width = max(name_width, len("span"))
    lines = [
        "%-*s %8s %12s %12s %10s"
        % (name_width, "span", "count", "self(us)", "total(us)", "avg(us)")
    ]
    for row in rows:
        lines.append(
            "%-*s %8d %12.1f %12.1f %10.1f"
            % (name_width, row.name, row.count, row.self_us, row.total_us, row.avg_us)
        )
    if total_events:
        lines.append("%d complete event(s) in trace" % total_events)
    return "\n".join(lines)
