"""Command-line interface: ``dscweaver`` / ``python -m repro``.

Subcommands::

    dscweaver table1   --workload purchasing      # Table 1 dependency listing
    dscweaver weave    --workload purchasing      # Table 2 reduction report
    dscweaver minimal  --workload purchasing      # Figure 9 edge list
    dscweaver bpel     --workload purchasing      # emit BPEL to stdout/file
    dscweaver dscl     --workload purchasing      # emit the DSCL program
    dscweaver validate --workload purchasing      # conflicts + Petri soundness
    dscweaver simulate --workload purchasing --outcome if_au=F
    dscweaver lint purchasing --format sarif      # static analysis (repro.lint)

Workloads: purchasing, deployment, loan, travel, insurance.

Exit codes: ``validate`` returns 1 when the specification has conflicts
(cycles, unsatisfiable guards) or the Petri net is unsound; ``lint``
returns 1 when any finding is at or above ``--fail-on`` (default
``error``), 2 on usage errors.  Both return 0 on a clean specification.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import DSCWeaver, WeaveResult, extract_all_dependencies
from repro.deps.registry import DependencySet
from repro.model.process import BusinessProcess


def _load_workload(name: str) -> Tuple[BusinessProcess, DependencySet]:
    if name == "purchasing":
        from repro.workloads.purchasing import (
            build_purchasing_process,
            purchasing_cooperation_dependencies,
        )

        process = build_purchasing_process()
        cooperation = purchasing_cooperation_dependencies(process)
    elif name == "deployment":
        from repro.workloads.deployment import (
            build_deployment_process,
            deployment_cooperation,
        )

        process = build_deployment_process()
        cooperation = deployment_cooperation(process).dependencies
    elif name == "loan":
        from repro.workloads.loan import build_loan_process, loan_cooperation

        process = build_loan_process()
        cooperation = loan_cooperation(process).dependencies
    elif name == "travel":
        from repro.workloads.travel import build_travel_process, travel_cooperation

        process = build_travel_process()
        cooperation = travel_cooperation(process).dependencies
    elif name == "insurance":
        from repro.workloads.insurance import (
            build_insurance_process,
            insurance_cooperation,
        )

        process = build_insurance_process()
        cooperation = insurance_cooperation(process).dependencies
    else:
        raise SystemExit("unknown workload %r" % name)
    return process, extract_all_dependencies(process, cooperation=cooperation)


def _weave(name: str) -> Tuple[BusinessProcess, WeaveResult]:
    process, dependencies = _load_workload(name)
    return process, DSCWeaver().weave(process, dependencies)


def _split_codes(values: List[str]) -> List[str]:
    codes: List[str] = []
    for value in values:
        codes.extend(code for code in value.split(",") if code.strip())
    return codes


def _run_lint_command(arguments) -> int:
    from repro.errors import CycleError
    from repro.lint import Baseline, LintConfig, LintContext, render, run_lint

    try:
        process, result = _weave(arguments.workload)
    except CycleError as error:
        print(
            "error SYNC003 [process:%s] %s" % (arguments.workload, error),
            file=sys.stderr,
        )
        return 1

    construct = None
    if arguments.constructs:
        if arguments.workload != "purchasing":
            print(
                "--constructs: no construct tree available for workload %r"
                % arguments.workload,
                file=sys.stderr,
            )
            return 2
        from repro.workloads.purchasing_constructs import build_purchasing_constructs

        construct = build_purchasing_constructs()

    baseline = None
    if arguments.baseline:
        try:
            baseline = Baseline.load(arguments.baseline)
        except (OSError, ValueError) as error:
            print("cannot load baseline: %s" % error, file=sys.stderr)
            return 2

    config = LintConfig.from_codes(
        select=_split_codes(arguments.select),
        ignore=_split_codes(arguments.ignore),
        fail_on=arguments.fail_on,
        baseline=baseline,
    )
    context = LintContext.from_weave(result, construct=construct)
    report = run_lint(context, config)

    if arguments.write_baseline:
        merged = Baseline.from_diagnostics(
            list(report.findings) + list(report.suppressed)
        )
        merged.save(arguments.write_baseline)
        print(
            "wrote %s (%d suppression(s))" % (arguments.write_baseline, len(merged))
        )
        return 0

    print(render(report, arguments.format, title=arguments.workload), end="")
    return report.exit_code(config.fail_on)


def _parse_outcomes(pairs: List[str]) -> Dict[str, str]:
    outcomes: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit("--outcome expects guard=value, got %r" % pair)
        guard, value = pair.split("=", 1)
        outcomes[guard] = value
    return outcomes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dscweaver",
        description="Dependency categorization and optimization for business "
        "processes (ICDE 2007 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str) -> argparse.ArgumentParser:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--workload",
            default="purchasing",
            choices=["purchasing", "deployment", "loan", "travel", "insurance"],
        )
        return sub

    add("table1", "print the categorized dependency set (Table 1)")
    add("weave", "run the pipeline and print the reduction report (Table 2)")
    add("minimal", "print the minimal constraint set (Figure 9)")
    add("dscl", "print the merged DSCL program")
    bpel = add("bpel", "emit BPEL XML for the minimal set")
    bpel.add_argument("--output", default=None, help="file path (default stdout)")
    bpel.add_argument(
        "--structured",
        action="store_true",
        help="recover nested sequence/flow/switch structure instead of the "
        "flat flow/link form",
    )
    add("validate", "translate to a Petri net and check soundness")
    simulate = add("simulate", "execute the minimal schedule in the simulator")
    simulate.add_argument(
        "--outcome",
        action="append",
        default=[],
        metavar="GUARD=VALUE",
        help="fix a guard outcome (repeatable)",
    )
    dot = add("dot", "export a graph as Graphviz DOT")
    dot.add_argument(
        "--what",
        default="minimal",
        choices=["dependencies", "merged", "translated", "minimal", "petri", "races"],
    )
    dot.add_argument("--output", default=None, help="file path (default stdout)")
    uml = subparsers.add_parser(
        "uml", help="extract dependencies from a UML activity diagram XML file"
    )
    uml.add_argument("file", help="path to the activity-diagram XML")

    lint = subparsers.add_parser(
        "lint", help="run the static analyzer (races, protocol, redundancy)"
    )
    lint.add_argument(
        "workload",
        nargs="?",
        default="purchasing",
        choices=["purchasing", "deployment", "loan", "travel", "insurance"],
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"]
    )
    lint.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODES",
        help="only run these rule codes or prefixes, comma-separated "
        "(repeatable); e.g. --select SYNC001,SVC",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODES",
        help="skip these rule codes or prefixes (repeatable)",
    )
    lint.add_argument(
        "--fail-on",
        default="error",
        choices=["info", "warning", "error"],
        help="exit 1 when any finding is at or above this severity",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write all current findings to a baseline file and exit 0",
    )
    lint.add_argument(
        "--constructs",
        action="store_true",
        help="also check the workload's construct tree for over-/under-"
        "specification (purchasing only)",
    )

    arguments = parser.parse_args(argv)

    if arguments.command == "lint":
        return _run_lint_command(arguments)

    if arguments.command == "uml":
        from repro.uml.extract import diagram_dependencies
        from repro.uml.xmlio import diagram_from_xml

        with open(arguments.file, "r", encoding="utf-8") as handle:
            diagram = diagram_from_xml(handle.read())
        print(diagram_dependencies(diagram).as_table())
        return 0

    if arguments.command == "table1":
        _process, dependencies = _load_workload(arguments.workload)
        print(dependencies.as_table())
        return 0

    process, result = _weave(arguments.workload)

    if arguments.command == "weave":
        print(result.report.as_table())
    elif arguments.command == "minimal":
        for constraint in sorted(result.minimal.constraints):
            print(constraint)
    elif arguments.command == "dscl":
        from repro.dscl.printer import to_text

        print(to_text(result.program), end="")
    elif arguments.command == "bpel":
        if arguments.structured:
            from repro.bpel.structure import emit_structured_bpel

            xml = emit_structured_bpel(process, result.minimal)
        else:
            xml = result.to_bpel()
        if arguments.output:
            with open(arguments.output, "w", encoding="utf-8") as handle:
                handle.write(xml + "\n")
            print("wrote %s" % arguments.output)
        else:
            print(xml)
    elif arguments.command == "validate":
        from repro.petri.soundness import check_soundness
        from repro.validation.conflicts import find_conflicts

        conflicts = find_conflicts(result.asc, exclusives=result.exclusives)
        print("conflicts: %s" % conflicts.summary())
        net, _marking = result.to_petri_net()
        report = check_soundness(net)
        print(
            "workflow net: %s | sound: %s | reachable markings: %d"
            % (report.is_workflow_net, report.is_sound, report.reachable_markings)
        )
        for problem in report.problems:
            print("  problem:", problem)
        return 0 if report.is_sound and not conflicts.has_conflicts else 1
    elif arguments.command == "dot":
        from repro.export.dot import (
            constraint_set_to_dot,
            dependency_set_to_dot,
            petri_net_to_dot,
        )

        if arguments.what == "dependencies":
            text = dependency_set_to_dot(
                result.dependencies,
                name=arguments.workload,
                ports=process.port_names(),
            )
        elif arguments.what == "merged":
            text = constraint_set_to_dot(result.merged, name=arguments.workload)
        elif arguments.what == "translated":
            text = constraint_set_to_dot(
                result.asc,
                name=arguments.workload,
                highlight=result.translation.bridged,
            )
        elif arguments.what == "petri":
            net, _marking = result.to_petri_net()
            text = petri_net_to_dot(net, name=arguments.workload)
        elif arguments.what == "races":
            from repro.lint import find_races

            races = find_races(
                result.asc, process=process, exclusives=result.exclusives
            )
            text = constraint_set_to_dot(
                result.asc, name=arguments.workload, races=races
            )
        else:
            text = constraint_set_to_dot(result.minimal, name=arguments.workload)
        if arguments.output:
            with open(arguments.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print("wrote %s" % arguments.output)
        else:
            print(text, end="")
    elif arguments.command == "simulate":
        from repro.scheduler.engine import ConstraintScheduler
        from repro.scheduler.metrics import max_concurrency

        scheduler = ConstraintScheduler(
            process,
            result.minimal,
            fine_grained=result.fine_grained,
            exclusives=result.exclusives,
        )
        run = scheduler.run(outcomes=_parse_outcomes(arguments.outcome))
        print(
            "makespan=%.1f  constraint checks=%d  peak concurrency=%d"
            % (run.makespan, run.constraint_checks, max_concurrency(run.trace))
        )
        for record in run.trace.executed():
            outcome = " -> %s" % record.outcome if record.outcome else ""
            print(
                "  %6.1f .. %6.1f  %s%s"
                % (record.start, record.finish, record.name, outcome)
            )
        skipped = run.trace.skipped()
        if skipped:
            print("  skipped: %s" % ", ".join(skipped))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
