"""Command-line interface: ``dscweaver`` / ``python -m repro``.

Subcommands::

    dscweaver table1   --workload purchasing      # Table 1 dependency listing
    dscweaver weave    --workload purchasing      # Table 2 reduction report
    dscweaver minimal  --workload purchasing      # Figure 9 edge list
    dscweaver minimize --workload purchasing --stats   # Definition 6 + kernel counters
    dscweaver bpel     --workload purchasing      # emit BPEL to stdout/file
    dscweaver dscl     --workload purchasing      # emit the DSCL program
    dscweaver validate --workload purchasing      # conflicts + Petri soundness
    dscweaver simulate --workload purchasing --outcome if_au=F
    dscweaver simulate --record run.jsonl         # write a replayable event log
    dscweaver simulate --cases 200 --record runs.jsonl   # discovery-grade log
    dscweaver simulate --cases 200 --record n.jsonl --perturb swap --perturb-rate 0.1
    dscweaver discover --log runs.jsonl --reference purchasing   # mine + score
    dscweaver lint purchasing --format sarif      # static analysis (repro.lint)
    dscweaver replay purchasing --log run.jsonl   # conformance replay
    dscweaver monitor purchasing < stream.jsonl   # online conformance
    dscweaver serve purchasing --cases 1000 --shards 8   # multi-case runtime
    dscweaver serve purchasing --journal wal.jsonl --crash-after 500
    dscweaver serve purchasing --journal wal.jsonl --recover
    dscweaver serve purchasing --trace-out t.json --metrics-out m.prom
    dscweaver serve orders --objects --fan-out 50 --journal wal.jsonl
    dscweaver monitor orders --objects --log wal.jsonl   # object-aware replay
    dscweaver trace t.json --top 10               # flame summary of a trace

``minimize``, ``simulate``, ``replay`` and ``serve`` accept ``--trace-out``
(Chrome ``trace_event`` JSON, loadable in Perfetto) and ``--metrics-out``
(Prometheus text, or JSON for ``*.json`` paths); ``serve`` and ``replay``
also take ``--format json`` for a machine-readable run summary.

Workloads: purchasing, deployment, loan, travel, insurance, orders.  The
``orders`` workload additionally declares cross-case object constraints
(``repro.objects``): ``serve orders --objects`` fans each order out into
line-item cases co-sharded by object key, and ``monitor orders
--objects`` replays the journal with per-object obligation tracking
(``OBJ00x`` findings).

Exit codes: ``validate`` returns 1 when the specification has conflicts
(cycles, unsatisfiable guards) or the Petri net is unsound; ``lint``
returns 1 when any finding is at or above ``--fail-on`` (default
``error``); ``replay``/``monitor``/``serve``/``discover`` return 1 when
any finding is at or above ``--fail-on`` (default ``warning``); ``serve``
returns 3 on a simulated crash (``--crash-after``); all return 2 on usage
errors and 0 on a clean specification/log/run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import DSCWeaver, WeaveResult, extract_all_dependencies
from repro.deps.registry import DependencySet
from repro.model.process import BusinessProcess


def _load_workload(name: str) -> Tuple[BusinessProcess, DependencySet]:
    if name == "purchasing":
        from repro.workloads.purchasing import (
            build_purchasing_process,
            purchasing_cooperation_dependencies,
        )

        process = build_purchasing_process()
        cooperation = purchasing_cooperation_dependencies(process)
    elif name == "deployment":
        from repro.workloads.deployment import (
            build_deployment_process,
            deployment_cooperation,
        )

        process = build_deployment_process()
        cooperation = deployment_cooperation(process).dependencies
    elif name == "loan":
        from repro.workloads.loan import build_loan_process, loan_cooperation

        process = build_loan_process()
        cooperation = loan_cooperation(process).dependencies
    elif name == "travel":
        from repro.workloads.travel import build_travel_process, travel_cooperation

        process = build_travel_process()
        cooperation = travel_cooperation(process).dependencies
    elif name == "insurance":
        from repro.workloads.insurance import (
            build_insurance_process,
            insurance_cooperation,
        )

        process = build_insurance_process()
        cooperation = insurance_cooperation(process).dependencies
    elif name == "orders":
        from repro.deps.cooperation import CooperationRegistry
        from repro.workloads.orders import build_orders_process

        process = build_orders_process()
        cooperation = CooperationRegistry(process).dependencies
    else:
        raise SystemExit("unknown workload %r" % name)
    return process, extract_all_dependencies(process, cooperation=cooperation)


def _weave(name: str) -> Tuple[BusinessProcess, WeaveResult]:
    process, dependencies = _load_workload(name)
    return process, DSCWeaver().weave(process, dependencies)


def _split_codes(values: List[str]) -> List[str]:
    codes: List[str] = []
    for value in values:
        codes.extend(code for code in value.split(",") if code.strip())
    return codes


def _run_lint_command(arguments) -> int:
    from repro.errors import CycleError
    from repro.lint import Baseline, LintConfig, LintContext, render, run_lint

    try:
        process, result = _weave(arguments.workload)
    except CycleError as error:
        print(
            "error SYNC003 [process:%s] %s" % (arguments.workload, error),
            file=sys.stderr,
        )
        return 1

    construct = None
    if arguments.constructs:
        if arguments.workload != "purchasing":
            print(
                "--constructs: no construct tree available for workload %r"
                % arguments.workload,
                file=sys.stderr,
            )
            return 2
        from repro.workloads.purchasing_constructs import build_purchasing_constructs

        construct = build_purchasing_constructs()

    baseline = None
    if arguments.baseline:
        try:
            baseline = Baseline.load(arguments.baseline)
        except (OSError, ValueError) as error:
            print("cannot load baseline: %s" % error, file=sys.stderr)
            return 2

    config = LintConfig.from_codes(
        select=_split_codes(arguments.select),
        ignore=_split_codes(arguments.ignore),
        fail_on=arguments.fail_on,
        baseline=baseline,
    )
    context = LintContext.from_weave(result, construct=construct)
    report = run_lint(context, config)

    if arguments.write_baseline:
        merged = Baseline.from_diagnostics(
            list(report.findings) + list(report.suppressed)
        )
        merged.save(arguments.write_baseline)
        print(
            "wrote %s (%d suppression(s))" % (arguments.write_baseline, len(merged))
        )
        return 0

    print(render(report, arguments.format, title=arguments.workload), end="")
    return report.exit_code(config.fail_on)


#: Mirror of :data:`repro.conformance.perturb.PERTURBATION_KINDS`, inlined
#: so building the argument parser never imports the conformance package
#: (pinned equal by ``tests/test_discover_cli.py``).
_PERTURBATION_KINDS = (
    "swap",
    "drop_finish",
    "duplicate",
    "orphan_finish",
    "alien",
    "dead_branch",
    "truncate",
)


def _load_event_log(path: str, log_format: Optional[str] = None):
    """Read an event log, sniffing the format from extension and content.

    Runtime WAL journals are recognized by their ``{"rt": ...}`` control
    records and ingested duplicate-tolerantly, so ``replay``/``monitor``/
    ``discover`` consume journals directly.
    """
    from repro.discover.ingest import load_log

    return load_log(path, log_format)


def _conformance_program(arguments):
    """``(weave result, monitor program)`` for the replay/monitor commands."""
    from repro.conformance import program_from_weave

    _process, result = _weave(arguments.workload)
    return result, program_from_weave(result, which=arguments.set)


def _make_obs(arguments):
    """An :class:`repro.obs.Observability` when ``--trace-out`` or
    ``--metrics-out`` was given, else ``None`` (the zero-cost path)."""
    if getattr(arguments, "trace_out", None) or getattr(
        arguments, "metrics_out", None
    ):
        from repro.obs import Observability

        return Observability()
    return None


def _flush_obs(obs, arguments) -> None:
    """Write the collected trace/metrics to the requested files.

    Notices go to stderr so ``--format json`` keeps stdout machine-readable.
    """
    if obs is None:
        return
    from repro.obs import write_metrics, write_trace

    if getattr(arguments, "trace_out", None):
        write_trace(obs.tracer, arguments.trace_out)
        print("wrote trace to %s" % arguments.trace_out, file=sys.stderr)
    if getattr(arguments, "metrics_out", None):
        write_metrics(obs.metrics, arguments.metrics_out)
        print("wrote metrics to %s" % arguments.metrics_out, file=sys.stderr)


def _emit_summary(fmt: str, payload, text: str) -> None:
    """Shared ``--format text|json`` switch for run summaries.

    ``text`` is printed verbatim (no trailing newline added beyond what it
    carries) so textual output stays byte-identical to the historical form;
    ``payload`` is the machine-readable equivalent.
    """
    import json as json_module

    if fmt == "json":
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text, end="")


def _print_replay_report(report, arguments) -> int:
    from repro.lint import Severity, render

    lint_report = report.to_lint_report()
    title = "%s (%s set)" % (arguments.workload, arguments.set)
    if arguments.format == "json":
        from repro.lint.formats import report_dict

        payload = {
            "summary": {
                "cases": report.cases,
                "events": report.events,
                "checks": report.checks,
                "program_size": report.program_size,
                "fitness": report.fitness,
                "checks_per_event": report.checks_per_event,
                "violated_cases": list(report.violated_cases),
                "violations_by_code": {
                    code: count
                    for code, count in report.counts_by_code().items()
                    if count
                },
                "violations_by_category": dict(report.violations_by_category),
                "verdicts": {
                    verdict.value: count
                    for verdict, count in report.verdict_counts.items()
                },
            },
            "findings": report_dict(lint_report, title=title),
        }
        _emit_summary("json", payload, "")
    elif arguments.format == "text":
        print(render(lint_report, "text", title=title), end="")
        print(report.summary())
    else:
        print(render(lint_report, arguments.format, title=title), end="")
    return lint_report.exit_code(Severity.from_name(arguments.fail_on))


def _run_replay_command(arguments) -> int:
    from repro.conformance import program_from_weave, replay, verdicts_agree

    try:
        log = _load_event_log(arguments.log, arguments.log_format)
    except (OSError, ValueError) as error:
        print("cannot load log: %s" % error, file=sys.stderr)
        return 2
    result, program = _conformance_program(arguments)
    obs = _make_obs(arguments)
    report = replay(log, program, indexed=not arguments.naive, obs=obs)
    _flush_obs(obs, arguments)
    if arguments.compare:
        other_which = "full" if arguments.set == "minimal" else "minimal"
        other = replay(log, program_from_weave(result, which=other_which))
        agree = verdicts_agree(report, other)
        print(
            "verdicts vs %s set: %s | checks: %s=%d %s=%d"
            % (
                other_which,
                "identical" if agree else "DIFFERENT",
                arguments.set,
                report.checks,
                other_which,
                other.checks,
            )
        )
        if not agree:
            print("minimization changed replay verdicts!", file=sys.stderr)
            return 1
    return _print_replay_report(report, arguments)


def _run_monitor_command(arguments) -> int:
    from repro.conformance import ConformanceMonitor, Event
    from repro.lint import Severity

    import json as json_module

    _result, program = _conformance_program(arguments)
    monitor = ConformanceMonitor(program)
    objmon = None
    if arguments.objects:
        if arguments.workload != "orders":
            print("--objects requires the orders workload", file=sys.stderr)
            return 2
        from repro.objects import ObjectMonitor
        from repro.workloads.orders import orders_object_spec

        objmon = ObjectMonitor(orders_object_spec())
    if arguments.log:
        handle = open(arguments.log, "r", encoding="utf-8")
    else:
        handle = sys.stdin
    printed_obj = 0
    try:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json_module.loads(line)
            except ValueError as error:
                print("line %d: bad event (%s)" % (number, error), file=sys.stderr)
                return 2
            if isinstance(payload, dict) and payload.get("rt") is not None:
                # Runtime journal control record, not a lifecycle event.
                # Admit records carry the declared fan-out the object
                # monitor needs; everything else is skipped so a WAL
                # journal monitors as-is.
                if (
                    objmon is not None
                    and payload.get("rt") == "admit"
                    and payload.get("object")
                ):
                    from repro.objects import ObjectBinding

                    objmon.bind(
                        str(payload["case"]),
                        ObjectBinding.from_dict(payload["object"]),
                    )
                continue
            try:
                event = Event.from_dict(payload)
            except (KeyError, TypeError, ValueError) as error:
                print("line %d: bad event (%s)" % (number, error), file=sys.stderr)
                return 2
            for diagnostic in monitor.feed(event):
                print(diagnostic.render())
            if objmon is not None:
                objmon.feed(event)
                for diagnostic in objmon.diagnostics[printed_obj:]:
                    print(diagnostic.render())
                printed_obj = len(objmon.diagnostics)
    finally:
        if arguments.log:
            handle.close()
    for diagnostic in monitor.finish():
        print(diagnostic.render())
    obj_report = None
    if objmon is not None:
        obj_report = objmon.finish()
        for diagnostic in obj_report.diagnostics[printed_obj:]:
            print(diagnostic.render())
    threshold = Severity.from_name(arguments.fail_on)
    diagnostics = list(monitor.diagnostics)
    if obj_report is not None:
        diagnostics.extend(obj_report.diagnostics)
    gating = sum(1 for d in diagnostics if d.severity.at_least(threshold))
    print(
        "monitored %d event(s), %d finding(s), %d gating"
        % (monitor.events_fed, len(diagnostics), gating)
    )
    if obj_report is not None:
        print(obj_report.summary())
    return 1 if gating else 0


def _package_version() -> str:
    """The installed package version, falling back to the source tree's.

    The fallback matters because the repository is routinely run straight
    off ``PYTHONPATH=src`` without being pip-installed, in which case
    ``importlib.metadata`` has no distribution to consult.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - Python < 3.8
        PackageNotFoundError = Exception  # type: ignore[assignment]
        version = None  # type: ignore[assignment]
    if version is not None:
        for distribution in ("repro", "dscweaver"):
            try:
                return version(distribution)
            except PackageNotFoundError:
                continue
    import repro

    return repro.__version__


def _case_plans(program, count: int) -> Dict[str, Dict[str, str]]:
    """``count`` case outcome plans enumerating guard-domain combinations.

    The case index is read as a mixed-radix number over the guards' outcome
    domains, so consecutive cases exercise every branch combination before
    repeating — the synthetic workload behind ``dscweaver serve``.
    """
    guards = program.guard_names()
    domains = {guard: program.outcome_domain(guard) for guard in guards}
    plans: Dict[str, Dict[str, str]] = {}
    for index in range(count):
        plan: Dict[str, str] = {}
        shift = index
        for guard in guards:
            domain = domains[guard]
            plan[guard] = domain[shift % len(domain)]
            shift //= len(domain)
        plans["case-%05d" % index] = plan
    return plans


def _run_verify_command(arguments) -> int:
    from repro.errors import CycleError
    from repro.lint import Baseline, LintConfig, LintContext, render, run_lint
    from repro.programs import program_from_weave
    from repro.verify import verify_program

    try:
        _process, result = _weave(arguments.workload)
    except CycleError as error:
        print(
            "error SYNC003 [process:%s] %s" % (arguments.workload, error),
            file=sys.stderr,
        )
        return 1

    baseline = None
    if arguments.baseline:
        try:
            baseline = Baseline.load(arguments.baseline)
        except (OSError, ValueError) as error:
            print("cannot load baseline: %s" % error, file=sys.stderr)
            return 2

    program = program_from_weave(result, which=arguments.set, target="runtime")
    obs = _make_obs(arguments)
    report = verify_program(
        program, state_limit=arguments.state_limit, obs=obs
    )
    _flush_obs(obs, arguments)

    config = LintConfig.from_codes(
        select=_split_codes(arguments.select) or ["VER"],
        ignore=_split_codes(arguments.ignore),
        fail_on=arguments.fail_on,
        baseline=baseline,
    )
    context = LintContext.from_weave(result)
    context.verification = report
    lint_report = run_lint(context, config)
    if arguments.format == "text":
        for line in report.summary_lines():
            print(line)
        print()
    print(
        render(lint_report, arguments.format, title=arguments.workload), end=""
    )
    return lint_report.exit_code(config.fail_on)


def _run_petri_command(arguments) -> int:
    import json as json_module

    from repro.errors import PetriNetError
    from repro.petri.from_constraints import constraint_set_to_petri_net
    from repro.petri.reachability import build_reachability_graph
    from repro.petri.soundness import check_soundness, workflow_places
    from repro.programs import select_constraint_set
    from repro.verify import petri_cross_check

    _process, result = _weave(arguments.workload)
    sc = select_constraint_set(result, arguments.set)
    try:
        net, initial = constraint_set_to_petri_net(sc)
    except PetriNetError as error:
        print("petri translation failed: %s" % error, file=sys.stderr)
        return 2

    graph = build_reachability_graph(
        net, initial, state_limit=arguments.state_limit
    )
    soundness = check_soundness(net, state_limit=arguments.state_limit)
    cross = petri_cross_check(sc, state_limit=arguments.state_limit)

    _source, sink = workflow_places(net)
    terminals = []
    for index, marking in enumerate(graph.markings):
        if net.enabled_transitions(marking):
            continue
        kind = (
            "final"
            if sink is not None and marking.count(sink) >= 1
            else "deadlock"
        )
        terminals.append(
            {
                "kind": kind,
                "marking": str(marking),
                "witness": graph.witness_path(index),
            }
        )

    payload = {
        "workload": arguments.workload,
        "set": arguments.set,
        "places": len(net.places),
        "transitions": len(net.transitions),
        "reachable_markings": len(graph),
        "truncated": graph.truncated,
        "sound": soundness.is_sound,
        "problems": list(soundness.problems),
        "dead_transitions": list(soundness.dead_transitions),
        "stuck_witness": list(soundness.stuck_witness),
        "terminal_markings": terminals,
        "verifier_predicts_sound": cross.predicted_sound,
        "verifier_agrees": cross.agrees,
    }
    if arguments.format == "json":
        print(json_module.dumps(payload, indent=2))
    else:
        print(
            "petri net for %s (%s set): %d places, %d transitions"
            % (arguments.workload, arguments.set, payload["places"],
               payload["transitions"])
        )
        print(
            "reachable markings: %d%s"
            % (len(graph), " (truncated)" if graph.truncated else "")
        )
        print("sound: %s" % ("yes" if soundness.is_sound else "no"))
        for problem in soundness.problems:
            print("  problem: %s" % problem)
        for terminal in terminals:
            print(
                "  %s marking %s via: %s"
                % (
                    terminal["kind"],
                    terminal["marking"],
                    " -> ".join(terminal["witness"]) or "<initial>",
                )
            )
        print(
            "verifier cross-check: predicts sound=%s, agrees=%s"
            % (cross.predicted_sound, cross.agrees)
        )
    if cross.agrees is False:
        return 1
    return 0 if soundness.is_sound else 1


def _run_serve_command(arguments) -> int:
    from repro.lint import Severity, render
    from repro.runtime import (
        RetryPolicies,
        RetryPolicy,
        Runtime,
        SimulatedCrash,
        program_from_weave,
    )

    if arguments.recover and not arguments.journal:
        print("--recover requires --journal", file=sys.stderr)
        return 2
    if arguments.crash_after is not None and not arguments.journal:
        print("--crash-after requires --journal", file=sys.stderr)
        return 2
    if arguments.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if arguments.workers > 1 and (
        arguments.max_in_flight is not None or arguments.max_queue is not None
    ):
        print(
            "--max-in-flight/--max-queue are per-runtime admission bounds "
            "and are not supported with --workers",
            file=sys.stderr,
        )
        return 2
    if arguments.redeploy_after is not None:
        if not arguments.to:
            print("--redeploy-after requires --to EDITS.json", file=sys.stderr)
            return 2
        if not arguments.journal:
            print("--redeploy-after requires --journal", file=sys.stderr)
            return 2
        if arguments.objects:
            print(
                "--redeploy-after is not supported with --objects: cross-case "
                "barriers couple case states across versions",
                file=sys.stderr,
            )
            return 2
        if arguments.set != "minimal":
            print(
                "--redeploy-after serves the registry's minimized programs; "
                "drop --set full",
                file=sys.stderr,
            )
            return 2
    elif arguments.to:
        print("--to requires --redeploy-after", file=sys.stderr)
        return 2

    _process, result = _weave(arguments.workload)
    program = program_from_weave(result, which=arguments.set, target="runtime")

    deploy_spec = None
    registry = None
    redeploy_result = None
    if arguments.redeploy_after is not None:
        from repro.deploy import PoolSwap, ProgramRegistry, load_edits

        registry = ProgramRegistry.from_weave(result)
        try:
            added, removed = load_edits(arguments.to)
            redeploy_result = registry.redeploy(added=added, removed=removed)
        except (OSError, ValueError) as error:
            print("cannot redeploy: %s" % error, file=sys.stderr)
            return 2
        deploy_spec = PoolSwap(
            old=registry.version(registry.current_version - 1),
            new=registry.current,
            strategy=arguments.strategy,
            after=arguments.redeploy_after,
        )
        # Serve v1 from the registry so old/new share one compiled surface.
        program = deploy_spec.old.program
        if arguments.format == "text":
            print(
                "redeploy armed: v%d -> v%d after %d completion(s)%s "
                "(%s re-minimize, %.4fs)"
                % (
                    deploy_spec.old.version,
                    deploy_spec.new.version,
                    deploy_spec.after,
                    " per worker" if arguments.workers > 1 else "",
                    "incremental" if redeploy_result.incremental else "cold",
                    redeploy_result.minimize_seconds,
                )
            )

    if arguments.verify:
        from repro.verify import verify_program

        preflight = verify_program(program)
        if preflight.deadlock_free is False:
            print(
                "verify: REFUTED — the %s constraint set can deadlock; "
                "refusing to serve" % arguments.set,
                file=sys.stderr,
            )
            for line in preflight.summary_lines():
                print("  " + line, file=sys.stderr)
            return 2
        if arguments.format == "text":
            verdict = (
                "PROVEN deadlock-free"
                if preflight.deadlock_free
                else "UNKNOWN (state limit)"
            )
            print(
                "verify: %s (%d states, %.3fs)"
                % (verdict, preflight.stats.states, preflight.elapsed_seconds)
            )

    policies = RetryPolicies(
        default=RetryPolicy(
            failure_rate=arguments.failure_rate,
            timeout=arguments.retry_timeout,
            max_attempts=arguments.max_attempts,
        )
    )
    obs = _make_obs(arguments)
    if obs is not None and arguments.workers > 1:
        print(
            "note: --trace-out/--metrics-out instrument the in-process "
            "runtime; ignored with --workers",
            file=sys.stderr,
        )
        obs = None
    options = dict(
        shards=arguments.shards,
        batch=arguments.batch,
        indexed=not arguments.naive,
        fast=not arguments.no_fast,
        flush_every=arguments.flush_every,
        max_in_flight=arguments.max_in_flight,
        max_queue=arguments.max_queue,
        policies=policies,
        seed=arguments.seed,
        obs=obs,
    )

    bindings = None
    objects_info = None
    if arguments.objects:
        if arguments.workload != "orders":
            print("--objects requires the orders workload", file=sys.stderr)
            return 2
        from repro.workloads.orders import orders_object_spec, orders_plans

        order_count = max(1, arguments.cases // (arguments.fan_out + 1))
        try:
            plans, bindings = orders_plans(
                order_count,
                arguments.fan_out,
                cancel_every=arguments.cancel_every,
                withhold=arguments.withhold,
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        options["objects"] = orders_object_spec()
        options["co_shard"] = not arguments.random_shard
        objects_info = {
            "orders": order_count,
            "fan_out": arguments.fan_out,
            "cancel_every": arguments.cancel_every,
            "withhold": arguments.withhold,
            "co_shard": not arguments.random_shard,
        }
        if arguments.format == "text":
            print(
                "objects: %d order(s) x fan-out %d -> %d case(s) "
                "(%s-sharded%s)"
                % (
                    order_count,
                    arguments.fan_out,
                    len(plans),
                    "co" if not arguments.random_shard else "random",
                    ", withholding %d child(ren) per order" % arguments.withhold
                    if arguments.withhold
                    else "",
                )
            )
    else:
        plans = _case_plans(program, arguments.cases)
    hint = "dscweaver serve %s --cases %d --set %s --journal %s --recover" % (
        arguments.workload,
        arguments.cases,
        arguments.set,
        arguments.journal,
    )
    if arguments.workers > 1:
        hint += " --workers %d" % arguments.workers
    if arguments.objects:
        hint += " --objects --fan-out %d" % arguments.fan_out
        if arguments.cancel_every:
            hint += " --cancel-every %d" % arguments.cancel_every
        if arguments.withhold:
            hint += " --withhold %d" % arguments.withhold
        if arguments.random_shard:
            hint += " --random-shard"
    if deploy_spec is not None:
        hint += " --redeploy-after %d --to %s --strategy %s" % (
            arguments.redeploy_after,
            arguments.to,
            arguments.strategy,
        )

    recovery = None
    if arguments.workers > 1:
        from repro.runtime.workers import WorkerPool, read_manifest

        pool_options = dict(
            objects=options.get("objects"),
            indexed=not arguments.naive,
            fast=not arguments.no_fast,
            shards_per_worker=max(1, arguments.shards // arguments.workers),
            batch=arguments.batch,
            seed=arguments.seed,
            policies=policies,
            deploy=deploy_spec,
        )
        try:
            if arguments.recover:
                manifest = read_manifest(arguments.journal)
                report = WorkerPool.recover(
                    arguments.journal,
                    program,
                    plans=plans,
                    bindings=bindings,
                    **pool_options,
                )
                recovery = {
                    "journal": arguments.journal,
                    "workers": int(manifest["workers"]),
                    "adopted": report.metrics.recovered,
                }
                if arguments.format == "text":
                    print(
                        "recovered %d-worker journal %s: %d completed "
                        "case(s) adopted"
                        % (
                            recovery["workers"],
                            arguments.journal,
                            report.metrics.recovered,
                        )
                    )
            else:
                pool = WorkerPool(
                    program,
                    workers=arguments.workers,
                    journal_dir=arguments.journal,
                    co_shard=options.get("co_shard", True),
                    flush_every=arguments.flush_every,
                    crash_after=arguments.crash_after,
                    **pool_options,
                )
                report = pool.serve(plans, bindings)
        except SimulatedCrash as crash:
            print(
                "simulated crash after journal record %d; recover with: %s"
                % (crash.records_written, hint)
            )
            return 3
    else:
        swap_engine = None
        swap_armed = False
        journal_state = None
        if deploy_spec is not None:
            from repro.deploy import MigrationEngine

            swap_engine = MigrationEngine(
                deploy_spec.old, deploy_spec.new, state_limit=deploy_spec.state_limit
            )
        if arguments.recover:
            if deploy_spec is not None:
                from repro.runtime import read_journal

                journal_state = read_journal(arguments.journal)
                options = dict(options)
                options["programs"] = registry.programs()
            runtime = Runtime.recover(
                arguments.journal,
                program,
                crash_after=arguments.crash_after,
                state=journal_state,
                **options,
            )
            known = set(runtime.known_cases)
            pending = {c: p for c, p in plans.items() if c not in known}
            recovery = {
                "journal": arguments.journal,
                "adopted_or_resumed": len(known),
                "resubmitted": len(pending),
            }
            if arguments.format == "text":
                print(
                    "recovered journal %s: %d case(s) adopted or resumed, "
                    "%d resubmitted" % (arguments.journal, len(known), len(pending))
                )
            plans = pending
            if deploy_spec is not None:
                from repro.deploy import resume_swap

                if journal_state.pending_deploy() is not None:
                    resume_swap(
                        runtime, swap_engine, journal_state, deploy_spec.strategy
                    )
                elif journal_state.current_version() < deploy_spec.new.version:
                    # The crash hit before the swap began: re-arm it.
                    swap_armed = True
        else:
            runtime = Runtime(
                program,
                journal_path=arguments.journal,
                crash_after=arguments.crash_after,
                **options,
            )
            swap_armed = deploy_spec is not None
        try:
            # the crash point may land on an admit record, not just mid-run
            runtime.submit_batch(plans, bindings=bindings)
            if swap_armed:
                from repro.deploy import execute_swap

                runtime.run_until_completed(deploy_spec.after)
                execute_swap(runtime, swap_engine, deploy_spec.strategy)
            report = runtime.run()
        except SimulatedCrash as crash:
            print(
                "simulated crash after journal record %d; recover with: %s"
                % (crash.records_written, hint)
            )
            return 3
        finally:
            runtime.close()
            _flush_obs(obs, arguments)

    import dataclasses

    from repro.lint.formats import report_dict

    lint_report = report.to_lint_report()
    text = report.summary() + "\n"
    if report.diagnostics:
        text += render(lint_report, "text", title=arguments.workload)
    payload = {
        "workload": arguments.workload,
        "set": arguments.set,
        "metrics": dataclasses.asdict(report.metrics),
        "findings": report_dict(lint_report, title=arguments.workload),
    }
    if recovery is not None:
        payload["recovery"] = recovery
    if objects_info is not None:
        payload["objects"] = objects_info
    if deploy_spec is not None:
        payload["deploy"] = {
            "from_version": deploy_spec.old.version,
            "to_version": deploy_spec.new.version,
            "strategy": deploy_spec.strategy,
            "after": deploy_spec.after,
            "incremental": redeploy_result.incremental,
            "minimize_seconds": redeploy_result.minimize_seconds,
            "upgraded": report.metrics.upgraded,
            "drained": report.metrics.drained,
            "rejected": report.metrics.swap_rejected,
            "versions": dict(report.versions),
        }
    _emit_summary(arguments.format, payload, text)
    return report.exit_code(Severity.from_name(arguments.fail_on))


def _run_deploy_command(arguments) -> int:
    """Plan (and optionally apply) a constraint hot swap.

    Without ``--from`` this is a pure pre-flight: re-minimize the edited
    set incrementally, sweep the strand gate (DEP005) and report.  With
    ``--from JOURNAL`` the journal's in-flight cases are additionally
    classified into a migration plan; unless ``--dry-run``, the swap is
    applied and the run is driven to completion on the new version.
    """
    from repro.deploy import (
        MigrationEngine,
        ProgramRegistry,
        execute_swap,
        load_edits,
        preflight,
        resume_swap,
    )
    from repro.lint import Severity, render
    from repro.lint.diagnostics import LintReport
    from repro.lint.formats import report_dict

    _process, result = _weave(arguments.workload)
    obs = _make_obs(arguments)
    registry = ProgramRegistry.from_weave(result, obs=obs)
    old = registry.current
    try:
        added, removed = load_edits(arguments.to)
    except (OSError, ValueError) as error:
        print("cannot load edits: %s" % error, file=sys.stderr)
        return 2
    try:
        redeploy = registry.redeploy(added=added, removed=removed, cold=arguments.cold)
    except ValueError as error:
        print("invalid edit batch: %s" % error, file=sys.stderr)
        return 2
    new = redeploy.version
    strand_report, gate_findings = preflight(
        old, new, state_limit=arguments.state_limit
    )
    diagnostics = list(gate_findings)
    payload = {
        "workload": arguments.workload,
        "from_version": old.version,
        "to_version": new.version,
        "strategy": arguments.strategy,
        "added": len(redeploy.added),
        "removed": len(redeploy.removed),
        "minimal_size": len(new.minimal.constraints),
        "incremental": redeploy.incremental,
        "minimize_seconds": redeploy.minimize_seconds,
        "preflight": {
            "prefixes_checked": strand_report.prefixes_checked,
            "stranded": len(strand_report.stranded),
            "truncated": strand_report.truncated,
            "safe": strand_report.safe,
        },
    }
    lines = [
        "deploy %s: v%d -> v%d (%+d/-%d edit(s), minimal %d -> %d, "
        "%s re-minimize in %.4fs)"
        % (
            arguments.workload,
            old.version,
            new.version,
            len(redeploy.added),
            len(redeploy.removed),
            len(old.minimal.constraints),
            len(new.minimal.constraints),
            "incremental" if redeploy.incremental else "cold",
            redeploy.minimize_seconds,
        ),
        "preflight strand gate: %d prefix(es) checked, %d stranded%s"
        % (
            strand_report.prefixes_checked,
            len(strand_report.stranded),
            " (truncated)" if strand_report.truncated else "",
        ),
    ]

    plan = None
    if arguments.journal is not None:
        from repro.runtime import Runtime, read_journal

        try:
            state = read_journal(arguments.journal)
        except (OSError, ValueError) as error:
            print("cannot read journal: %s" % error, file=sys.stderr)
            return 2
        engine = MigrationEngine(old, new, state_limit=arguments.state_limit)
        runtime = Runtime.recover(
            arguments.journal,
            old.program,
            programs=registry.programs(),
            state=state,
        )
        try:
            if state.pending_deploy() is not None:
                plan = resume_swap(runtime, engine, state, arguments.strategy)
            else:
                plan = execute_swap(
                    runtime, engine, arguments.strategy, dry_run=arguments.dry_run
                )
            if plan is not None and plan.applied and not arguments.dry_run:
                runtime.run()
        finally:
            runtime.close()
        if plan is not None:
            diagnostics.extend(plan.diagnostics)
            payload["plan"] = plan.to_dict()
            lines.append(
                "migration plan (%s%s): %d upgrade, %d drain, %d reject "
                "across %d in-flight case(s)"
                % (
                    plan.strategy,
                    ", dry-run" if not plan.applied else
                    (", recovered" if plan.recovered else ""),
                    plan.upgraded,
                    plan.drained,
                    plan.rejected,
                    len(plan.decisions),
                )
            )

    lint_report = LintReport.from_diagnostics(diagnostics, [])
    payload["findings"] = report_dict(lint_report, title=arguments.workload)
    text = "\n".join(lines) + "\n"
    if lint_report.findings:
        text += render(lint_report, "text", title=arguments.workload)
    _emit_summary(arguments.format, payload, text)
    _flush_obs(obs, arguments)
    return lint_report.exit_code(Severity.from_name(arguments.fail_on))


def _run_minimize_command(arguments) -> int:
    import time

    from repro.core.closure import Semantics
    from repro.core.pipeline import DSCWeaver

    semantics = Semantics(arguments.semantics)
    kernel = not arguments.no_kernel
    process, dependencies = _load_workload(arguments.workload)
    obs = _make_obs(arguments)
    weaver = DSCWeaver(
        semantics=semantics, algorithm=arguments.algorithm, kernel=kernel, obs=obs
    )
    started = time.perf_counter()
    result = weaver.weave(process, dependencies)
    elapsed = time.perf_counter() - started
    _flush_obs(obs, arguments)
    for constraint in sorted(result.minimal.constraints):
        print(constraint)
    if arguments.stats:
        report = result.report
        print(
            "minimized %d -> %d constraint(s) (%d removed) | algorithm=%s "
            "kernel=%s semantics=%s | %.1f ms"
            % (
                report.translated,
                report.minimal,
                report.removed_by_minimization,
                arguments.algorithm,
                "on" if kernel else "off",
                semantics.value,
                elapsed * 1000.0,
            )
        )
        if report.kernel_stats is not None:
            for key, value in report.kernel_stats.items():
                if isinstance(value, float):
                    print("  %-24s %.3f" % (key, value))
                else:
                    print("  %-24s %s" % (key, value))
    return 0


def _run_trace_command(arguments) -> int:
    from repro.obs import flame_summary, load_trace, render_flame

    try:
        payload = load_trace(arguments.file)
    except (OSError, ValueError) as error:
        print("cannot load trace: %s" % error, file=sys.stderr)
        return 2
    events = [
        event
        for event in payload.get("traceEvents", [])
        if isinstance(event, dict) and event.get("ph") == "X"
    ]
    rows = flame_summary(payload, top=arguments.top)
    print(render_flame(rows, total_events=len(events)))
    return 0


def _maybe_perturb(log, arguments, result):
    """Apply ``--perturb KIND --perturb-rate R --seed S`` to a recorded log."""
    if not getattr(arguments, "perturb", None):
        return log
    from repro.discover.evaluate import perturb_log

    perturbed, applied = perturb_log(
        log,
        arguments.perturb_rate,
        seed=arguments.seed,
        constraints=list(result.minimal),
        guards=result.minimal.guards,
        kinds=[arguments.perturb],
    )
    for perturbation in applied:
        print(
            "perturbed %s (%s): %s"
            % (perturbation.case, perturbation.kind, perturbation.description)
        )
    if not applied:
        print(
            "no injection site for --perturb %s in this log" % arguments.perturb,
            file=sys.stderr,
        )
    return perturbed


def _run_discover_command(arguments) -> int:
    """``dscweaver discover``: mine dependencies from an event log.

    Exit contract: 0 clean, 1 findings at/above ``--fail-on`` (including
    DIS005 divergence from ``--reference``), 2 unreadable/invalid input.
    """
    from repro.discover.ingest import load_log
    from repro.discover.mine import MinerConfig, mine
    from repro.discover.stats import LogStatistics
    from repro.lint import Baseline, LintConfig, LintContext, render, run_lint

    obs = _make_obs(arguments)
    try:
        log = load_log(arguments.log, arguments.format, obs=obs)
    except (OSError, ValueError) as error:
        print("cannot load log: %s" % error, file=sys.stderr)
        return 2
    try:
        config = MinerConfig(
            min_support=arguments.min_support,
            min_confidence=arguments.min_confidence,
            noise=arguments.noise,
        )
        config.validate()
    except ValueError as error:
        print("invalid thresholds: %s" % error, file=sys.stderr)
        return 2
    baseline = None
    if arguments.baseline:
        try:
            baseline = Baseline.load(arguments.baseline)
        except (OSError, ValueError) as error:
            print("cannot load baseline: %s" % error, file=sys.stderr)
            return 2

    stats = LogStatistics.from_log(log, obs=obs)
    discovery = mine(stats, config=config, obs=obs)

    summary_lines = discovery.summary_lines()
    process = None
    if arguments.reference:
        from repro.discover.evaluate import round_trip

        process, reference = _weave(arguments.reference)
        trip = round_trip(
            discovery, process, reference, verify=not arguments.no_verify, obs=obs
        )
        summary_lines.extend(trip.summary_lines())

    if arguments.emit_dscl:
        from repro.dscl.compiler import dependencies_to_program
        from repro.dscl.printer import to_text

        text = to_text(dependencies_to_program(discovery.dependency_set()))
        with open(arguments.emit_dscl, "w", encoding="utf-8") as handle:
            handle.write(text)
        summary_lines.append("wrote mined DSCL program to %s" % arguments.emit_dscl)

    _flush_obs(obs, arguments)

    lint_config = LintConfig.from_codes(
        select=_split_codes(arguments.select) or ["DIS"],
        ignore=_split_codes(arguments.ignore),
        fail_on=arguments.fail_on,
        baseline=baseline,
    )
    context = LintContext.from_constraints(
        discovery.constraint_set(), process=process
    )
    context.discovery = discovery
    report = run_lint(context, lint_config)
    if arguments.report_format == "text":
        for line in summary_lines:
            print(line)
        if arguments.show_candidates:
            for candidate in discovery.candidates:
                print("  %s" % candidate)
        print()
    print(render(report, arguments.report_format, title=arguments.log), end="")
    return report.exit_code(lint_config.fail_on)


def _parse_outcomes(pairs: List[str]) -> Dict[str, str]:
    outcomes: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit("--outcome expects guard=value, got %r" % pair)
        guard, value = pair.split("=", 1)
        outcomes[guard] = value
    return outcomes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dscweaver",
        description="Dependency categorization and optimization for business "
        "processes (ICDE 2007 reproduction).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version="%(prog)s " + _package_version(),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str) -> argparse.ArgumentParser:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--workload",
            default="purchasing",
            choices=["purchasing", "deployment", "loan", "travel", "insurance", "orders"],
        )
        return sub

    def add_obs_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace-out",
            default=None,
            metavar="PATH",
            help="write collected spans as Chrome trace_event JSON "
            "(loadable in Perfetto / chrome://tracing)",
        )
        sub.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write metrics to PATH: Prometheus text exposition, "
            "or JSON when PATH ends in .json",
        )

    add("table1", "print the categorized dependency set (Table 1)")
    add("weave", "run the pipeline and print the reduction report (Table 2)")
    add("minimal", "print the minimal constraint set (Figure 9)")
    minimize_cmd = add(
        "minimize", "run Definition 6 minimization and print the minimal set"
    )
    minimize_cmd.add_argument(
        "--stats",
        action="store_true",
        help="print reduction counts and bitset-kernel counters",
    )
    minimize_cmd.add_argument(
        "--algorithm", default="fast", choices=["fast", "naive"]
    )
    minimize_cmd.add_argument(
        "--no-kernel",
        action="store_true",
        help="use the reference frozenset path instead of the bitset kernel",
    )
    minimize_cmd.add_argument(
        "--semantics",
        default="guard-aware",
        choices=["strict", "guard-aware", "reachability"],
    )
    add_obs_flags(minimize_cmd)
    add("dscl", "print the merged DSCL program")
    bpel = add("bpel", "emit BPEL XML for the minimal set")
    bpel.add_argument("--output", default=None, help="file path (default stdout)")
    bpel.add_argument(
        "--structured",
        action="store_true",
        help="recover nested sequence/flow/switch structure instead of the "
        "flat flow/link form",
    )
    add("validate", "translate to a Petri net and check soundness")
    simulate = add("simulate", "execute the minimal schedule in the simulator")
    simulate.add_argument(
        "--outcome",
        action="append",
        default=[],
        metavar="GUARD=VALUE",
        help="fix a guard outcome (repeatable)",
    )
    simulate.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help="also write the run as a replayable JSONL event log",
    )
    simulate.add_argument(
        "--case",
        default=None,
        metavar="NAME",
        help="case id used in the recorded log (default: the workload name)",
    )
    simulate.add_argument(
        "--cases",
        type=int,
        default=1,
        metavar="N",
        help="simulate N cases enumerating every guard-outcome combination; "
        "with N > 1 durations and latencies are jittered per case "
        "(straggler profile), producing a log dense enough for "
        "dependency discovery",
    )
    simulate.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="random seed for jitter and perturbation (default 0)",
    )
    simulate.add_argument(
        "--perturb",
        default=None,
        metavar="KIND",
        choices=sorted(_PERTURBATION_KINDS),
        help="inject one defect of this kind into a --perturb-rate "
        "fraction of recorded cases (see dscweaver replay)",
    )
    simulate.add_argument(
        "--perturb-rate",
        type=float,
        default=0.1,
        metavar="R",
        help="fraction of cases to perturb when --perturb is given "
        "(default 0.1)",
    )
    add_obs_flags(simulate)
    dot = add("dot", "export a graph as Graphviz DOT")
    dot.add_argument(
        "--what",
        default="minimal",
        choices=["dependencies", "merged", "translated", "minimal", "petri", "races"],
    )
    dot.add_argument("--output", default=None, help="file path (default stdout)")
    uml = subparsers.add_parser(
        "uml", help="extract dependencies from a UML activity diagram XML file"
    )
    uml.add_argument("file", help="path to the activity-diagram XML")

    lint = subparsers.add_parser(
        "lint", help="run the static analyzer (races, protocol, redundancy)"
    )
    lint.add_argument(
        "workload",
        nargs="?",
        default="purchasing",
        choices=["purchasing", "deployment", "loan", "travel", "insurance", "orders"],
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"]
    )
    lint.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODES",
        help="only run these rule codes or prefixes, comma-separated "
        "(repeatable); e.g. --select SYNC001,SVC",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODES",
        help="skip these rule codes or prefixes (repeatable)",
    )
    lint.add_argument(
        "--fail-on",
        default="error",
        choices=["info", "warning", "error"],
        help="exit 1 when any finding is at or above this severity",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write all current findings to a baseline file and exit 0",
    )
    lint.add_argument(
        "--constructs",
        action="store_true",
        help="also check the workload's construct tree for over-/under-"
        "specification (purchasing only)",
    )

    def add_conformance(name: str, help_text: str) -> argparse.ArgumentParser:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "workload",
            nargs="?",
            default="purchasing",
            choices=["purchasing", "deployment", "loan", "travel", "insurance", "orders"],
        )
        sub.add_argument(
            "--set",
            default="minimal",
            choices=["minimal", "full"],
            help="constraint set to monitor: the minimized set (default) or "
            "the full translated ASC",
        )
        sub.add_argument(
            "--fail-on",
            default="warning",
            choices=["info", "warning", "error"],
            help="exit 1 when any finding is at or above this severity",
        )
        return sub

    replay_cmd = add_conformance(
        "replay", "replay a recorded event log against the constraint set"
    )
    replay_cmd.add_argument(
        "--log", required=True, metavar="PATH", help="event log to replay"
    )
    replay_cmd.add_argument(
        "--log-format",
        default=None,
        choices=["jsonl", "csv", "xes"],
        help="log format (default: sniffed from the file extension)",
    )
    replay_cmd.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"]
    )
    replay_cmd.add_argument(
        "--naive",
        action="store_true",
        help="use the full-scan checker instead of the compiled watcher index",
    )
    replay_cmd.add_argument(
        "--compare",
        action="store_true",
        help="also replay against the other set and require identical verdicts",
    )
    add_obs_flags(replay_cmd)
    monitor_cmd = add_conformance(
        "monitor", "check a live JSONL event stream (stdin or --log) online"
    )
    monitor_cmd.add_argument(
        "--log",
        default=None,
        metavar="PATH",
        help="read events from this JSONL file instead of stdin",
    )
    monitor_cmd.add_argument(
        "--objects",
        action="store_true",
        help="additionally track cross-case object obligations (orders "
        "workload only; OBJ00x findings): bindings come from journal "
        "admit records or event object/role attributes",
    )

    serve = add_conformance(
        "serve", "run many concurrent cases through the sharded runtime"
    )
    serve.add_argument(
        "--cases", type=int, default=1000, metavar="N",
        help="number of cases to admit (default 1000)",
    )
    serve.add_argument(
        "--shards", type=int, default=4, metavar="K",
        help="instance-store shards (default 4)",
    )
    serve.add_argument(
        "--batch", type=int, default=8, metavar="B",
        help="cases advanced per shard per scheduling round (default 8)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard worker processes; above 1 the case load is partitioned "
        "over N processes and --journal names a directory of per-worker "
        "journal segments (default 1: in-process runtime)",
    )
    serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write-ahead JSONL journal (doubles as a conformance event "
        "log); a segmented journal directory with --workers",
    )
    serve.add_argument(
        "--flush-every", type=int, default=1, metavar="N",
        help="journal group commit: flush every N records instead of "
        "per record (default 1)",
    )
    serve.add_argument(
        "--no-fast",
        action="store_true",
        help="serve on the object-walking reference evaluator instead of "
        "the mask-compiled fast path (bit-for-bit identical results)",
    )
    serve.add_argument(
        "--crash-after", type=int, default=None, metavar="N",
        help="fault injection: simulate a crash after N journal records "
        "(exit code 3)",
    )
    serve.add_argument(
        "--recover",
        action="store_true",
        help="recover from --journal: adopt completed cases, resume "
        "in-flight ones, resubmit the rest",
    )
    serve.add_argument(
        "--naive",
        action="store_true",
        help="use full-scan constraint evaluation instead of the "
        "per-activity index",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=None, metavar="N",
        help="admission control: bound concurrently executing cases",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="bound the admission waiting queue; overflow is rejected (RT002)",
    )
    serve.add_argument(
        "--failure-rate", type=float, default=0.0, metavar="P",
        help="per-attempt service loss probability (default 0: lossless)",
    )
    serve.add_argument(
        "--retry-timeout", type=float, default=2.0, metavar="T",
        help="virtual time units before a lost attempt is retried (default 2)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="delivery attempts before a case fails with RT001 (default 3)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="seed of the deterministic service-loss model (default 0)",
    )
    serve.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="run summary format (default text)",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="pre-flight gate: symbolically verify deadlock-freedom before "
        "admitting any case (exit 2 when refuted)",
    )
    serve.add_argument(
        "--objects",
        action="store_true",
        help="serve the orders workload object-centrically: --cases is a "
        "total-case budget split into cases // (fan_out + 1) order "
        "objects, each fanning out into 1 + fan_out cross-case-"
        "synchronized cases (orders workload only)",
    )
    serve.add_argument(
        "--fan-out", type=int, default=10, metavar="N",
        help="line items declared per order with --objects (default 10)",
    )
    serve.add_argument(
        "--cancel-every", type=int, default=0, metavar="K",
        help="with --objects: every K-th item fails its quality check and "
        "is dropped (still resolves the ship barrier; default 0: none)",
    )
    serve.add_argument(
        "--withhold", type=int, default=0, metavar="W",
        help="with --objects: submit W fewer items per order than "
        "declared, stranding the ship barrier (RT006; default 0)",
    )
    serve.add_argument(
        "--random-shard",
        action="store_true",
        help="with --objects: place cases by case id instead of "
        "co-sharding by object key (the baseline the benchmark compares "
        "against)",
    )
    serve.add_argument(
        "--redeploy-after", type=int, default=None, metavar="N",
        help="hot-swap to the edited constraint set (--to) once N cases "
        "have completed (per worker with --workers); requires --journal",
    )
    serve.add_argument(
        "--to", default=None, metavar="EDITS.json",
        help="constraint edit batch for --redeploy-after: "
        '{"add": [{"source", "target", "condition"?}], "remove": [...]}',
    )
    serve.add_argument(
        "--strategy", default="upgrade", choices=["drain", "upgrade", "reject"],
        help="migration strategy at the swap barrier: drain everything on "
        "the old version, upgrade what replays cleanly (default), or "
        "reject whatever cannot upgrade",
    )
    add_obs_flags(serve)

    deploy_cmd = subparsers.add_parser(
        "deploy",
        help="plan/apply a zero-downtime constraint hot swap: incremental "
        "re-minimization, strand-gate pre-flight, live case migration",
    )
    deploy_cmd.add_argument(
        "workload",
        nargs="?",
        default="purchasing",
        choices=["purchasing", "deployment", "loan", "travel", "insurance", "orders"],
    )
    deploy_cmd.add_argument(
        "--to", required=True, metavar="EDITS.json",
        help="constraint edit batch to deploy: "
        '{"add": [{"source", "target", "condition"?}], "remove": [...]}',
    )
    deploy_cmd.add_argument(
        "--from", dest="journal", default=None, metavar="JOURNAL",
        help="classify and migrate the in-flight cases of this WAL journal "
        "(omit for a pure pre-flight of the edit batch)",
    )
    deploy_cmd.add_argument(
        "--strategy", default="upgrade", choices=["drain", "upgrade", "reject"],
        help="migration strategy (default upgrade)",
    )
    deploy_cmd.add_argument(
        "--dry-run",
        action="store_true",
        help="plan the migration but apply nothing (no journal writes)",
    )
    deploy_cmd.add_argument(
        "--cold",
        action="store_true",
        help="re-minimize from scratch instead of the incremental rebase "
        "(the timing baseline; identical result)",
    )
    deploy_cmd.add_argument(
        "--state-limit", type=int, default=200_000, metavar="N",
        help="strand-gate exploration bound (default 200000)",
    )
    deploy_cmd.add_argument(
        "--fail-on",
        default="error",
        choices=["info", "warning", "error"],
        help="exit 1 when any DEP finding is at or above this severity",
    )
    deploy_cmd.add_argument(
        "--format", default="text", choices=["text", "json"],
    )
    add_obs_flags(deploy_cmd)

    verify_cmd = subparsers.add_parser(
        "verify",
        help="symbolically verify the constraint program (deadlock-freedom, "
        "dead activities, unreachable branches, inert constraints)",
    )
    verify_cmd.add_argument(
        "workload",
        nargs="?",
        default="purchasing",
        choices=["purchasing", "deployment", "loan", "travel", "insurance", "orders"],
    )
    verify_cmd.add_argument(
        "--set",
        default="minimal",
        choices=["minimal", "full"],
        help="constraint set to verify (default: the minimized set)",
    )
    verify_cmd.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"]
    )
    verify_cmd.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODES",
        help="rule codes or prefixes to report (default VER)",
    )
    verify_cmd.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODES",
        help="rule codes or prefixes to skip (repeatable)",
    )
    verify_cmd.add_argument(
        "--fail-on",
        default="error",
        choices=["info", "warning", "error"],
        help="exit 1 when any finding is at or above this severity",
    )
    verify_cmd.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    verify_cmd.add_argument(
        "--state-limit",
        type=int,
        default=200_000,
        metavar="N",
        help="abort exploration past N states (default 200000)",
    )
    add_obs_flags(verify_cmd)

    discover_cmd = subparsers.add_parser(
        "discover",
        help="mine synchronization dependencies from an event log "
        "(JSONL/CSV/XES or a runtime WAL journal)",
    )
    discover_cmd.add_argument(
        "--log",
        required=True,
        metavar="PATH",
        help="event log to mine (e.g. from dscweaver simulate --record "
        "or a dscweaver serve --journal file)",
    )
    discover_cmd.add_argument(
        "--format",
        default=None,
        choices=["jsonl", "csv", "xes", "journal"],
        help="log format (default: sniffed from extension and content)",
    )
    discover_cmd.add_argument(
        "--min-support",
        type=int,
        default=5,
        metavar="N",
        help="minimum supporting cases per candidate (default 5)",
    )
    discover_cmd.add_argument(
        "--min-confidence",
        type=float,
        default=0.95,
        metavar="C",
        help="minimum agreeing fraction of the evidence (default 0.95)",
    )
    discover_cmd.add_argument(
        "--noise",
        type=float,
        default=0.0,
        metavar="R",
        help="tolerated contradiction rate per guard outcome (default 0.0)",
    )
    discover_cmd.add_argument(
        "--reference",
        default=None,
        choices=["purchasing", "deployment", "loan", "travel", "insurance", "orders"],
        help="score the mined set against this workload's declared "
        "dependencies (entailment-level precision/recall, transitive "
        "equivalence, end-to-end verification; divergences are DIS005)",
    )
    discover_cmd.add_argument(
        "--no-verify",
        action="store_true",
        help="with --reference, skip symbolic verification of the "
        "rediscovered minimal program",
    )
    discover_cmd.add_argument(
        "--emit-dscl",
        default=None,
        metavar="PATH",
        help="write the mined dependency set as a DSCL program",
    )
    discover_cmd.add_argument(
        "--show-candidates",
        action="store_true",
        help="list every scored candidate in the text report",
    )
    discover_cmd.add_argument(
        "--report-format", default="text", choices=["text", "json", "sarif"]
    )
    discover_cmd.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODES",
        help="rule codes or prefixes to report (default DIS)",
    )
    discover_cmd.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODES",
        help="rule codes or prefixes to skip (repeatable)",
    )
    discover_cmd.add_argument(
        "--fail-on",
        default="warning",
        choices=["info", "warning", "error"],
        help="exit 1 when any finding is at or above this severity",
    )
    discover_cmd.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    add_obs_flags(discover_cmd)

    petri_cmd = subparsers.add_parser(
        "petri",
        help="translate the constraint set to a Petri net and report "
        "soundness, terminal markings and witness paths",
    )
    petri_cmd.add_argument(
        "workload",
        nargs="?",
        default="purchasing",
        choices=["purchasing", "deployment", "loan", "travel", "insurance", "orders"],
    )
    petri_cmd.add_argument(
        "--set",
        default="minimal",
        choices=["minimal", "full"],
        help="constraint set to translate (default: the minimized set)",
    )
    petri_cmd.add_argument(
        "--format", default="text", choices=["text", "json"]
    )
    petri_cmd.add_argument(
        "--state-limit",
        type=int,
        default=200_000,
        metavar="N",
        help="abort reachability past N markings (default 200000)",
    )

    trace_cmd = subparsers.add_parser(
        "trace",
        help="summarize a Chrome trace JSON file (top spans by self time)",
    )
    trace_cmd.add_argument(
        "file", help="trace file written by --trace-out (Chrome trace_event JSON)"
    )
    trace_cmd.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="number of span names to list (default 15)",
    )

    arguments = parser.parse_args(argv)

    if arguments.command == "lint":
        return _run_lint_command(arguments)
    if arguments.command == "replay":
        return _run_replay_command(arguments)
    if arguments.command == "monitor":
        return _run_monitor_command(arguments)
    if arguments.command == "serve":
        return _run_serve_command(arguments)
    if arguments.command == "deploy":
        return _run_deploy_command(arguments)
    if arguments.command == "verify":
        return _run_verify_command(arguments)
    if arguments.command == "discover":
        return _run_discover_command(arguments)
    if arguments.command == "petri":
        return _run_petri_command(arguments)
    if arguments.command == "trace":
        return _run_trace_command(arguments)

    if arguments.command == "uml":
        from repro.uml.extract import diagram_dependencies
        from repro.uml.xmlio import diagram_from_xml

        with open(arguments.file, "r", encoding="utf-8") as handle:
            diagram = diagram_from_xml(handle.read())
        print(diagram_dependencies(diagram).as_table())
        return 0

    if arguments.command == "table1":
        _process, dependencies = _load_workload(arguments.workload)
        print(dependencies.as_table())
        return 0

    if arguments.command == "minimize":
        return _run_minimize_command(arguments)

    process, result = _weave(arguments.workload)

    if arguments.command == "weave":
        print(result.report.as_table())
    elif arguments.command == "minimal":
        for constraint in sorted(result.minimal.constraints):
            print(constraint)
    elif arguments.command == "dscl":
        from repro.dscl.printer import to_text

        print(to_text(result.program), end="")
    elif arguments.command == "bpel":
        if arguments.structured:
            from repro.bpel.structure import emit_structured_bpel

            xml = emit_structured_bpel(process, result.minimal)
        else:
            xml = result.to_bpel()
        if arguments.output:
            with open(arguments.output, "w", encoding="utf-8") as handle:
                handle.write(xml + "\n")
            print("wrote %s" % arguments.output)
        else:
            print(xml)
    elif arguments.command == "validate":
        from repro.petri.soundness import check_soundness
        from repro.validation.conflicts import find_conflicts

        conflicts = find_conflicts(result.asc, exclusives=result.exclusives)
        print("conflicts: %s" % conflicts.summary())
        net, _marking = result.to_petri_net()
        report = check_soundness(net)
        print(
            "workflow net: %s | sound: %s | reachable markings: %d"
            % (report.is_workflow_net, report.is_sound, report.reachable_markings)
        )
        for problem in report.problems:
            print("  problem:", problem)
        return 0 if report.is_sound and not conflicts.has_conflicts else 1
    elif arguments.command == "dot":
        from repro.export.dot import (
            constraint_set_to_dot,
            dependency_set_to_dot,
            petri_net_to_dot,
        )

        if arguments.what == "dependencies":
            text = dependency_set_to_dot(
                result.dependencies,
                name=arguments.workload,
                ports=process.port_names(),
            )
        elif arguments.what == "merged":
            text = constraint_set_to_dot(result.merged, name=arguments.workload)
        elif arguments.what == "translated":
            text = constraint_set_to_dot(
                result.asc,
                name=arguments.workload,
                highlight=result.translation.bridged,
            )
        elif arguments.what == "petri":
            net, _marking = result.to_petri_net()
            text = petri_net_to_dot(net, name=arguments.workload)
        elif arguments.what == "races":
            from repro.lint import find_races

            races = find_races(
                result.asc, process=process, exclusives=result.exclusives
            )
            text = constraint_set_to_dot(
                result.asc, name=arguments.workload, races=races
            )
        else:
            text = constraint_set_to_dot(result.minimal, name=arguments.workload)
        if arguments.output:
            with open(arguments.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print("wrote %s" % arguments.output)
        else:
            print(text, end="")
    elif arguments.command == "simulate":
        if arguments.cases > 1:
            from repro.discover.evaluate import simulate_log

            log = simulate_log(
                process,
                result,
                cases=arguments.cases,
                seed=arguments.seed,
                case_prefix=arguments.case or "case",
            )
            print(
                "simulated %d case(s) of %r: %d event(s), every "
                "guard-outcome combination enumerated, straggler jitter on"
                % (arguments.cases, arguments.workload, len(log))
            )
            log = _maybe_perturb(log, arguments, result)
            if arguments.record:
                log.save_jsonl(arguments.record)
                print(
                    "recorded %d event(s) across %d case(s) to %s"
                    % (len(log), arguments.cases, arguments.record)
                )
            return 0

        from repro.scheduler.engine import ConstraintScheduler
        from repro.scheduler.metrics import max_concurrency

        obs = _make_obs(arguments)
        scheduler = ConstraintScheduler(
            process,
            result.minimal,
            fine_grained=result.fine_grained,
            exclusives=result.exclusives,
            obs=obs,
        )
        run = scheduler.run(outcomes=_parse_outcomes(arguments.outcome))
        _flush_obs(obs, arguments)
        print(
            "makespan=%.1f  constraint checks=%d  peak concurrency=%d"
            % (run.makespan, run.constraint_checks, max_concurrency(run.trace))
        )
        for record in run.trace.executed():
            outcome = " -> %s" % record.outcome if record.outcome else ""
            print(
                "  %6.1f .. %6.1f  %s%s"
                % (record.start, record.finish, record.name, outcome)
            )
        skipped = run.trace.skipped()
        if skipped:
            print("  skipped: %s" % ", ".join(skipped))
        if arguments.record:
            from repro.conformance import EventLog, events_from_trace

            case = arguments.case or arguments.workload
            log = EventLog(events_from_trace(run.trace, case))
            log = _maybe_perturb(log, arguments, result)
            log.save_jsonl(arguments.record)
            print(
                "recorded %d event(s) for case %r to %s"
                % (len(log), case, arguments.record)
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
