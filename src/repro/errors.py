"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """The process model is malformed (unknown activity, duplicate name...)."""


class DependencyError(ReproError):
    """A dependency refers to unknown endpoints or has an invalid shape."""


class DSCLSyntaxError(ReproError):
    """The DSCL source text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = "line %d, column %d: %s" % (line, column, message)
        super().__init__(message)


class DSCLSemanticError(ReproError):
    """The DSCL program parsed but is semantically invalid."""


class ConstraintError(ReproError):
    """A synchronization constraint set is malformed or inconsistent."""


class CycleError(ConstraintError):
    """A synchronization cycle was detected (infinite synchronization
    sequence, Section 4.1 of the paper)."""

    def __init__(self, cycle: list[str]) -> None:
        self.cycle = list(cycle)
        super().__init__(
            "synchronization cycle detected: %s" % " -> ".join(self.cycle + self.cycle[:1])
        )


class TranslationError(ReproError):
    """Service dependency translation failed (Section 4.3)."""


class PetriNetError(ReproError):
    """A Petri net is structurally invalid or an operation is illegal."""


class NotEnabledError(PetriNetError):
    """A transition was fired without being enabled."""


class SoundnessError(PetriNetError):
    """A workflow net failed a soundness check."""


class BPELError(ReproError):
    """BPEL emission or parsing failed."""


class WSCLError(ReproError):
    """A WSCL conversation document is invalid."""


class SchedulingError(ReproError):
    """The scheduling engine reached an illegal state."""


class ProtocolViolation(SchedulingError):
    """A simulated service observed an out-of-order interaction.

    This is the runtime symptom that a *service* dependency was violated,
    e.g. the state-aware Purchase service receiving a shipping invoice
    before the corresponding purchase order (Section 2).
    """


class DeadlockError(SchedulingError):
    """Execution stalled: activities remain but none can be scheduled."""


class ValidationError(ReproError):
    """Static validation of a specification failed."""
