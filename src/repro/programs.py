"""Canonical ``program_from_weave``: one weave result, two program targets.

PR 2 (:mod:`repro.conformance`) and PR 3 (:mod:`repro.runtime`) each grew
a ``program_from_weave`` helper with identical constraint-set selection
but different compilation targets — a :class:`~repro.conformance.monitor.
MonitorProgram` for replay/monitoring and a :class:`~repro.runtime.
program.ConstraintProgram` for multi-case serving.  This module is their
single home; both packages re-export the *same function object*, so
``repro.conformance.program_from_weave is repro.runtime.program_from_weave``
(pinned by a test).

``target`` picks the compilation: ``"monitor"`` (the historical default
of both import paths that kept working unchanged) or ``"runtime"``.
"""

from __future__ import annotations

from typing import Any, Optional


def select_constraint_set(result: Any, which: str) -> Any:
    """``"minimal"`` (the optimized set) or ``"full"`` (the translated ASC)."""
    if which == "minimal":
        return result.minimal
    if which == "full":
        return result.asc
    raise ValueError("which must be 'minimal' or 'full', got %r" % which)


def program_from_weave(
    result: Any,
    which: str = "minimal",
    dependencies: Optional[Any] = None,
    target: str = "monitor",
) -> Any:
    """Compile a program from a :class:`~repro.core.pipeline.WeaveResult`.

    ``which`` selects the constraint set: ``"minimal"`` (the optimized
    set, default) or ``"full"`` (the translated pre-minimization ``ASC``).
    The paper's equivalence claim holds for both targets: replaying a log
    yields identical per-case verdicts, and serving a case load yields
    identical per-case final states — at lower cost for the minimal set.

    ``target="monitor"`` compiles a
    :class:`~repro.conformance.monitor.MonitorProgram` (``dependencies``
    optionally overrides the weave's dependency set for categorization);
    ``target="runtime"`` compiles a
    :class:`~repro.runtime.program.ConstraintProgram` for serving.
    """
    sc = select_constraint_set(result, which)
    if target == "monitor":
        from repro.conformance.monitor import categorize_constraints, compile_monitor

        categories = categorize_constraints(
            sc,
            dependencies=(
                dependencies if dependencies is not None else result.dependencies
            ),
            bridged=result.translation.bridged,
        )
        return compile_monitor(
            sc,
            fine_grained=result.fine_grained,
            exclusives=result.exclusives,
            categories=categories,
        )
    if target == "runtime":
        from repro.runtime.program import compile_program

        return compile_program(
            result.process,
            sc,
            fine_grained=result.fine_grained,
            exclusives=result.exclusives,
        )
    raise ValueError("target must be 'monitor' or 'runtime', got %r" % target)
