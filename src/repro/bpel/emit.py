"""Emission of BPEL-style XML from a synchronization constraint set.

The generated document is one ``<flow>`` with:

* one ``<link>`` per constraint, named ``l<n>`` deterministically;
* one activity element per activity (``receive`` / ``invoke`` / ``reply`` /
  ``assign``), carrying ``<source>``/``<target>`` link references;
* ``transitionCondition`` on the sources of conditional constraints
  (``bpws:getVariableData('<guard>_outcome') = '<value>'``);
* ``suppressJoinFailure="yes"`` so skipped branches dead-path through
  joins, matching the engine and the Petri translation.

Guard activities are emitted as ``<assign>`` with a non-standard
``outcomes`` attribute recording their domain (the parser uses it).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict

from repro.core.constraints import SynchronizationConstraintSet
from repro.errors import BPELError
from repro.model.activity import ActivityKind
from repro.model.process import BusinessProcess

BPEL_NAMESPACE = "http://schemas.xmlsoap.org/ws/2003/03/business-process/"


def _element_name(kind: ActivityKind) -> str:
    return {
        ActivityKind.RECEIVE: "receive",
        ActivityKind.INVOKE: "invoke",
        ActivityKind.REPLY: "reply",
        ActivityKind.ASSIGN: "assign",
        ActivityKind.GUARD: "assign",
        ActivityKind.COMPUTE: "assign",
        ActivityKind.COORDINATOR: "empty",
    }[kind]


def emit_bpel(
    process: BusinessProcess, sc: SynchronizationConstraintSet
) -> str:
    """Render ``sc`` (an activity set) as BPEL-style XML text."""
    if not sc.is_activity_set:
        raise BPELError(
            "cannot emit BPEL while constraints reference external ports; "
            "run service dependency translation first"
        )

    root = ET.Element(
        "process",
        {
            "name": process.name,
            "xmlns": BPEL_NAMESPACE,
            "suppressJoinFailure": "yes",
        },
    )
    variables = ET.SubElement(root, "variables")
    for variable in process.variables:
        ET.SubElement(
            variables,
            "variable",
            {"name": variable.name, "messageType": variable.type_name},
        )

    flow = ET.SubElement(root, "flow")
    links = ET.SubElement(flow, "links")
    link_names: Dict[object, str] = {}
    for index, constraint in enumerate(sc.constraints):
        name = "l%d" % index
        link_names[constraint] = name
        ET.SubElement(links, "link", {"name": name})

    for activity_name in sc.activities:
        if process.has_activity(activity_name):
            activity = process.activity(activity_name)
            attributes = {"name": activity.name}
            if activity.port is not None:
                attributes["partnerLink"] = activity.port.service
                attributes["portType"] = activity.port.port
            if activity.kind is ActivityKind.RECEIVE and activity.port is None:
                attributes["partnerLink"] = "client"
            if activity.kind is ActivityKind.REPLY:
                attributes["partnerLink"] = "client"
            if activity.reads:
                attributes["inputVariable"] = ",".join(sorted(activity.reads))
            if activity.writes:
                attributes["variable"] = ",".join(sorted(activity.writes))
            if activity.is_guard:
                attributes["outcomes"] = ",".join(sorted(activity.outcomes))
            guard = sc.guard_of(activity_name)
            if guard:
                # Execution-guard dialect attribute: records which branch
                # outcomes this activity's execution depends on, so that
                # dead-path elimination survives the round trip even when
                # minimization removed the conditional link itself.
                attributes["guards"] = ",".join(
                    "%s=%s" % (cond.guard, cond.value) for cond in sorted(guard)
                )
            element = ET.SubElement(flow, _element_name(activity.kind), attributes)
        else:
            # Synthetic coordinator from HappenTogether desugaring.
            element = ET.SubElement(flow, "empty", {"name": activity_name})

        for constraint in sc.constraints:
            if constraint.source == activity_name:
                source_attributes = {"linkName": link_names[constraint]}
                if constraint.condition is not None:
                    source_attributes["transitionCondition"] = (
                        "bpws:getVariableData('%s_outcome') = '%s'"
                        % (constraint.source, constraint.condition)
                    )
                ET.SubElement(element, "source", source_attributes)
            if constraint.target == activity_name:
                ET.SubElement(
                    element, "target", {"linkName": link_names[constraint]}
                )

    ET.indent(root)
    return ET.tostring(root, encoding="unicode")
