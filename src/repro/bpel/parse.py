"""Parsing the supported BPEL subsets.

Two entry points:

* :func:`parse_bpel_flow` — the inverse of :func:`repro.bpel.emit.emit_bpel`:
  recovers the synchronization constraint set from a flat flow/link
  document (activities, links, transition conditions, guard outcome
  domains).
* :func:`parse_structured_bpel` — parses *structured* BPEL
  (``sequence`` / ``flow`` with links / ``switch``) into a
  :mod:`repro.constructs` tree, the entry route for legacy imperative
  processes.  Switch elements use this library's dialect: a ``guard``
  attribute naming the guard activity and an ``outcome`` attribute per
  ``case``.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Tuple

from repro.analysis.conditions import Cond, ConditionDomains
from repro.constructs.ast import Act, Construct, Flow, Link, Sequence, Switch
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.errors import BPELError

_CONDITION_PATTERN = re.compile(
    r"bpws:getVariableData\('(?P<guard>[^']+)_outcome'\)\s*=\s*'(?P<value>[^']+)'"
)

_ACTIVITY_TAGS = {"receive", "invoke", "reply", "assign", "empty"}


def _local(tag: str) -> str:
    """Strip a namespace prefix from an element tag."""
    return tag.rsplit("}", 1)[-1]


def parse_bpel_flow(text: str) -> SynchronizationConstraintSet:
    """Recover the constraint set from an emitted flow/link document."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise BPELError("malformed BPEL XML: %s" % error) from error
    if _local(root.tag) != "process":
        raise BPELError("expected <process> root, found <%s>" % _local(root.tag))

    flow = None
    for child in root:
        if _local(child.tag) == "flow":
            flow = child
            break
    if flow is None:
        raise BPELError("document contains no <flow>")

    declared_links: List[str] = []
    activities: List[str] = []
    # link -> (source activity, condition) / target activity
    link_sources: Dict[str, Tuple[str, Optional[str]]] = {}
    link_targets: Dict[str, str] = {}
    guard_domains: Dict[str, List[str]] = {}
    guard_map: Dict[str, frozenset] = {}

    for element in flow:
        tag = _local(element.tag)
        if tag == "links":
            for link in element:
                name = link.get("name")
                if not name:
                    raise BPELError("<link> without a name")
                declared_links.append(name)
            continue
        if tag not in _ACTIVITY_TAGS:
            raise BPELError("unsupported element <%s> in flow" % tag)
        activity_name = element.get("name")
        if not activity_name:
            raise BPELError("<%s> without a name" % tag)
        activities.append(activity_name)
        outcomes = element.get("outcomes")
        if outcomes:
            guard_domains[activity_name] = outcomes.split(",")
        guards_attribute = element.get("guards")
        if guards_attribute:
            conditions = set()
            for pair in guards_attribute.split(","):
                if "=" not in pair:
                    raise BPELError("malformed guards attribute %r" % guards_attribute)
                guard, value = pair.split("=", 1)
                conditions.add(Cond(guard, value))
            guard_map[activity_name] = frozenset(conditions)
        for reference in element:
            reference_tag = _local(reference.tag)
            link_name = reference.get("linkName") or ""
            if reference_tag == "source":
                condition_text = reference.get("transitionCondition")
                condition: Optional[str] = None
                if condition_text:
                    match = _CONDITION_PATTERN.match(condition_text)
                    if not match:
                        raise BPELError(
                            "unsupported transitionCondition %r" % condition_text
                        )
                    condition = match.group("value")
                link_sources[link_name] = (activity_name, condition)
            elif reference_tag == "target":
                link_targets[link_name] = activity_name

    constraints: List[Constraint] = []
    for link_name in declared_links:
        if link_name not in link_sources or link_name not in link_targets:
            raise BPELError("link %r lacks a source or a target" % link_name)
        source, condition = link_sources[link_name]
        constraints.append(Constraint(source, link_targets[link_name], condition))

    domains = ConditionDomains()
    for guard, outcomes in guard_domains.items():
        domains.declare(guard, outcomes)

    sc = SynchronizationConstraintSet(
        activities=activities, constraints=constraints, domains=domains
    )
    if not guard_map:
        # Legacy documents without the guards dialect attribute: fall back
        # to the guards implied by the conditional links still present.
        guard_map = sc.derive_guards_from_constraints()
    return sc.with_guards(guard_map)


def parse_structured_bpel(text: str) -> Construct:
    """Parse structured BPEL into a construct tree.

    Supported elements: ``process`` (single child), ``sequence``, ``flow``
    (with ``links``; activity ``source``/``target`` children become
    :class:`Link` objects), ``switch`` (dialect: ``guard`` attribute,
    ``case outcome="..."`` children), and the activity elements
    ``receive``/``invoke``/``reply``/``assign``/``empty``.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise BPELError("malformed BPEL XML: %s" % error) from error

    def convert(element: ET.Element) -> Construct:
        tag = _local(element.tag)
        if tag == "process":
            children = [
                child for child in element if _local(child.tag) != "variables"
            ]
            if len(children) != 1:
                raise BPELError("<process> must contain exactly one root construct")
            return convert(children[0])
        if tag == "sequence":
            return Sequence(*[convert(child) for child in element])
        if tag == "flow":
            links: List[Link] = []
            # Collect link endpoints from nested activity source/target refs.
            endpoints: Dict[str, Dict[str, str]] = {}
            children: List[ET.Element] = []
            for child in element:
                if _local(child.tag) == "links":
                    continue
                children.append(child)
            for descendant in element.iter():
                descendant_tag = _local(descendant.tag)
                if descendant_tag in ("source", "target"):
                    link_name = descendant.get("linkName") or ""
                    owner = _owner_of(element, descendant)
                    endpoints.setdefault(link_name, {})[descendant_tag] = owner
            for link_name, sides in endpoints.items():
                if "source" in sides and "target" in sides:
                    links.append(Link(sides["source"], sides["target"]))
            return Flow(*[convert(child) for child in children], links=links)
        if tag == "switch":
            guard = element.get("guard")
            if not guard:
                raise BPELError(
                    "<switch> requires a guard attribute in this dialect"
                )
            cases: Dict[str, Construct] = {}
            otherwise: Optional[Construct] = None
            for child in element:
                child_tag = _local(child.tag)
                if child_tag == "case":
                    outcome = child.get("outcome")
                    if not outcome:
                        raise BPELError("<case> requires an outcome attribute")
                    body = [convert(grandchild) for grandchild in child]
                    cases[outcome] = body[0] if len(body) == 1 else Sequence(*body)
                elif child_tag == "otherwise":
                    body = [convert(grandchild) for grandchild in child]
                    otherwise = body[0] if len(body) == 1 else Sequence(*body)
                elif child_tag in ("source", "target"):
                    continue  # flow-link anchors on the switch itself
                else:
                    raise BPELError("unexpected <%s> inside <switch>" % child_tag)
            return Switch(guard, cases=cases, otherwise=otherwise)
        if tag in _ACTIVITY_TAGS:
            name = element.get("name")
            if not name:
                raise BPELError("<%s> without a name" % tag)
            return Act(name)
        raise BPELError("unsupported element <%s>" % tag)

    def _owner_of(flow_element: ET.Element, reference: ET.Element) -> str:
        owner_tags = _ACTIVITY_TAGS | {"switch"}
        for descendant in flow_element.iter():
            if _local(descendant.tag) in owner_tags and reference in list(
                descendant
            ):
                return descendant.get("name") or ""
        raise BPELError("could not locate the activity owning a link reference")

    return convert(root)
