"""Structure recovery: minimal constraint sets back into nested constructs.

The flat ``<flow>``/``<link>`` emission (:mod:`repro.bpel.emit`) is already
executable BPEL, but many engines and most humans prefer *structured*
processes.  This module recovers a construct tree from an activity
constraint set:

1. **Switch regions.**  Every guard's directly-guarded activities form the
   cases of a :class:`~repro.constructs.ast.Switch`; nested guards nest.
   The region collapses to one *unit* in a quotient DAG.
2. **Series cut.**  A unit comparable (by reachability) to *every* other
   unit linearizes the graph; consecutive such units become children of a
   :class:`~repro.constructs.ast.Sequence`, with the units between two cut
   points decomposed recursively.
3. **Parallel cut.**  Weakly-connected components become children of a
   :class:`~repro.constructs.ast.Flow`.
4. **Link fallback.**  A component that neither cut can split becomes a
   flat flow whose :class:`~repro.constructs.ast.Link` set is exactly the
   residual constraints — always expressible, never over-specifying.

Series cuts may *over-specify* (a sequence orders everything in the
earlier part before everything in the later part, which can exceed what
the constraints require — the very phenomenon the paper criticizes).
:func:`recover_structure` therefore verifies the result against the input
set and, in ``exact`` mode (default), retries with series cuts disabled so
the recovered tree implies precisely the required orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence as Seq, Set, Tuple

from repro.analysis.graphs import DirectedGraph, transitive_closure
from repro.constructs.analysis import implied_orderings
from repro.constructs.ast import Act, Construct, Flow, Link, Sequence, Switch
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.errors import BPELError


class StructureError(BPELError):
    """The constraint set cannot be expressed as a construct tree (e.g. a
    conditional constraint targeting an activity outside the guard's
    region)."""


# --------------------------------------------------------------------------
# Units: the quotient of the activity set by switch regions.
# --------------------------------------------------------------------------


@dataclass
class _Unit:
    """One quotient node: a plain activity or a whole switch region."""

    representative: str
    #: Activities contained (the guard itself included for switch units).
    members: Set[str] = field(default_factory=set)
    guard: Optional[str] = None  # set for switch units

    @property
    def is_switch(self) -> bool:
        return self.guard is not None


def _direct_guard(sc: SynchronizationConstraintSet, activity: str) -> Optional[Tuple[str, str]]:
    conditions = sc.guard_of(activity)
    if not conditions:
        return None
    if len(conditions) > 1:
        raise StructureError(
            "activity %r has multiple direct guards; structure recovery "
            "requires nested (single-guard) conditionals" % activity
        )
    condition = next(iter(conditions))
    return condition.guard, condition.value


def _build_units(
    sc: SynchronizationConstraintSet, activities: Set[str]
) -> Dict[str, _Unit]:
    """Partition ``activities`` into quotient units, keyed by representative.

    The guard climb stops at the boundary of ``activities``: inside a
    switch case, the members' own guard lives outside the case, so each
    member roots its own (possibly nested-switch) unit.
    """
    units: Dict[str, _Unit] = {}

    def local_root(activity: str) -> str:
        """Climb direct guards while they stay inside ``activities``."""
        current = activity
        seen = set()
        while True:
            if current in seen:
                raise StructureError("guard cycle at %r" % current)
            seen.add(current)
            guard_info = _direct_guard(sc, current)
            if guard_info is None or guard_info[0] not in activities:
                return current
            current = guard_info[0]

    for activity in sorted(activities):
        root = local_root(activity)
        unit = units.get(root)
        if unit is None:
            unit = _Unit(representative=root)
            units[root] = unit
        unit.members.add(activity)

    for unit in units.values():
        if unit.members != {unit.representative}:
            unit.guard = unit.representative
    return units


# --------------------------------------------------------------------------
# Expansion of a switch unit into a Switch construct.
# --------------------------------------------------------------------------


def _expand_unit(
    sc: SynchronizationConstraintSet, unit: _Unit, allow_sequence: bool
) -> Construct:
    if not unit.is_switch:
        return Act(unit.representative)

    guard = unit.representative
    # Direct dependents by outcome.
    cases: Dict[str, List[str]] = {}
    for member in sorted(unit.members - {guard}):
        guard_info = _direct_guard(sc, member)
        assert guard_info is not None
        owner, outcome = guard_info
        if owner == guard:
            cases.setdefault(outcome, []).append(member)
    if not cases:
        return Act(guard)

    # Constraints between members of *different* cases are dropped here on
    # purpose: the two activities can never co-execute, so the ordering is
    # vacuous at runtime (and inexpressible in a switch).
    case_constructs: Dict[str, Construct] = {}
    for outcome, roots in cases.items():
        # The case contains the direct members plus everything nested under
        # them (transitively guarded by members).
        contained: Set[str] = set()
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            if current in contained:
                continue
            contained.add(current)
            for member in unit.members:
                guard_info = _direct_guard(sc, member)
                if guard_info is not None and guard_info[0] == current:
                    frontier.append(member)
        case_constructs[outcome] = _decompose(
            sc, contained, allow_sequence=allow_sequence
        )
    return Switch(guard, cases=case_constructs)


# --------------------------------------------------------------------------
# Recursive decomposition over activities (top level) or case members.
# --------------------------------------------------------------------------


def _quotient(
    sc: SynchronizationConstraintSet, activities: Set[str]
) -> Tuple[List[_Unit], DirectedGraph, Dict[Tuple[str, str], List[Constraint]]]:
    """Units over ``activities`` plus the induced quotient DAG."""
    units = _build_units(sc, activities)
    unit_of: Dict[str, _Unit] = {}
    for unit in units.values():
        for member in unit.members:
            unit_of[member] = unit

    graph = DirectedGraph(nodes=[u.representative for u in units.values()])
    edge_constraints: Dict[Tuple[str, str], List[Constraint]] = {}
    for constraint in sc:
        if constraint.source not in activities or constraint.target not in activities:
            continue
        source_unit = unit_of[constraint.source]
        target_unit = unit_of[constraint.target]
        if source_unit is target_unit:
            continue
        if constraint.condition is not None:
            raise StructureError(
                "conditional constraint %s crosses unit boundaries; the "
                "target is not in the guard's region" % constraint
            )
        key = (source_unit.representative, target_unit.representative)
        graph.add_edge(*key)
        edge_constraints.setdefault(key, []).append(constraint)
    return list(units.values()), graph, edge_constraints


def _decompose(
    sc: SynchronizationConstraintSet,
    activities: Set[str],
    allow_sequence: bool,
) -> Construct:
    units, graph, edge_constraints = _quotient(sc, activities)
    from repro.analysis.graphs import find_cycle

    if find_cycle(graph) is not None:
        raise StructureError(
            "a guarded region is not block-structured (constraints enter "
            "and leave it); the set has no nested-construct form — use the "
            "flat flow/link emission instead"
        )
    return _decompose_units(sc, units, graph, edge_constraints, allow_sequence)


def _decompose_units(
    sc: SynchronizationConstraintSet,
    units: List[_Unit],
    graph: DirectedGraph,
    edge_constraints: Dict[Tuple[str, str], List[Constraint]],
    allow_sequence: bool,
) -> Construct:
    by_name = {unit.representative: unit for unit in units}
    names = [unit.representative for unit in units]

    if len(units) == 1:
        return _expand_unit(sc, units[0], allow_sequence)

    # Parallel cut: weakly connected components.
    components = _weak_components(graph)
    if len(components) > 1:
        children = [
            _decompose_units(
                sc,
                [by_name[name] for name in component],
                _induced(graph, component),
                {
                    key: value
                    for key, value in edge_constraints.items()
                    if key[0] in component and key[1] in component
                },
                allow_sequence,
            )
            for component in components
        ]
        return Flow(*children)

    # Series cut: units comparable with every other unit.
    if allow_sequence:
        closure = transitive_closure(graph)
        totals = [
            name
            for name in names
            if all(
                other == name or other in closure[name] or name in closure[other]
                for other in names
            )
        ]
        if totals:
            ordered_totals = [n for n in _topological(graph) if n in set(totals)]
            parts: List[Construct] = []
            consumed: Set[str] = set()
            previous_total: Optional[str] = None
            for total in ordered_totals:
                segment = [
                    name
                    for name in names
                    if name not in set(ordered_totals)
                    and name not in consumed
                    and (previous_total is None or name in closure[previous_total])
                    and total in closure[name]
                ]
                if segment:
                    parts.append(
                        _decompose_units(
                            sc,
                            [by_name[name] for name in segment],
                            _induced(graph, segment),
                            {
                                key: value
                                for key, value in edge_constraints.items()
                                if key[0] in segment and key[1] in segment
                            },
                            allow_sequence,
                        )
                    )
                    consumed.update(segment)
                parts.append(_expand_unit(sc, by_name[total], allow_sequence))
                previous_total = total
            trailing = [
                name for name in names if name not in set(ordered_totals) and name not in consumed
            ]
            if trailing:
                parts.append(
                    _decompose_units(
                        sc,
                        [by_name[name] for name in trailing],
                        _induced(graph, trailing),
                        {
                            key: value
                            for key, value in edge_constraints.items()
                            if key[0] in trailing and key[1] in trailing
                        },
                        allow_sequence,
                    )
                )
            if len(parts) > 1:
                return Sequence(*parts)

    # Link fallback: a flat flow whose links are exactly the residual
    # constraints.  No unit-level transitive reduction: a unit-level path
    # does not imply the activity-level edge it bypasses (e.g. a path to a
    # case member says nothing about an edge to the region's guard), and
    # redundant links are harmless while missing ones lose orderings.
    links: List[Link] = []
    seen_links: Set[Tuple[str, str]] = set()
    for constraints in edge_constraints.values():
        for constraint in constraints:
            key = (constraint.source, constraint.target)
            if key not in seen_links:
                seen_links.add(key)
                links.append(Link(*key))
    children = [_expand_unit(sc, unit, allow_sequence) for unit in units]
    return Flow(*children, links=links)


def _weak_components(graph: DirectedGraph) -> List[List[str]]:
    seen: Set[str] = set()
    components: List[List[str]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        component: List[str] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            component.append(current)
            stack.extend(graph.successors(current))
            stack.extend(graph.predecessors(current))
        components.append(sorted(component))
    return components


def _induced(graph: DirectedGraph, nodes: Seq[str]) -> DirectedGraph:
    node_set = set(nodes)
    induced = DirectedGraph(nodes=nodes)
    for source, target in graph.edges():
        if source in node_set and target in node_set:
            induced.add_edge(source, target)
    return induced


def _topological(graph: DirectedGraph) -> List[str]:
    from repro.analysis.graphs import topological_sort

    return topological_sort(graph)


# --------------------------------------------------------------------------
# Public API
# --------------------------------------------------------------------------


def recover_structure(
    sc: SynchronizationConstraintSet, exact: bool = True
) -> Construct:
    """Recover a construct tree from an activity constraint set.

    The result always *implies* every required ordering.  With ``exact``
    (default), a tree whose series cuts would over-specify is rebuilt with
    series cuts disabled (links carry the residual orderings), so the
    implied orderings equal the required ones precisely.
    """
    if not sc.is_activity_set:
        raise StructureError(
            "structure recovery requires an activity set; translate service "
            "dependencies first"
        )
    activities = set(sc.activities)
    if not activities:
        raise StructureError("cannot recover structure of an empty set")

    tree = _decompose(sc, activities, allow_sequence=True)
    if exact and _over_specifies(tree, sc):
        tree = _decompose(sc, activities, allow_sequence=False)
    return tree


def co_executable(sc: SynchronizationConstraintSet, first: str, second: str) -> bool:
    """Can both activities run in the same execution?

    False when their effective guards require conflicting outcomes of some
    guard activity (e.g. the two cases of one switch) — orderings between
    such activities are vacuous at runtime.
    """
    from repro.analysis.conditions import is_contradictory

    return not is_contradictory(
        sc.effective_guard(first) | sc.effective_guard(second)
    )


def runtime_required_pairs(
    sc: SynchronizationConstraintSet,
) -> Set[Tuple[str, str]]:
    """Activity pairs whose ordering the set actually enforces at runtime.

    Uses the guard-aware closure: a path through an activity that cannot
    co-execute with the endpoints enforces nothing (dead-path elimination
    lets the target proceed when the intermediate is skipped), and neither
    does a fact whose conditions contradict the endpoints' own guards.
    """
    from repro.analysis.conditions import is_contradictory
    from repro.core.closure import Semantics, closure_map

    required: Set[Tuple[str, str]] = set()
    for source, facts in closure_map(sc, Semantics.GUARD_AWARE).items():
        source_guard = sc.effective_guard(source)
        for target, annotations in facts:
            context = annotations | source_guard | sc.effective_guard(target)
            if not is_contradictory(context):
                required.add((source, target))
    return required


def _over_specifies(tree: Construct, sc: SynchronizationConstraintSet) -> bool:
    """Does the tree enforce orderings beyond what the set requires?

    Pairs of activities that can never co-execute are disregarded on both
    sides: no runtime behavior depends on them.
    """
    required = runtime_required_pairs(sc)
    implied = {
        pair for pair in implied_orderings(tree) if co_executable(sc, *pair)
    }
    return bool(implied - required)


def emit_structured_bpel(process, sc: SynchronizationConstraintSet) -> str:
    """Emit *structured* BPEL (nested sequence/flow/switch) for ``sc``.

    The output uses the same dialect
    :func:`repro.bpel.parse.parse_structured_bpel` reads (``guard``/
    ``outcome`` attributes on switches), so it round-trips back into a
    construct tree.
    """
    import xml.etree.ElementTree as ET

    from repro.bpel.emit import BPEL_NAMESPACE, _element_name
    from repro.model.activity import ActivityKind

    tree = recover_structure(sc)

    root = ET.Element(
        "process",
        {"name": process.name, "xmlns": BPEL_NAMESPACE, "suppressJoinFailure": "yes"},
    )
    variables = ET.SubElement(root, "variables")
    for variable in process.variables:
        ET.SubElement(
            variables,
            "variable",
            {"name": variable.name, "messageType": variable.type_name},
        )

    link_counter = [0]

    def emit(node: Construct, parent: ET.Element) -> None:
        if isinstance(node, Act):
            if process.has_activity(node.name):
                activity = process.activity(node.name)
                tag = _element_name(activity.kind)
            else:
                tag = "empty"
            ET.SubElement(parent, tag, {"name": node.name})
            return
        if isinstance(node, Sequence):
            element = ET.SubElement(parent, "sequence")
            for child in node.children:
                emit(child, element)
            return
        if isinstance(node, Flow):
            element = ET.SubElement(parent, "flow")
            if node.links:
                links_element = ET.SubElement(element, "links")
                link_names = {}
                for link in node.links:
                    name = "sl%d" % link_counter[0]
                    link_counter[0] += 1
                    link_names[link] = name
                    ET.SubElement(links_element, "link", {"name": name})
            for child in node.children:
                emit(child, element)
            # Attach source/target references onto the named activities.
            if node.links:
                index = {
                    descendant.get("name"): descendant
                    for descendant in element.iter()
                    if descendant.get("name")
                }
                for link in node.links:
                    name = link_names[link]
                    ET.SubElement(index[link.source], "source", {"linkName": name})
                    ET.SubElement(index[link.target], "target", {"linkName": name})
            return
        if isinstance(node, Switch):
            # `name` mirrors the guard so flow links may anchor on the
            # switch (a link to the guard is a link to its region's entry).
            element = ET.SubElement(
                parent, "switch", {"guard": node.guard, "name": node.guard}
            )
            for outcome, case in sorted(node.cases.items()):
                case_element = ET.SubElement(element, "case", {"outcome": outcome})
                emit(case, case_element)
            if node.otherwise is not None:
                otherwise_element = ET.SubElement(element, "otherwise")
                emit(node.otherwise, otherwise_element)
            return
        raise StructureError("cannot emit construct %r" % (node,))

    emit(tree, root)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")
