"""BPEL backend: emission of executable process XML and a subset parser.

The DSCWeaver "finally generates BPEL code for real process deployment"
(Section 1).  The minimal constraint set maps naturally onto a single BPEL
``<flow>`` whose ``<link>`` elements are exactly the constraints —
conditional constraints become link ``transitionCondition`` attributes and
dead-path elimination (``suppressJoinFailure="yes"``) plays the role the
skip transitions play in the Petri translation.

* :mod:`repro.bpel.emit` — constraint set -> flow/link XML;
* :mod:`repro.bpel.parse` — the inverse (recovers the constraint set), plus
  a parser for *structured* BPEL (``sequence``/``flow``/``switch``) into a
  construct tree so legacy imperative processes can enter the optimization
  pipeline via the PDG route.
"""

from repro.bpel.emit import emit_bpel
from repro.bpel.parse import parse_bpel_flow, parse_structured_bpel
from repro.bpel.structure import (
    StructureError,
    emit_structured_bpel,
    recover_structure,
)

__all__ = [
    "StructureError",
    "emit_bpel",
    "emit_structured_bpel",
    "parse_bpel_flow",
    "parse_structured_bpel",
    "recover_structure",
]
