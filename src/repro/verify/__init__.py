"""Symbolic verification of compiled constraint programs.

``repro.verify`` exhaustively explores the guard-outcome state space of a
:class:`~repro.runtime.program.ConstraintProgram` over the kernel's dense
bitmask representation and proves or refutes, with counterexample traces:

* **VER001** — deadlock-freedom under every guard valuation;
* **VER002** — dead activities no execution can ever fire;
* **VER003** — guard branches no execution can ever take;
* **VER004** — constraints that never influence a ready-set decision;
* **VER005** — constraint swaps that would strand an in-flight case
  (:func:`would_strand` / :func:`migration_strands`).

The successor relation is the *runtime's own* ready-set test (shared via
:meth:`ConstraintProgram.masks`), so the verifier analyzes exactly what
serving executes; :func:`petri_cross_check` differentially validates the
verdicts against the independent :mod:`repro.petri` soundness checker.
"""

from repro.verify.crosscheck import CrossCheck, petri_cross_check
from repro.verify.engine import (
    VerificationReport,
    synthesize_process,
    verify_constraints,
    verify_program,
)
from repro.verify.rules import VER_CODES
from repro.verify.space import (
    DEFAULT_STATE_LIMIT,
    Exploration,
    SpaceStats,
    StateSpace,
    Terminal,
)
from repro.verify.strand import StrandReport, migration_strands, would_strand

__all__ = [
    "CrossCheck",
    "DEFAULT_STATE_LIMIT",
    "Exploration",
    "SpaceStats",
    "StateSpace",
    "StrandReport",
    "Terminal",
    "VER_CODES",
    "VerificationReport",
    "migration_strands",
    "petri_cross_check",
    "synthesize_process",
    "verify_constraints",
    "verify_program",
    "would_strand",
]
