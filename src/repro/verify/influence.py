"""Which constraints ever influence a ready-set decision? (VER004)

A constraint ``c = source -> target`` *influences* a ready-set decision
when some reachable state has ``target`` pending with fate True while
``source`` is the sole unresolved incoming source — i.e. removing ``c``
would flip the runtime's ``_constraints_satisfied`` verdict there.  A
constraint that never reaches such a state is semantically inert: it is
either transitively implied (``a -> b -> c`` makes ``a -> c`` inert) or
attached to activities whose guards make the combination unrealizable.

The test runs as a post-pass over the exploration's *terminal* states
(the persistent-set reduction preserves exactly the terminal set, so this
is exact even though intermediate interleavings were pruned).  For each
terminal we ask: can a prefix of this run resolve every other dependency
of ``target`` while leaving ``source`` untouched?  Resolution is an
AND/OR reachability problem —

* an *executed* activity resolves only after **all** of its constraint
  sources and guard dependencies resolve (AND), and, for receives, after
  **some** executed invoker of every request port (AND of ORs);
* a *skipped* activity resolves as soon as **any** of its failing guards
  resolves (OR) — whichever guard decided against it first.

``resolvable_without`` computes the maximal resolvable set avoiding two
excluded nodes as a fixpoint; ``c`` influences under a terminal iff the
other dependencies of ``target`` all land in that set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.constraints import Constraint
from repro.runtime.program import MaskProgram

from repro.verify.space import Exploration, Terminal

#: Beyond this many distinct terminals the post-pass is skipped (VER004
#: degrades to "no findings" rather than slow or unsound ones).
TERMINAL_CAP = 512


@dataclass(frozen=True)
class TerminalView:
    """One deduplicated terminal plus the facts the fixpoint needs."""

    done: int
    skipped: int
    #: for each skipped activity bit index: mask of its failing guards.
    failing: Dict[int, int]
    #: activity bits consultable as a pending fate-True target (deadlocks).
    stuck_candidates: int


def _terminal_views(
    masks: MaskProgram, exploration: Exploration
) -> List[TerminalView]:
    views: Dict[Tuple[int, int, Tuple[Tuple[int, int], ...]], TerminalView] = {}
    for terminal in exploration.terminals:
        outcomes = exploration.outcomes_along(terminal.state)
        valuation = _valuation_of(masks, outcomes)
        failing: Dict[int, int] = {}
        probe = terminal.skipped
        while probe:
            low = probe & -probe
            probe ^= low
            act = masks.activities[low.bit_length() - 1]
            failing_mask = 0
            for cond in masks.program.guards.get(act.name, frozenset()):
                guard_index = masks.index.get(cond.guard)
                if guard_index is None:
                    continue
                guard_bit = 1 << guard_index
                if terminal.skipped & guard_bit:
                    failing_mask |= guard_bit
                elif (
                    terminal.done & guard_bit
                    and outcomes.get(cond.guard) not in (None, cond.value)
                ):
                    failing_mask |= guard_bit
            failing[low.bit_length() - 1] = failing_mask
        stuck_candidates = 0
        for name in terminal.stuck:
            act = masks.activities[masks.index[name]]
            if (
                not terminal.running & act.bit
                and masks.fate(act, valuation, terminal.skipped) is True
            ):
                stuck_candidates |= act.bit
        key = (terminal.done, terminal.skipped, tuple(sorted(failing.items())))
        existing = views.get(key)
        if existing is None:
            views[key] = TerminalView(
                terminal.done, terminal.skipped, failing, stuck_candidates
            )
        elif stuck_candidates & ~existing.stuck_candidates:
            views[key] = TerminalView(
                terminal.done,
                terminal.skipped,
                failing,
                existing.stuck_candidates | stuck_candidates,
            )
    return list(views.values())


def _valuation_of(masks: MaskProgram, outcomes: Dict[str, str]) -> int:
    valuation = 0
    for guard, value in outcomes.items():
        act = masks.activities[masks.index[guard]]
        for outcome, value_bit in act.outcome_bits:
            if outcome == value:
                valuation |= value_bit
    return valuation


def resolvable_without(
    masks: MaskProgram, view: TerminalView, avoid: int
) -> int:
    """Maximal set of the terminal's resolved nodes reachable while every
    bit in ``avoid`` stays unresolved (monotone AND/OR fixpoint)."""
    resolved_universe = (view.done | view.skipped) & ~avoid
    reach = 0
    changed = True
    while changed:
        changed = False
        probe = resolved_universe & ~reach
        while probe:
            low = probe & -probe
            probe ^= low
            position = low.bit_length() - 1
            act = masks.activities[position]
            if view.done & low:
                need = act.pred_mask | act.guard_dep_mask
                if need & ~reach:
                    continue
                if act.await_ports is not None:
                    executed_ports = [
                        port_mask & view.done for port_mask in act.await_ports
                    ]
                    if not all(port & reach for port in executed_ports if port):
                        continue
                    if any(not port for port in executed_ports):
                        continue
            else:
                failing = view.failing.get(position, 0)
                if failing and not failing & reach:
                    continue
            reach |= low
            changed = True
    return reach


def influential_constraints(
    masks: MaskProgram, exploration: Exploration
) -> Tuple[List[Constraint], bool]:
    """``(inert constraints, analysis ran)`` for VER004.

    Returns ``([], False)`` when the analysis must stay silent: truncated
    exploration, two-phase programs (where the reduction's terminal-set
    argument does not cover gate/exclusive interleavings), or terminal
    blow-up past :data:`TERMINAL_CAP`.
    """
    if exploration.stats.truncated:
        return [], False
    if any(act.two_phase for act in masks.activities):
        return [], False
    views = _terminal_views(masks, exploration)
    if not views or len(views) > TERMINAL_CAP:
        return [], False

    inert: List[Constraint] = []
    for constraint in masks.program.constraints:
        source_index = masks.index.get(constraint.source)
        target_index = masks.index.get(constraint.target)
        if source_index is None or target_index is None:
            continue
        source_bit = 1 << source_index
        target_bit = 1 << target_index
        target_act = masks.activities[target_index]
        others = (target_act.pred_mask | target_act.guard_dep_mask) & ~source_bit
        influences = False
        for view in views:
            consultable = (view.done | view.stuck_candidates) & target_bit
            if not consultable:
                continue
            reach = resolvable_without(masks, view, source_bit | target_bit)
            if others & ~reach == 0:
                influences = True
                break
        if not influences:
            inert.append(constraint)
    return inert, True
