"""VER005: would migrating an in-flight case strand it? (ROADMAP item 2)

A *constraint swap* replaces the program a running case executes against.
The case's history — executed, skipped, guard outcomes — was produced
under the *old* program; :func:`would_strand` re-anchors that history in
the *new* program's universe and asks the state space whether every
continuation can still complete.  Queries run in ``mode="deadlock"``
against a shared :class:`~repro.verify.space.StateSpace`, so the
antichain frontier amortizes across the many prefixes of a sweep: once a
small executed-set is proven completable, every superset query collapses
into one subset test.

:func:`migration_strands` sweeps every reachable prefix of the old
program (its reduced state space is exactly the set of reachable
histories) and reports the strandable ones — the static counterpart of
the runtime's RT004 after-the-fact diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.runtime.program import ConstraintProgram
from repro.verify.rules import WOULD_STRAND
from repro.verify.space import (
    DEFAULT_STATE_LIMIT,
    StateSpace,
    format_transition,
)


@dataclass
class StrandReport:
    """The verdict for one (or a sweep of) migration prefix queries."""

    old_process: str
    new_process: str
    #: prefixes that can strand: (executed names, outcomes, counterexample).
    stranded: List[Tuple[Tuple[str, ...], Tuple[Tuple[str, str], ...], Tuple[str, ...]]] = field(
        default_factory=list
    )
    prefixes_checked: int = 0
    memo_hit_rate: float = 0.0
    truncated: bool = False
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return not self.stranded and not self.truncated


def _prefix_state(
    space: StateSpace,
    executed: Tuple[str, ...],
    skipped: Tuple[str, ...],
    outcomes: Dict[str, str],
):
    """Anchor an old-program history in the new program's mask universe.

    Activities unknown to the new program are dropped (the new version
    removed them); guard outcomes are re-interned where the guard still
    branches.  The skip cascade then re-derives any fates the new guard
    maps decide differently.
    """
    masks = space.masks
    done = 0
    skipped_mask = 0
    valuation = 0
    for name in executed:
        index = masks.index.get(name)
        if index is None:
            continue
        done |= 1 << index
        act = masks.activities[index]
        outcome = outcomes.get(name)
        if act.outcome_bits:
            chosen = dict(act.outcome_bits).get(outcome if outcome is not None else "")
            if chosen is None:
                # The old run never recorded an outcome (or it fell out of
                # the new domain): take the first declared branch so the
                # query stays answerable rather than wedging on a missing
                # valuation bit.
                chosen = act.outcome_bits[0][1]
            valuation |= chosen
    for name in skipped:
        index = masks.index.get(name)
        if index is not None:
            skipped_mask |= 1 << index
    return space.initial_state(done, 0, skipped_mask, valuation)


def would_strand(
    old_program: ConstraintProgram,
    new_program: ConstraintProgram,
    executed: Tuple[str, ...],
    skipped: Tuple[str, ...] = (),
    outcomes: Optional[Dict[str, str]] = None,
    space: Optional[StateSpace] = None,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> StrandReport:
    """Can a case with this old-program history deadlock under the new one?

    ``old_program`` documents the provenance of the history (its name is
    reported); the decision itself explores only ``new_program``.
    """
    if space is None:
        space = StateSpace(new_program, state_limit=state_limit)
    report = StrandReport(
        old_process=old_program.process.name,
        new_process=new_program.process.name,
    )
    _check_prefix(space, report, tuple(executed), tuple(skipped), outcomes or {})
    report.memo_hit_rate = space.frontier.hit_rate
    return report


def migration_strands(
    old_program: ConstraintProgram,
    new_program: ConstraintProgram,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> StrandReport:
    """Sweep every reachable old-program prefix through :func:`would_strand`."""
    old_space = StateSpace(old_program, state_limit=state_limit)
    old_exploration = old_space.explore(mode="full")
    new_space = StateSpace(new_program, state_limit=state_limit)
    report = StrandReport(
        old_process=old_program.process.name,
        new_process=new_program.process.name,
        truncated=old_exploration.stats.truncated,
    )
    old_masks = old_space.masks
    for state in old_exploration.parents:
        done, running, skipped_mask, _ = state
        if running:
            continue  # migrate only at quiescent points (no activity mid-run)
        executed = tuple(sorted(old_masks.names_of(done)))
        skipped = tuple(sorted(old_masks.names_of(skipped_mask)))
        outcomes = old_exploration.outcomes_along(state)
        _check_prefix(new_space, report, executed, skipped, outcomes)
    report.memo_hit_rate = new_space.frontier.hit_rate
    return report


def _check_prefix(
    space: StateSpace,
    report: StrandReport,
    executed: Tuple[str, ...],
    skipped: Tuple[str, ...],
    outcomes: Dict[str, str],
) -> None:
    report.prefixes_checked += 1
    start = _prefix_state(space, executed, skipped, outcomes)
    exploration = space.explore(start=start, mode="deadlock")
    if exploration.stats.truncated:
        report.truncated = True
        return
    if exploration.deadlock is None:
        return
    terminal = exploration.deadlock
    counterexample = tuple(
        format_transition(step) for step in exploration.trace(terminal.state)
    )
    frozen_outcomes = tuple(sorted(outcomes.items()))
    report.stranded.append((executed, frozen_outcomes, counterexample))
    report.diagnostics.append(
        Diagnostic(
            code=WOULD_STRAND,
            severity=Severity.ERROR,
            message=(
                "migrating a case with executed prefix {%s} to %r strands %s"
                % (
                    ", ".join(executed) or "",
                    report.new_process,
                    ", ".join(terminal.stuck),
                )
            ),
            location=SourceLocation("process", report.new_process),
            evidence=(
                "outcomes: %s"
                % (
                    ", ".join("%s=%s" % kv for kv in frozen_outcomes) or "<none>"
                ),
                "continuation: "
                + (" -> ".join(counterexample) or "<no step possible>"),
            )
            + terminal.blockers,
        )
    )
