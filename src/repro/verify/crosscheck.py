"""Differential cross-check: symbolic verifier vs the petri soundness checker.

:func:`repro.petri.from_constraints.constraint_set_to_petri_net` translates
a constraint set into a workflow net whose classical soundness notion
decomposes into exactly the verifier's first three verdicts:

* *option to complete* fails  ⇔  a reachable deadlock exists (VER001);
* *dead transitions* exist    ⇔  a dead activity (VER002) or an
  unreachable guard branch (VER003) exists — every ``exec__a__v``
  transition is one (activity, outcome) pair.

So on the service-free abstraction (:func:`repro.verify.engine
.verify_constraints` — the same information the translation consumes) the
two engines must agree.  The cross-check runs both and compares; any
disagreement is a bug in one of them, which is precisely what the
bundled-workload differential test pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.constraints import SynchronizationConstraintSet
from repro.petri.from_constraints import constraint_set_to_petri_net
from repro.petri.reachability import DEFAULT_STATE_LIMIT as PETRI_STATE_LIMIT
from repro.petri.soundness import SoundnessReport, check_soundness
from repro.verify.engine import VerificationReport, verify_constraints
from repro.verify.space import DEFAULT_STATE_LIMIT


@dataclass
class CrossCheck:
    """Both verdicts on one constraint set, plus the agreement bit."""

    verification: VerificationReport
    soundness: SoundnessReport
    #: the verifier's prediction of the net-level soundness verdict.
    predicted_sound: Optional[bool]
    #: None when either side was truncated (no claim either way).
    agrees: Optional[bool]


def petri_cross_check(
    sc: SynchronizationConstraintSet,
    state_limit: int = DEFAULT_STATE_LIMIT,
    petri_state_limit: int = PETRI_STATE_LIMIT,
) -> CrossCheck:
    """Run both engines on ``sc`` and compare their verdicts."""
    verification = verify_constraints(sc, state_limit=state_limit)
    net, initial = constraint_set_to_petri_net(sc)
    soundness = check_soundness(net, state_limit=petri_state_limit)

    if verification.deadlock_free is None:
        predicted: Optional[bool] = None
    else:
        predicted = (
            verification.deadlock_free
            and not verification.dead_activities
            and not verification.unreachable_branches
        )
    if predicted is None or soundness.truncated:
        agrees: Optional[bool] = None
    else:
        agrees = predicted == soundness.is_sound
    return CrossCheck(
        verification=verification,
        soundness=soundness,
        predicted_sound=predicted,
        agrees=agrees,
    )
