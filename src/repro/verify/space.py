"""Symbolic state space of a compiled constraint program.

A state is four machine-int masks over the program's interned universe
(:class:`repro.runtime.program.MaskProgram`):

``(done, running, skipped, valuation)``

``done``/``running``/``skipped`` are activity bits; ``valuation`` holds the
interned ``Cond`` bits produced by the guard branches taken so far.  The
successor relation evaluates exactly the runtime's readiness predicates —
the same pred/fate/message/gate masks ``CaseInstance`` checks — so the
verifier explores precisely what serving executes.

Two mechanisms keep the space small:

*Persistent-set reduction.*  A transition that can neither disable nor be
disabled by any other enabled transition forms a singleton persistent set;
exploring only it preserves every terminal state (both deadlocks and
completions are terminal — they have no successors).  Coarse activity
firings and two-phase *finishes* are such transitions: their enabling
conditions are monotone (preds/fates/messages only ever become more
resolved) and their effects only ever enable others.  Only *starts* of
two-phase activities can block a peer (an exclusive partner entering
RUNNING), so interleaving choice is explored exactly there.  Guard firings
branch over the full outcome domain, so branch coverage is unaffected.

*Live-bit projection.*  Once every activity whose fate reads guard ``g``
is resolved, ``g``'s valuation bits can never influence another decision;
:meth:`MaskProgram.project_valuation` drops them from the state key, so
symmetric post-branch continuations collapse into one state.

``mode="deadlock"`` additionally consults a shared
:class:`repro.core.kernel.AntichainFrontier`: executed-set masks already
proven completable under a (valuation, skipped, running) context are
pruned by a subset test.  The pruning discards completion *evidence*
(which activities ran), so it is only used where the question is purely
"can this state strand?" — the ``serve --verify`` gate and
:func:`repro.verify.strand.would_strand` — never for VER002/003/004.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.kernel import AntichainFrontier
from repro.runtime.program import ConstraintProgram, MaskActivity, MaskProgram

#: (kind, activity, outcome) — kind is "fire", "start" or "finish".
Transition = Tuple[str, str, Optional[str]]

#: (done, running, skipped, projected valuation)
State = Tuple[int, int, int, int]

DEFAULT_STATE_LIMIT = 200_000


@dataclass(frozen=True)
class Terminal:
    """A state with no successors: a completion or a deadlock."""

    state: State
    done: int
    running: int
    skipped: int
    #: activity names stuck PENDING or RUNNING (empty for completions).
    stuck: Tuple[str, ...]
    #: human-readable reasons, one per stuck activity.
    blockers: Tuple[str, ...]

    @property
    def deadlocked(self) -> bool:
        return bool(self.stuck)


@dataclass
class SpaceStats:
    """Counters for one exploration (feed ``repro_verify_*`` metrics)."""

    states: int = 0
    transitions: int = 0
    terminals: int = 0
    deadlocks: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    truncated: bool = False

    @property
    def memo_hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0


@dataclass
class Exploration:
    """The result of one :meth:`StateSpace.explore` run."""

    initial: State
    stats: SpaceStats
    terminals: List[Terminal] = field(default_factory=list)
    #: first deadlocked terminal found (BFS order → shortest reduced trace).
    deadlock: Optional[Terminal] = None
    #: activity bits that fired in some explored run.
    executed_ever: int = 0
    #: valuation bits produced by some explored guard branch.
    branch_bits_ever: int = 0
    #: parent pointers: state -> (parent state, transition).
    parents: Dict[State, Optional[Tuple[State, Transition]]] = field(
        default_factory=dict
    )

    def trace(self, state: State) -> List[Transition]:
        """The transition path from the initial state to ``state``."""
        steps: List[Transition] = []
        cursor: Optional[State] = state
        while cursor is not None:
            link = self.parents.get(cursor)
            if link is None:
                break
            cursor, transition = link
            steps.append(transition)
        steps.reverse()
        return steps

    def outcomes_along(self, state: State) -> Dict[str, str]:
        """Guard outcomes taken on the path to ``state`` (recovers the
        valuation that live-bit projection erased from the state key)."""
        outcomes: Dict[str, str] = {}
        for _, name, outcome in self.trace(state):
            if outcome is not None:
                outcomes[name] = outcome
        return outcomes


def format_transition(transition: Transition) -> str:
    kind, name, outcome = transition
    label = name if outcome is None else "%s=%s" % (name, outcome)
    return label if kind == "fire" else "%s %s" % (kind, label)


class StateSpace:
    """Explorer over the reachable states of one compiled program.

    One instance may serve many :meth:`explore` calls (the strand sweep
    re-queries it per prefix); the antichain memo persists across calls.
    """

    def __init__(
        self,
        program: Union[ConstraintProgram, MaskProgram],
        state_limit: int = DEFAULT_STATE_LIMIT,
    ) -> None:
        self.masks: MaskProgram = (
            program if isinstance(program, MaskProgram) else program.masks()
        )
        self.state_limit = state_limit
        self.frontier = AntichainFrontier()
        #: antichain pruning is only sound for programs with no two-phase
        #: activities (see module docstring) — and only in deadlock mode.
        self.memo_ok = not any(act.two_phase for act in self.masks.activities)

    # -- state construction --------------------------------------------------

    def initial_state(
        self,
        done: int = 0,
        running: int = 0,
        skipped: int = 0,
        valuation: int = 0,
    ) -> State:
        return self._settle(done, running, skipped, valuation)

    def _settle(
        self, done: int, running: int, skipped: int, valuation: int
    ) -> State:
        """Run the deterministic skip cascade to fixpoint, then project."""
        masks = self.masks
        changed = True
        while changed:
            changed = False
            pending = masks.all_mask & ~(done | running | skipped)
            probe = pending
            while probe:
                low = probe & -probe
                probe ^= low
                act = masks.activities[low.bit_length() - 1]
                if masks.fate(act, valuation, skipped) is False:
                    skipped |= low
                    changed = True
        pending = masks.all_mask & ~(done | running | skipped)
        return (done, running, skipped, masks.project_valuation(valuation, pending))

    # -- successor relation --------------------------------------------------

    def _branches(
        self, act: MaskActivity, kind: str, state: State
    ) -> List[Tuple[Transition, State]]:
        done, running, skipped, valuation = state
        bit = act.bit
        if kind == "start":
            return [(("start", act.name, None), (done, running | bit, skipped, valuation))]
        new_running = running & ~bit if kind == "finish" else running
        if act.outcome_bits:
            return [
                (
                    (kind, act.name, outcome),
                    (done | bit, new_running, skipped, valuation | value_bit),
                )
                for outcome, value_bit in act.outcome_bits
            ]
        return [((kind, act.name, None), (done | bit, new_running, skipped, valuation))]

    def successors(self, state: State) -> List[Tuple[Transition, State]]:
        """Enabled transitions, reduced to a persistent set when one exists."""
        masks = self.masks
        done, running, skipped, valuation = state
        resolved = done | skipped
        pending = masks.all_mask & ~(resolved | running)
        starts: List[Tuple[Transition, State]] = []
        for act in masks.activities:
            bit = act.bit
            if running & bit:
                if not masks.finish_blocked(act, done, running, skipped):
                    # Finishes never disable anything: singleton persistent set.
                    return self._branches(act, "finish", state)
                continue
            if not pending & bit:
                continue
            if masks.fate(act, valuation, skipped) is not True:
                continue
            if not masks.ready(act, resolved):
                continue
            if not masks.message_ready(act, done):
                continue
            if not act.two_phase:
                # Coarse firings are atomic and never disable anything.
                return self._branches(act, "fire", state)
            if running & act.exclusive_mask:
                continue
            if masks.start_blocked(act, done, running, skipped):
                continue
            starts.append(self._branches(act, "start", state)[0])
        # Only two-phase starts remain: these genuinely conflict (a start
        # can block an exclusive partner), so explore every interleaving.
        return starts

    # -- exploration ---------------------------------------------------------

    def explore(
        self,
        start: Optional[State] = None,
        mode: str = "full",
    ) -> Exploration:
        """Breadth-first exploration from ``start`` (default: empty case).

        ``mode="full"`` visits every reduced state and records terminals
        and liveness accumulators.  ``mode="deadlock"`` answers only "is a
        deadlock reachable?": it stops at the first deadlock, prunes via
        the antichain frontier, and feeds the frontier on success.
        """
        masks = self.masks
        if start is None:
            start = self.initial_state()
        stats = SpaceStats()
        result = Exploration(initial=start, stats=stats)
        deadlock_only = mode == "deadlock"
        use_memo = deadlock_only and self.memo_ok

        if use_memo and self.frontier.covers(self._memo_key(start), start[0]):
            stats.memo_hits = self.frontier.hits
            stats.memo_misses = self.frontier.misses
            stats.states = 0
            return result

        result.parents[start] = None
        queue = deque([start])
        visited_order: List[State] = []
        while queue:
            if stats.states >= self.state_limit:
                stats.truncated = True
                break
            state = queue.popleft()
            stats.states += 1
            visited_order.append(state)
            successors = self.successors(state)
            if not successors:
                terminal = self._terminal(state)
                result.terminals.append(terminal)
                stats.terminals += 1
                if terminal.deadlocked:
                    stats.deadlocks += 1
                    if result.deadlock is None:
                        result.deadlock = terminal
                    if deadlock_only:
                        break
                continue
            for transition, raw in successors:
                stats.transitions += 1
                if transition[0] != "start":
                    result.executed_ever |= masks.index_bit(transition[1])
                    if transition[2] is not None:
                        result.branch_bits_ever |= self._outcome_bit(transition)
                nxt = self._settle(*raw)
                if nxt in result.parents:
                    continue
                if use_memo and self.frontier.covers(self._memo_key(nxt), nxt[0]):
                    continue
                result.parents[nxt] = (state, transition)
                queue.append(nxt)

        stats.memo_hits = self.frontier.hits
        stats.memo_misses = self.frontier.misses
        if use_memo and result.deadlock is None and not stats.truncated:
            # Every visited state completed in every explored future: feed
            # the frontier so later queries collapse to a subset test.
            for state in visited_order:
                self.frontier.insert(self._memo_key(state), state[0])
        return result

    # -- terminal classification ---------------------------------------------

    def _terminal(self, state: State) -> Terminal:
        masks = self.masks
        done, running, skipped, valuation = state
        resolved = done | skipped
        pending = masks.all_mask & ~(resolved | running)
        stuck_mask = pending | running
        if not stuck_mask:
            return Terminal(state, done, running, skipped, (), ())
        stuck: List[str] = []
        blockers: List[str] = []
        probe = stuck_mask
        while probe:
            low = probe & -probe
            probe ^= low
            act = masks.activities[low.bit_length() - 1]
            stuck.append(act.name)
            blockers.append(self._why_stuck(act, state))
        return Terminal(state, done, running, skipped, tuple(stuck), tuple(blockers))

    def _why_stuck(self, act: MaskActivity, state: State) -> str:
        masks = self.masks
        done, running, skipped, valuation = state
        resolved = done | skipped
        if running & act.bit:
            return "%s is RUNNING but its finish is gated" % act.name
        fate = masks.fate(act, valuation, skipped)
        if fate is None:
            waiting = sorted(
                cond.guard
                for cond in masks.program.guards.get(act.name, frozenset())
            )
            return "%s waits on undecided guard(s) %s" % (
                act.name,
                ", ".join(waiting),
            )
        unsatisfied = masks.unsatisfied(act, resolved)
        if unsatisfied:
            names = ", ".join(
                str(c) for c in masks.blocking_constraints(act.name, resolved)
            )
            return "%s blocked by unsatisfied constraint(s): %s" % (act.name, names)
        if not masks.message_ready(act, done):
            return "%s awaits a service callback that can never arrive" % act.name
        if running & act.exclusive_mask:
            return "%s blocked by a RUNNING exclusive partner" % act.name
        if masks.start_blocked(act, done, running, skipped):
            return "%s start-gated by a fine-grained dependency" % act.name
        return "%s is blocked" % act.name

    # -- helpers -------------------------------------------------------------

    def _memo_key(self, state: State) -> Tuple[int, int, int]:
        _, running, skipped, valuation = state
        return (running, skipped, valuation)

    def _outcome_bit(self, transition: Transition) -> int:
        _, name, outcome = transition
        act = self.masks.activities[self.masks.index[name]]
        for value, value_bit in act.outcome_bits:
            if value == outcome:
                return value_bit
        return 0
