"""The ``repro.verify`` entry points: prove or refute whole-process properties.

:func:`verify_program` exhaustively explores the reduced state space of a
compiled :class:`~repro.runtime.program.ConstraintProgram` and returns a
:class:`VerificationReport` answering, with counterexamples where refuted:

========  =============================================================
VER001    deadlock-freedom under every guard valuation
VER002    dead activities no execution can ever fire
VER003    guard branches no execution can ever take
VER004    constraints that never influence a ready-set decision
========  =============================================================

(`VER005`, the two-program strand analysis, lives in
:mod:`repro.verify.strand`.)

:func:`verify_constraints` is the service-free abstraction used by the
petri cross-check: it synthesizes a minimal process around a bare
constraint set, so the verdict depends only on the constraint structure —
the same information :func:`repro.petri.from_constraints
.constraint_set_to_petri_net` translates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.constraints import SynchronizationConstraintSet
from repro.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.model.builder import ProcessBuilder
from repro.model.process import BusinessProcess
from repro.runtime.program import ConstraintProgram, compile_program
from repro.verify.influence import influential_constraints
from repro.verify.rules import (
    DEADLOCK_REACHABLE,
    DEAD_ACTIVITY,
    INERT_CONSTRAINT,
    UNREACHABLE_BRANCH,
)
from repro.verify.space import (
    DEFAULT_STATE_LIMIT,
    Exploration,
    SpaceStats,
    StateSpace,
    format_transition,
)


@dataclass
class VerificationReport:
    """Everything one exhaustive verification run established."""

    process: str
    activities: int
    constraints: int
    stats: SpaceStats
    elapsed_seconds: float
    #: ``True`` proven, ``False`` refuted, ``None`` unknown (truncated).
    deadlock_free: Optional[bool]
    #: formatted transition trace to the first deadlock (refutations only).
    counterexample: Tuple[str, ...]
    dead_activities: Tuple[str, ...]
    #: ``(guard, value, dependents)`` per unreachable branch.
    unreachable_branches: Tuple[Tuple[str, str, Tuple[str, ...]], ...]
    #: constraint ids that never influence any ready-set decision.
    inert_constraints: Tuple[str, ...]
    #: whether the VER004 post-pass ran (it stays silent when unsound).
    influence_analyzed: bool
    #: distinct completed ``(executed, skipped)`` final sets.
    distinct_finals: int
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.deadlock_free is True and not self.dead_activities and not (
            self.unreachable_branches
        )

    @property
    def states_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.stats.states / self.elapsed_seconds

    def summary_lines(self) -> List[str]:
        verdict = {
            True: "PROVEN deadlock-free under every guard valuation",
            False: "REFUTED: a reachable deadlock exists",
            None: "UNKNOWN: exploration truncated at the state limit",
        }[self.deadlock_free]
        lines = [
            "process %s: %d activities, %d constraints"
            % (self.process, self.activities, self.constraints),
            "explored %d states / %d transitions in %.3fs (%d terminals, "
            "%d distinct final sets)"
            % (
                self.stats.states,
                self.stats.transitions,
                self.elapsed_seconds,
                self.stats.terminals,
                self.distinct_finals,
            ),
            "deadlock-freedom: %s" % verdict,
        ]
        if self.counterexample:
            lines.append("counterexample: " + " -> ".join(self.counterexample))
        lines.append(
            "dead activities: %s"
            % (", ".join(self.dead_activities) if self.dead_activities else "none")
        )
        lines.append(
            "unreachable branches: %s"
            % (
                ", ".join(
                    "%s=%s" % (guard, value)
                    for guard, value, _ in self.unreachable_branches
                )
                if self.unreachable_branches
                else "none"
            )
        )
        if self.influence_analyzed:
            lines.append(
                "inert constraints: %s"
                % (", ".join(self.inert_constraints) if self.inert_constraints else "none")
            )
        return lines


def synthesize_process(sc: SynchronizationConstraintSet) -> BusinessProcess:
    """A minimal service-free process hosting ``sc``'s activities.

    Activities referenced as guards (by the guard maps or by conditional
    constraints) become guard activities whose outcome domain is taken
    from ``sc.domains``; everything else is a unit-duration compute step.
    Used by :func:`verify_constraints` and the brute-force differential.
    """
    guard_names = {cond.guard for conds in sc.guards.values() for cond in conds}
    guard_names.update(
        constraint.source
        for constraint in sc.constraints
        if constraint.condition is not None
    )
    builder = ProcessBuilder("constraint-set")
    for name in sc.activities:
        if name in guard_names:
            builder.guard(
                name, outcomes=sorted(sc.domains.domain(name)), duration=1.0
            )
        else:
            builder.compute(name, duration=1.0)
    return builder.build()


def verify_constraints(
    sc: SynchronizationConstraintSet,
    state_limit: int = DEFAULT_STATE_LIMIT,
    obs=None,
) -> VerificationReport:
    """Verify the service-free abstraction of a bare constraint set."""
    program = compile_program(synthesize_process(sc), sc)
    return verify_program(program, state_limit=state_limit, obs=obs)


def verify_program(
    program: ConstraintProgram,
    state_limit: int = DEFAULT_STATE_LIMIT,
    obs=None,
    space: Optional[StateSpace] = None,
) -> VerificationReport:
    """Exhaustively verify one compiled program (VER001-VER004)."""
    if space is None:
        space = StateSpace(program, state_limit=state_limit)
    masks = space.masks
    started = time.perf_counter()
    if obs is not None:
        with obs.tracer.span(
            "verify.explore",
            process=program.process.name,
            activities=len(program.activities),
        ):
            exploration = space.explore(mode="full")
    else:
        exploration = space.explore(mode="full")
    elapsed = time.perf_counter() - started

    report = _build_report(program, masks, exploration, elapsed)
    if obs is not None:
        _publish_metrics(obs, report.stats, elapsed)
    return report


def _build_report(
    program: ConstraintProgram,
    masks,
    exploration: Exploration,
    elapsed: float,
) -> VerificationReport:
    stats = exploration.stats
    diagnostics: List[Diagnostic] = []
    location = SourceLocation("process", program.process.name)

    # -- VER001 --------------------------------------------------------------
    counterexample: Tuple[str, ...] = ()
    if exploration.deadlock is not None:
        deadlock_free: Optional[bool] = False
        terminal = exploration.deadlock
        counterexample = tuple(
            format_transition(step) for step in exploration.trace(terminal.state)
        )
        diagnostics.append(
            Diagnostic(
                code=DEADLOCK_REACHABLE,
                severity=Severity.ERROR,
                message=(
                    "a reachable deadlock strands activities %s"
                    % ", ".join(terminal.stuck)
                ),
                location=location,
                evidence=(
                    "trace: " + (" -> ".join(counterexample) or "<initial state>"),
                )
                + terminal.blockers,
            )
        )
    elif stats.truncated:
        deadlock_free = None
        diagnostics.append(
            Diagnostic(
                code=DEADLOCK_REACHABLE,
                severity=Severity.WARNING,
                message=(
                    "verification truncated after %d states; deadlock-freedom "
                    "is unknown" % stats.states
                ),
                location=location,
                evidence=("raise --state-limit to complete the proof",),
            )
        )
    else:
        deadlock_free = True

    # -- VER002 --------------------------------------------------------------
    dead_activities: Tuple[str, ...] = ()
    if not stats.truncated:
        dead_mask = masks.all_mask & ~exploration.executed_ever
        dead_activities = tuple(sorted(masks.names_of(dead_mask)))
        for name in dead_activities:
            diagnostics.append(
                Diagnostic(
                    code=DEAD_ACTIVITY,
                    severity=Severity.ERROR,
                    message="activity %r can never execute" % name,
                    location=SourceLocation("activity", name),
                    evidence=(
                        "no run among %d explored states fires it" % stats.states,
                    ),
                )
            )

    # -- VER003 --------------------------------------------------------------
    unreachable: List[Tuple[str, str, Tuple[str, ...]]] = []
    if not stats.truncated:
        dependents_of: Dict[Tuple[str, str], List[str]] = {}
        for activity, conds in sorted(program.guards.items()):
            for cond in sorted(conds):
                dependents_of.setdefault((cond.guard, cond.value), []).append(
                    activity
                )
        for (guard, value), dependents in sorted(dependents_of.items()):
            act_index = masks.index.get(guard)
            if act_index is None:
                continue
            act = masks.activities[act_index]
            value_bit = dict(act.outcome_bits).get(value)
            produced = (
                value_bit is not None
                and exploration.branch_bits_ever & value_bit != 0
            )
            if not produced:
                unreachable.append((guard, value, tuple(dependents)))
                reason = (
                    "guard %r never resolves to %r in any execution"
                    % (guard, value)
                    if value_bit is not None
                    else "%r is not an outcome of guard %r" % (value, guard)
                )
                diagnostics.append(
                    Diagnostic(
                        code=UNREACHABLE_BRANCH,
                        severity=Severity.WARNING,
                        message=(
                            "branch %s=%s is unreachable; it guards %s"
                            % (guard, value, ", ".join(dependents))
                        ),
                        location=SourceLocation("activity", guard),
                        evidence=(reason,),
                    )
                )

    # -- VER004 --------------------------------------------------------------
    inert, analyzed = influential_constraints(masks, exploration)
    inert_ids = tuple(str(constraint) for constraint in inert)
    for constraint in inert:
        diagnostics.append(
            Diagnostic(
                code=INERT_CONSTRAINT,
                severity=Severity.INFO,
                message=(
                    "constraint %s never influences a ready-set decision"
                    % constraint
                ),
                location=SourceLocation("constraint", str(constraint)),
                evidence=(
                    "its source is never the sole unresolved blocker of its "
                    "target in any reachable state",
                ),
            )
        )

    distinct_finals = len(
        {
            (terminal.done, terminal.skipped)
            for terminal in exploration.terminals
            if not terminal.deadlocked
        }
    )
    return VerificationReport(
        process=program.process.name,
        activities=len(program.activities),
        constraints=len(program.constraints),
        stats=stats,
        elapsed_seconds=elapsed,
        deadlock_free=deadlock_free,
        counterexample=counterexample,
        dead_activities=dead_activities,
        unreachable_branches=tuple(unreachable),
        inert_constraints=inert_ids,
        influence_analyzed=analyzed,
        distinct_finals=distinct_finals,
        diagnostics=diagnostics,
    )


def _publish_metrics(obs, stats: SpaceStats, elapsed: float) -> None:
    registry = obs.metrics
    registry.counter(
        "repro_verify_states_total", "States explored by the verifier."
    ).inc(stats.states)
    registry.counter(
        "repro_verify_transitions_total", "Transitions evaluated by the verifier."
    ).inc(stats.transitions)
    registry.counter(
        "repro_verify_deadlocks_total", "Deadlocked terminal states found."
    ).inc(stats.deadlocks)
    registry.counter(
        "repro_verify_memo_hits_total", "Antichain frontier subsumption hits."
    ).inc(stats.memo_hits)
    registry.gauge(
        "repro_verify_last_run_seconds", "Wall time of the last verification."
    ).set(elapsed)
