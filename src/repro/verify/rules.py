"""VER00x verification codes, registered with the :mod:`repro.lint` engine.

Like the runtime's ``RT00x`` codes, VER diagnostics are produced by a
subsystem (the symbolic verifier) rather than a syntactic check, but
registering them gives them the full lint treatment for free: SARIF rule
tables, ``--select``/``--ignore`` prefixes (``VER`` selects the group),
``--fail-on`` gating, text/JSON rendering and baselines.  The rules fire
when a :class:`~repro.verify.engine.VerificationReport` (and, for VER005,
a :class:`~repro.verify.strand.StrandReport`) is attached to the lint
context as ``context.verification`` / ``context.strand``.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintContext, rule

#: Stable verification codes.
DEADLOCK_REACHABLE = "VER001"
DEAD_ACTIVITY = "VER002"
UNREACHABLE_BRANCH = "VER003"
INERT_CONSTRAINT = "VER004"
WOULD_STRAND = "VER005"

#: The verification rule codes, in reporting order.
VER_CODES = (
    DEADLOCK_REACHABLE,
    DEAD_ACTIVITY,
    UNREACHABLE_BRANCH,
    INERT_CONSTRAINT,
    WOULD_STRAND,
)


def _verification(context: LintContext, code: str) -> Iterable[Diagnostic]:
    report = getattr(context, "verification", None)
    if report is None:
        return ()
    return tuple(d for d in report.diagnostics if d.code == code)


def _strand(context: LintContext, code: str) -> Iterable[Diagnostic]:
    report = getattr(context, "strand", None)
    if report is None:
        return ()
    return tuple(d for d in report.diagnostics if d.code == code)


@rule(
    DEADLOCK_REACHABLE,
    "deadlock-reachable",
    "some guard valuation and interleaving strands the case in a deadlock",
    Severity.ERROR,
)
def check_deadlock_reachable(context: LintContext) -> Iterable[Diagnostic]:
    return _verification(context, DEADLOCK_REACHABLE)


@rule(
    DEAD_ACTIVITY,
    "dead-activity",
    "no execution of the constraint program can ever fire the activity",
    Severity.ERROR,
)
def check_dead_activity(context: LintContext) -> Iterable[Diagnostic]:
    return _verification(context, DEAD_ACTIVITY)


@rule(
    UNREACHABLE_BRANCH,
    "unreachable-guard-branch",
    "a guarded branch can never be taken in any execution",
    Severity.WARNING,
)
def check_unreachable_branch(context: LintContext) -> Iterable[Diagnostic]:
    return _verification(context, UNREACHABLE_BRANCH)


@rule(
    INERT_CONSTRAINT,
    "inert-constraint",
    "a constraint never influences any ready-set decision",
    Severity.INFO,
)
def check_inert_constraint(context: LintContext) -> Iterable[Diagnostic]:
    return _verification(context, INERT_CONSTRAINT)


@rule(
    WOULD_STRAND,
    "migration-would-strand",
    "migrating an in-flight case to the new constraint version can deadlock it",
    Severity.ERROR,
)
def check_would_strand(context: LintContext) -> Iterable[Diagnostic]:
    return _strand(context, WOULD_STRAND)
