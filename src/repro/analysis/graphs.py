"""Plain directed-graph utilities used throughout the library.

These helpers are written from scratch (standard library only) so that the
core algorithms of the paper do not silently depend on third-party graph
semantics; the test suite cross-checks :func:`transitive_closure` and
:func:`transitive_reduction` against ``networkx`` on random DAGs.

All functions operate on a :class:`DirectedGraph`, a minimal adjacency-set
structure with deterministic iteration order (insertion order of nodes).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Node = Hashable


class DirectedGraph:
    """A simple directed graph with at most one edge per ordered pair.

    Nodes may be any hashable value.  Iteration over nodes and successor
    sets is deterministic (insertion order), which keeps every downstream
    algorithm — including the order-dependent minimization of Definition 6 —
    reproducible run to run.
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[Tuple[Node, Node]] = (),
    ) -> None:
        self._succ: Dict[Node, Dict[Node, None]] = {}
        self._pred: Dict[Node, Dict[Node, None]] = {}
        for node in nodes:
            self.add_node(node)
        for source, target in edges:
            self.add_edge(source, target)

    # -- construction -----------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present."""
        self._succ.setdefault(node, {})
        self._pred.setdefault(node, {})

    def add_edge(self, source: Node, target: Node) -> None:
        """Add the edge ``source -> target`` (idempotent)."""
        self.add_node(source)
        self.add_node(target)
        self._succ[source][target] = None
        self._pred[target][source] = None

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the edge ``source -> target``.

        Raises ``KeyError`` if the edge is not present.
        """
        del self._succ[source][target]
        del self._pred[target][source]

    def copy(self) -> "DirectedGraph":
        clone = DirectedGraph()
        for node in self._succ:
            clone.add_node(node)
        for source, target in self.edges():
            clone.add_edge(source, target)
        return clone

    # -- queries -----------------------------------------------------------

    def nodes(self) -> List[Node]:
        return list(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def successors(self, node: Node) -> List[Node]:
        return list(self._succ.get(node, ()))

    def predecessors(self, node: Node) -> List[Node]:
        return list(self._pred.get(node, ()))

    def has_edge(self, source: Node, target: Node) -> bool:
        return target in self._succ.get(source, ())

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def out_degree(self, node: Node) -> int:
        return len(self._succ.get(node, ()))

    def in_degree(self, node: Node) -> int:
        return len(self._pred.get(node, ()))

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._succ.values())

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DirectedGraph(%d nodes, %d edges)" % (len(self), self.edge_count())


def descendants(graph: DirectedGraph, node: Node) -> Set[Node]:
    """All nodes reachable from ``node`` by one or more edges."""
    seen: Set[Node] = set()
    stack = list(graph.successors(node))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.successors(current))
    return seen


def ancestors(graph: DirectedGraph, node: Node) -> Set[Node]:
    """All nodes from which ``node`` is reachable by one or more edges."""
    seen: Set[Node] = set()
    stack = list(graph.predecessors(node))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.predecessors(current))
    return seen


def has_path(graph: DirectedGraph, source: Node, target: Node) -> bool:
    """Return ``True`` if a non-empty path ``source -> ... -> target`` exists."""
    if not graph.has_node(source):
        return False
    seen: Set[Node] = set()
    stack = list(graph.successors(source))
    while stack:
        current = stack.pop()
        if current == target:
            return True
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.successors(current))
    return False


def find_cycle(graph: DirectedGraph) -> Optional[List[Node]]:
    """Return one directed cycle as a node list, or ``None`` if acyclic.

    The returned list contains the cycle's nodes in order, without repeating
    the first node at the end.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Node, int] = {node: WHITE for node in graph.nodes()}
    parent: Dict[Node, Optional[Node]] = {}

    for root in graph.nodes():
        if color[root] != WHITE:
            continue
        stack: List[Tuple[Node, Iterator[Node]]] = [(root, iter(graph.successors(root)))]
        color[root] = GRAY
        parent[root] = None
        while stack:
            node, successor_iter = stack[-1]
            advanced = False
            for successor in successor_iter:
                if color[successor] == GRAY:
                    # Found a back edge: reconstruct the cycle.
                    cycle = [node]
                    while cycle[-1] != successor:
                        cycle.append(parent[cycle[-1]])
                    cycle.reverse()
                    return cycle
                if color[successor] == WHITE:
                    color[successor] = GRAY
                    parent[successor] = node
                    stack.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def strongly_connected_components(graph: DirectedGraph) -> List[List[Node]]:
    """Tarjan's algorithm (iterative); components in reverse topological
    order of the condensation.  Singleton components without a self-loop
    are included — callers interested in cycles should filter them out."""
    index_counter = [0]
    indices: Dict[Node, int] = {}
    lowlinks: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[List[Node]] = []

    for root in graph.nodes():
        if root in indices:
            continue
        work: List[Tuple[Node, Iterator[Node]]] = [(root, iter(graph.successors(root)))]
        indices[root] = lowlinks[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successor_iter = work[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if on_stack.get(successor):
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indices[node]:
                    component: List[Node] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
    return components


def cyclic_components(graph: DirectedGraph) -> List[List[Node]]:
    """Strongly connected components that actually contain a cycle
    (size > 1, or a singleton with a self-loop)."""
    return [
        component
        for component in strongly_connected_components(graph)
        if len(component) > 1
        or graph.has_edge(component[0], component[0])
    ]


def topological_sort(graph: DirectedGraph) -> List[Node]:
    """Kahn topological order; raises ``ValueError`` on a cyclic graph."""
    in_degree = {node: graph.in_degree(node) for node in graph.nodes()}
    ready = [node for node, degree in in_degree.items() if degree == 0]
    order: List[Node] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for successor in graph.successors(node):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if len(order) != len(graph):
        cycle = find_cycle(graph) or []
        raise ValueError(
            "graph is cyclic; topological order impossible (cycle: %r)" % (cycle,)
        )
    return order


def transitive_closure(graph: DirectedGraph) -> Dict[Node, Set[Node]]:
    """Per-node reachability sets (excluding the node itself unless on a cycle).

    Computed in reverse topological order when the graph is acyclic
    (``O(V * E / word)`` in practice); falls back to per-node DFS on cyclic
    graphs so the function stays total.
    """
    closure: Dict[Node, Set[Node]] = {}
    try:
        order = topological_sort(graph)
    except ValueError:
        return {node: descendants(graph, node) for node in graph.nodes()}
    for node in reversed(order):
        reach: Set[Node] = set()
        for successor in graph.successors(node):
            reach.add(successor)
            reach |= closure[successor]
        closure[node] = reach
    return closure


def transitive_reduction(graph: DirectedGraph) -> DirectedGraph:
    """The unique transitive reduction of a DAG.

    An edge ``u -> v`` is kept iff no alternative path ``u -> ... -> v``
    exists.  Raises ``ValueError`` for cyclic graphs (the reduction is only
    unique, and only meaningful for our purposes, on DAGs).
    """
    topological_sort(graph)  # raises on cycles
    closure = transitive_closure(graph)
    reduced = DirectedGraph(nodes=graph.nodes())
    for source in graph.nodes():
        targets = set(graph.successors(source))
        for target in targets:
            # Reachable via another direct successor => redundant.
            redundant = any(
                target == other or target in closure[other]
                for other in targets
                if other != target
            )
            if not redundant:
                reduced.add_edge(source, target)
    return reduced
