"""Shared analysis substrate: condition algebra, graph and dominator utilities.

This package is dependency-free (standard library only) and is used by every
other subsystem: the condition algebra implements the annotated-closure
semantics of Definition 3, the graph helpers implement the reachability
machinery behind Definitions 4-6, and the dominator module implements the
post-dominator criterion used to extract control dependencies from
sequencing-construct programs (Figure 3/4 of the paper).
"""

from repro.analysis.conditions import (
    Cond,
    ConditionDomains,
    is_contradictory,
    merge_complementary,
    normalize_facts,
    strip_implied,
    subsumes,
)
from repro.analysis.graphs import (
    DirectedGraph,
    ancestors,
    descendants,
    find_cycle,
    has_path,
    topological_sort,
    transitive_closure,
    transitive_reduction,
)
from repro.analysis.dominators import (
    control_dependencies,
    immediate_dominators,
    postdominators,
)

__all__ = [
    "Cond",
    "ConditionDomains",
    "DirectedGraph",
    "ancestors",
    "control_dependencies",
    "descendants",
    "find_cycle",
    "has_path",
    "immediate_dominators",
    "is_contradictory",
    "merge_complementary",
    "normalize_facts",
    "postdominators",
    "strip_implied",
    "subsumes",
    "topological_sort",
    "transitive_closure",
    "transitive_reduction",
]
