"""Dominator / post-dominator analysis and control-dependence extraction.

The paper (Section 3.1, Figures 3-4) derives *control dependencies* from a
process's control-flow graph using the classic criterion of Ferrante,
Ottenstein and Warren [7]: an activity ``n`` is control dependent on a
branch activity ``b`` iff ``b`` has a successor from which ``n`` is always
reached (``n`` post-dominates that successor) while ``n`` does not
post-dominate ``b`` itself.  This is exactly why, in Figure 4, ``a7`` — which
dominates every path from ``a1`` to ``stop`` — is *not* control dependent on
``a1`` while ``a2..a6`` are.

The implementation uses the straightforward iterative dataflow formulation
(adequate for process-sized graphs) rather than Lengauer-Tarjan.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.analysis.graphs import DirectedGraph

Node = Hashable


def _reverse(graph: DirectedGraph) -> DirectedGraph:
    reversed_graph = DirectedGraph(nodes=graph.nodes())
    for source, target in graph.edges():
        reversed_graph.add_edge(target, source)
    return reversed_graph


def immediate_dominators(graph: DirectedGraph, entry: Node) -> Dict[Node, Node]:
    """Immediate dominator of every node reachable from ``entry``.

    Returns a mapping ``node -> idom(node)``; the entry maps to itself.
    Uses the Cooper-Harvey-Kennedy iterative algorithm over a reverse
    post-order.
    """
    if not graph.has_node(entry):
        raise ValueError("entry node %r is not in the graph" % (entry,))

    # Reverse post-order via iterative DFS.
    order: List[Node] = []
    visited: Set[Node] = set()
    stack: List[Tuple[Node, List[Node]]] = [(entry, graph.successors(entry))]
    visited.add(entry)
    while stack:
        node, successors = stack[-1]
        advanced = False
        while successors:
            successor = successors.pop(0)
            if successor not in visited:
                visited.add(successor)
                stack.append((successor, graph.successors(successor)))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    position = {node: index for index, node in enumerate(order)}

    idom: Dict[Node, Optional[Node]] = {node: None for node in order}
    idom[entry] = entry

    def intersect(a: Node, b: Node) -> Node:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            candidates = [
                predecessor
                for predecessor in graph.predecessors(node)
                if predecessor in position and idom[predecessor] is not None
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for predecessor in candidates[1:]:
                new_idom = intersect(new_idom, predecessor)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True

    return {node: dominator for node, dominator in idom.items() if dominator is not None}


def postdominators(graph: DirectedGraph, exit_node: Node) -> Dict[Node, Node]:
    """Immediate post-dominator of every node that reaches ``exit_node``.

    Equivalent to dominators on the reversed graph rooted at the exit.
    """
    return immediate_dominators(_reverse(graph), exit_node)


def _postdominates(
    ipostdom: Dict[Node, Node], exit_node: Node, candidate: Node, node: Node
) -> bool:
    """Does ``candidate`` post-dominate ``node`` (reflexively)?"""
    current = node
    while True:
        if current == candidate:
            return True
        if current == exit_node or current not in ipostdom:
            return False
        parent = ipostdom[current]
        if parent == current:
            return current == candidate
        current = parent


def control_dependencies(
    graph: DirectedGraph,
    entry: Node,
    exit_node: Node,
    branch_labels: Dict[Tuple[Node, Node], str] | None = None,
) -> List[Tuple[Node, Node, Optional[str]]]:
    """Control dependencies of a control-flow graph.

    Returns triples ``(branch, dependent, label)`` where ``dependent`` is
    control dependent on ``branch`` and ``label`` is the branch-edge label
    ("T", "F", a case name...) through which the dependence arises, or
    ``None`` when unlabeled.

    ``branch_labels`` maps CFG edges ``(branch, successor)`` to labels; only
    nodes with out-degree greater than one can be sources of control
    dependence.
    """
    branch_labels = branch_labels or {}
    ipostdom = postdominators(graph, exit_node)
    dependencies: List[Tuple[Node, Node, Optional[str]]] = []
    seen: Set[Tuple[Node, Node, Optional[str]]] = set()

    for branch in graph.nodes():
        successors = graph.successors(branch)
        if len(successors) < 2:
            continue
        for successor in successors:
            label = branch_labels.get((branch, successor))
            # Walk the post-dominator chain from the successor up to (but
            # excluding) branch's own immediate post-dominator: every node on
            # that chain post-dominates `successor` but not `branch`.
            stop = ipostdom.get(branch)
            current: Optional[Node] = successor
            while current is not None and current != stop:
                if current != branch:
                    triple = (branch, current, label)
                    if triple not in seen:
                        seen.add(triple)
                        dependencies.append(triple)
                if current == exit_node:
                    break
                parent = ipostdom.get(current)
                if parent == current:
                    break
                current = parent
    return dependencies
