"""Condition algebra for annotated synchronization constraints.

Definition 3 of the paper annotates members of an activity's transitive
closure with the *conditional* edges encountered along the path: given
``a1 -> a2 ->_T a3 -> a4``, the closure of ``a1`` is
``{a2, a3(T@a2), a4(T@a2)}``.  An annotation is therefore a pair
``(guard, value)`` where ``guard`` is the activity whose outcome the edge is
conditioned on (``a2`` above) and ``value`` is the outcome (``"T"``).

This module implements the small algebra those annotations obey:

* a *fact* is ``(target, annotations)`` with ``annotations`` a frozenset of
  :class:`Cond`;
* a fact with fewer annotations is *stronger* (it holds in more executions)
  and therefore **subsumes** a fact over the same target with a superset of
  annotations;
* two annotations on the same guard with different values are
  **contradictory** — a path carrying both can never be taken;
* facts whose annotations differ only in the value of one guard, jointly
  covering that guard's whole outcome domain, **merge** into the fact without
  that guard (``r(T@d)`` and ``r(F@d)`` together are just ``r``);
* annotations implied by an activity's own control *guard* are vacuous and
  can be **stripped** (an activity that only runs when ``d = T`` gains
  nothing from a ``(d, T)`` annotation).

The last two rules define the *guard-aware* equivalence mode described in
DESIGN.md, which is required to reproduce the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, Iterable, Mapping, Set, Tuple

#: The default outcome domain of a boolean guard activity.
DEFAULT_DOMAIN: FrozenSet[str] = frozenset({"T", "F"})


@dataclass(frozen=True, order=True)
class Cond:
    """A single conditional annotation: ``guard`` evaluated to ``value``.

    ``guard`` names the activity whose outcome is tested (the source of a
    conditional happen-before edge) and ``value`` is the branch label,
    conventionally ``"T"`` or ``"F"`` but any string drawn from the guard's
    declared domain is allowed (multi-way ``switch`` constructs).
    """

    guard: str
    value: str

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        return "%s@%s" % (self.value, self.guard)


#: An annotation set attached to one closure fact.
Annotations = FrozenSet[Cond]

#: A closure fact: reached activity plus the path annotations.
Fact = Tuple[str, Annotations]

EMPTY: Annotations = frozenset()


class ConditionDomains:
    """Registry of guard outcome domains.

    Guards default to the boolean domain ``{"T", "F"}``.  Multi-way guards
    (e.g. a three-case ``switch``) declare their domain explicitly so that
    complementary-cover merging knows when a set of values is exhaustive.
    """

    def __init__(self, domains: Mapping[str, Iterable[str]] | None = None) -> None:
        self._domains: Dict[str, FrozenSet[str]] = {}
        if domains:
            for guard, values in domains.items():
                self.declare(guard, values)

    def declare(self, guard: str, values: Iterable[str]) -> None:
        """Declare the full outcome domain of ``guard``."""
        domain = frozenset(values)
        if not domain:
            raise ValueError("guard %r must have a non-empty domain" % guard)
        self._domains[guard] = domain

    def domain(self, guard: str) -> FrozenSet[str]:
        """Return the outcome domain of ``guard`` (boolean by default)."""
        return self._domains.get(guard, DEFAULT_DOMAIN)

    def copy(self) -> "ConditionDomains":
        return ConditionDomains({g: set(d) for g, d in self._domains.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConditionDomains):
            return NotImplemented
        return self._domains == other._domains

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ConditionDomains(%r)" % (self._domains,)


def is_contradictory(annotations: AbstractSet[Cond]) -> bool:
    """Return ``True`` if the annotation set can never be satisfied.

    A path annotated with both ``(g, T)`` and ``(g, F)`` requires the same
    guard to take two different outcomes in a single execution, which is
    impossible; such a path contributes no closure fact.
    """
    seen: Dict[str, str] = {}
    for cond in annotations:
        previous = seen.get(cond.guard)
        if previous is not None and previous != cond.value:
            return True
        seen[cond.guard] = cond.value
    return False


def subsumes(stronger: AbstractSet[Cond], weaker: AbstractSet[Cond]) -> bool:
    """Return ``True`` if a fact annotated ``stronger`` implies one annotated
    ``weaker`` over the same target.

    Fewer annotations means the happen-before obligation applies in more
    executions, so ``stronger`` subsumes ``weaker`` iff
    ``stronger <= weaker``.
    """
    return frozenset(stronger) <= frozenset(weaker)


def normalize_facts(facts: Iterable[Fact]) -> FrozenSet[Fact]:
    """Drop facts subsumed by a stronger fact over the same target.

    The result contains, per target, only the annotation sets that are
    minimal under set inclusion.  Contradictory facts are discarded.
    """
    by_target: Dict[str, Set[Annotations]] = {}
    for target, annotations in facts:
        if is_contradictory(annotations):
            continue
        by_target.setdefault(target, set()).add(frozenset(annotations))

    result: Set[Fact] = set()
    for target, annotation_sets in by_target.items():
        for candidate in annotation_sets:
            dominated = any(
                other < candidate for other in annotation_sets if other != candidate
            )
            if not dominated:
                result.add((target, candidate))
    return frozenset(result)


def merge_complementary(
    facts: Iterable[Fact],
    domains: ConditionDomains | None = None,
    can_merge=None,
) -> FrozenSet[Fact]:
    """Merge facts whose conditions jointly cover a guard's whole domain.

    If for some target ``t``, base annotations ``A`` and guard ``g`` the
    facts ``(t, A | {(g, v)})`` are present for *every* ``v`` in ``g``'s
    domain, they collapse into ``(t, A)``: the ordering holds whichever way
    the guard goes.  Merging runs to a fixpoint (a merge may enable another)
    and the result is subsumption-normalized.

    ``can_merge(guard, base, target)`` optionally vetoes a merge: the
    collapse is only sound when the guard is certain to *execute* in every
    execution where the base annotations hold (otherwise neither branch
    ordering materializes).  Callers with guard metadata pass a predicate
    checking that the guard's own execution guard is implied by ``base``
    plus the execution guards of the fact's endpoints.
    """
    if domains is None:
        domains = ConditionDomains()
    current: Set[Fact] = set(normalize_facts(facts))
    changed = True
    while changed:
        changed = False
        by_base: Dict[Tuple[str, Annotations, str], Set[str]] = {}
        for target, annotations in current:
            for cond in annotations:
                base = frozenset(annotations - {cond})
                by_base.setdefault((target, base, cond.guard), set()).add(cond.value)
        for (target, base, guard), values in by_base.items():
            if values >= domains.domain(guard):
                if can_merge is not None and not can_merge(guard, base, target):
                    continue
                merged: Fact = (target, base)
                if merged not in current:
                    current = set(normalize_facts(current | {merged}))
                    changed = True
                    break
    return frozenset(normalize_facts(current))


def strip_implied(
    annotations: AbstractSet[Cond], implied: AbstractSet[Cond]
) -> Annotations:
    """Remove annotations that are implied anyway.

    Used by guard-aware equivalence: when comparing closure facts observed
    from a source activity, any annotation contained in the *execution
    guard* of either endpoint is vacuous — in every execution where the
    endpoint runs at all, that condition already holds.
    """
    return frozenset(annotations) - frozenset(implied)
