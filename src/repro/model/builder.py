"""Fluent builder for :class:`~repro.model.process.BusinessProcess`.

The builder keeps workload definitions short and declarative::

    process = (
        ProcessBuilder("Purchasing")
        .service("Credit", asynchronous=True)
        .receive("recClient_po", writes=["po"])
        .invoke("invCredit_po", service="Credit", port="Credit", reads=["po"])
        .receive("recCredit_au", service="Credit", writes=["au"])
        .guard("if_au", reads=["au"])
        ...
        .build()
    )
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import ModelError
from repro.model.activity import Activity, ActivityKind
from repro.model.process import Branch, BusinessProcess
from repro.model.service import PortRef, Service
from repro.model.variables import Variable


def _frozen(names: Optional[Iterable[str]]) -> frozenset:
    return frozenset(names or ())


class ProcessBuilder:
    """Chainable construction of a business process."""

    def __init__(self, name: str) -> None:
        self._process = BusinessProcess(name)

    # -- services & variables ------------------------------------------------

    def service(
        self,
        name: str,
        ports: Optional[Sequence[str]] = None,
        asynchronous: bool = False,
        sequential: bool = False,
        latency: float = 1.0,
    ) -> "ProcessBuilder":
        """Register a remote service (see :class:`~repro.model.service.Service`)."""
        self._process.add_service(
            Service(
                name,
                ports=ports,
                asynchronous=asynchronous,
                sequential=sequential,
                latency=latency,
            )
        )
        return self

    def variable(self, name: str, type_name: str = "message") -> "ProcessBuilder":
        self._process.add_variable(Variable(name, type_name))
        return self

    # -- activities ------------------------------------------------------------

    def _add(
        self,
        name: str,
        kind: ActivityKind,
        reads: Optional[Iterable[str]] = None,
        writes: Optional[Iterable[str]] = None,
        port: Optional[PortRef] = None,
        outcomes: Optional[Iterable[str]] = None,
        duration: float = 1.0,
    ) -> "ProcessBuilder":
        self._process.add_activity(
            Activity(
                name=name,
                kind=kind,
                reads=_frozen(reads),
                writes=_frozen(writes),
                port=port,
                outcomes=_frozen(outcomes),
                duration=duration,
            )
        )
        return self

    def receive(
        self,
        name: str,
        service: Optional[str] = None,
        writes: Optional[Iterable[str]] = None,
        duration: float = 1.0,
    ) -> "ProcessBuilder":
        """A receive activity.

        With ``service`` set, the activity listens on that service's dummy
        callback port; otherwise it receives from the process client.
        """
        port: Optional[PortRef] = None
        if service is not None:
            registered = self._process.service(service)
            if registered.dummy_port is None:
                raise ModelError(
                    "receive %r: service %r is not asynchronous (no callback port)"
                    % (name, service)
                )
            port = registered.dummy_port.ref
        return self._add(name, ActivityKind.RECEIVE, writes=writes, port=port, duration=duration)

    def invoke(
        self,
        name: str,
        service: str,
        port: Optional[str] = None,
        reads: Optional[Iterable[str]] = None,
        duration: float = 1.0,
    ) -> "ProcessBuilder":
        """An asynchronous invocation of ``service`` at ``port``.

        ``port`` defaults to the service's single request port.
        """
        registered = self._process.service(service)
        if port is None:
            request_ports = registered.request_ports
            if len(request_ports) != 1:
                raise ModelError(
                    "invoke %r: service %r has %d request ports; specify one"
                    % (name, service, len(request_ports))
                )
            port = request_ports[0].name
        return self._add(
            name,
            ActivityKind.INVOKE,
            reads=reads,
            port=registered.port_ref(port),
            duration=duration,
        )

    def reply(
        self, name: str, reads: Optional[Iterable[str]] = None, duration: float = 1.0
    ) -> "ProcessBuilder":
        return self._add(name, ActivityKind.REPLY, reads=reads, duration=duration)

    def assign(
        self,
        name: str,
        writes: Optional[Iterable[str]] = None,
        reads: Optional[Iterable[str]] = None,
        duration: float = 1.0,
    ) -> "ProcessBuilder":
        return self._add(name, ActivityKind.ASSIGN, reads=reads, writes=writes, duration=duration)

    def compute(
        self,
        name: str,
        reads: Optional[Iterable[str]] = None,
        writes: Optional[Iterable[str]] = None,
        duration: float = 1.0,
    ) -> "ProcessBuilder":
        return self._add(name, ActivityKind.COMPUTE, reads=reads, writes=writes, duration=duration)

    def guard(
        self,
        name: str,
        reads: Optional[Iterable[str]] = None,
        outcomes: Optional[Iterable[str]] = None,
        duration: float = 1.0,
    ) -> "ProcessBuilder":
        """A guard (condition-evaluating) activity such as ``if_au``."""
        return self._add(
            name, ActivityKind.GUARD, reads=reads, outcomes=outcomes, duration=duration
        )

    # -- control structure -------------------------------------------------------

    def branch(
        self,
        guard: str,
        cases: Mapping[str, Sequence[str]],
        join: Optional[str] = None,
    ) -> "ProcessBuilder":
        """Declare the conditional region guarded by ``guard``.

        Must be called after the guard and all member activities exist.
        """
        self._process.add_branch(
            Branch(guard=guard, cases={k: tuple(v) for k, v in cases.items()}, join=join)
        )
        return self

    # -- finish ---------------------------------------------------------------------

    def build(self) -> BusinessProcess:
        """Return the constructed process."""
        return self._process
