"""Business-process model: activities, services, ports, variables, processes.

This is the *interaction-centric program* substrate of the paper (Section 3):
a process is a set of named activities that read/write process variables and
interact with remote services through ports.  No ordering lives here — all
sequencing is expressed separately as dependencies (``repro.deps``) or, for
the baseline, as sequencing constructs (``repro.constructs``).
"""

from repro.model.activity import Activity, ActivityKind, ActivityState
from repro.model.service import Port, PortRef, Service
from repro.model.variables import Variable
from repro.model.process import Branch, BusinessProcess
from repro.model.builder import ProcessBuilder

__all__ = [
    "Activity",
    "ActivityKind",
    "ActivityState",
    "Branch",
    "BusinessProcess",
    "Port",
    "PortRef",
    "ProcessBuilder",
    "Service",
    "Variable",
]
