"""The :class:`BusinessProcess` container and branch declarations.

A process is *unordered*: it owns activities, variables, services and branch
declarations, but no sequencing.  All ordering is derived (data/control/
service dependencies) or supplied (cooperation dependencies) by the
``repro.deps`` layer — this is the dataflow-programming stance of the paper,
where dependencies, not constructs, drive scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import ModelError
from repro.model.activity import Activity, ActivityKind
from repro.model.service import Port, Service
from repro.model.variables import Variable


@dataclass(frozen=True)
class Branch:
    """A declared conditional region guarded by a ``GUARD`` activity.

    ``cases`` maps each outcome of the guard (e.g. ``"T"``/``"F"``) to the
    activities that execute only under that outcome.  ``join`` optionally
    names the activity where the branches re-converge; per Figure 4 the join
    activity post-dominates the guard and receives an *unconditional*
    ("NONE") control edge rather than a conditional one.
    """

    guard: str
    cases: Mapping[str, Tuple[str, ...]]
    join: Optional[str] = None

    def __post_init__(self) -> None:
        frozen_cases = {
            outcome: tuple(activities) for outcome, activities in self.cases.items()
        }
        object.__setattr__(self, "cases", frozen_cases)
        if not frozen_cases:
            raise ModelError("branch on %r declares no cases" % self.guard)

    @property
    def outcomes(self) -> FrozenSet[str]:
        return frozenset(self.cases)

    def members(self) -> FrozenSet[str]:
        """All activities inside any case of this branch."""
        return frozenset(
            activity for activities in self.cases.values() for activity in activities
        )

    def outcome_of(self, activity: str) -> Optional[str]:
        """The outcome under which ``activity`` executes, or ``None``."""
        for outcome, activities in self.cases.items():
            if activity in activities:
                return outcome
        return None


class BusinessProcess:
    """A business process: activities + services + variables + branches.

    The class enforces referential integrity eagerly — every port an
    activity binds to must belong to a registered service, every branch
    member must be a registered activity, and so on — so downstream
    algorithms can assume a well-formed model.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ModelError("process name must be non-empty")
        self.name = name
        self._activities: Dict[str, Activity] = {}
        self._services: Dict[str, Service] = {}
        self._variables: Dict[str, Variable] = {}
        self._branches: List[Branch] = []

    # -- registration -------------------------------------------------------

    def add_service(self, service: Service) -> Service:
        if service.name in self._services:
            raise ModelError("service %r already registered" % service.name)
        self._services[service.name] = service
        return service

    def add_variable(self, variable: Variable) -> Variable:
        if variable.name in self._variables:
            raise ModelError("variable %r already registered" % variable.name)
        self._variables[variable.name] = variable
        return variable

    def add_activity(self, activity: Activity) -> Activity:
        if activity.name in self._activities:
            raise ModelError("activity %r already registered" % activity.name)
        if activity.port is not None:
            self._resolve_port(activity)
        for variable_name in activity.reads | activity.writes:
            if variable_name not in self._variables:
                self._variables[variable_name] = Variable(variable_name)
        self._activities[activity.name] = activity
        return activity

    def add_branch(self, branch: Branch) -> Branch:
        guard = self.activity(branch.guard)
        if not guard.is_guard:
            raise ModelError(
                "branch guard %r must be a GUARD activity, got %s"
                % (branch.guard, guard.kind.value)
            )
        unknown_outcomes = branch.outcomes - guard.outcomes
        if unknown_outcomes:
            raise ModelError(
                "branch on %r uses outcomes %s not in the guard's domain %s"
                % (branch.guard, sorted(unknown_outcomes), sorted(guard.outcomes))
            )
        for member in branch.members():
            self.activity(member)  # raises if unknown
        if branch.join is not None:
            self.activity(branch.join)
        self._branches.append(branch)
        return branch

    def _resolve_port(self, activity: Activity) -> Port:
        port_ref = activity.port
        assert port_ref is not None
        if port_ref.service not in self._services:
            raise ModelError(
                "activity %r is bound to unknown service %r"
                % (activity.name, port_ref.service)
            )
        service = self._services[port_ref.service]
        port = service.port(port_ref.port)
        if activity.kind is ActivityKind.INVOKE and port.is_dummy:
            raise ModelError(
                "invoke activity %r cannot target the dummy callback port %r"
                % (activity.name, port.name)
            )
        if activity.kind is ActivityKind.RECEIVE and not port.is_dummy:
            raise ModelError(
                "receive activity %r must listen on a dummy callback port, not %r"
                % (activity.name, port.name)
            )
        return port

    # -- queries ------------------------------------------------------------

    def activity(self, name: str) -> Activity:
        try:
            return self._activities[name]
        except KeyError:
            raise ModelError(
                "process %r has no activity %r" % (self.name, name)
            ) from None

    def service(self, name: str) -> Service:
        try:
            return self._services[name]
        except KeyError:
            raise ModelError(
                "process %r has no service %r" % (self.name, name)
            ) from None

    @property
    def activities(self) -> List[Activity]:
        return list(self._activities.values())

    @property
    def activity_names(self) -> List[str]:
        return list(self._activities)

    @property
    def services(self) -> List[Service]:
        return list(self._services.values())

    @property
    def variables(self) -> List[Variable]:
        return list(self._variables.values())

    @property
    def branches(self) -> List[Branch]:
        return list(self._branches)

    def has_activity(self, name: str) -> bool:
        return name in self._activities

    def port_names(self) -> List[str]:
        """Display names of every service port (the external node set ``S``)."""
        return [port.name for service in self.services for port in service.all_ports]

    def writers_of(self, variable_name: str) -> List[Activity]:
        return [a for a in self.activities if variable_name in a.writes]

    def readers_of(self, variable_name: str) -> List[Activity]:
        return [a for a in self.activities if variable_name in a.reads]

    def guard_of(self, activity_name: str) -> List[Tuple[str, str]]:
        """The control guard of an activity as ``(guard, outcome)`` pairs.

        An activity nested in several branches accumulates one pair per
        enclosing branch.  Used by the guard-aware equivalence semantics.
        """
        pairs: List[Tuple[str, str]] = []
        for branch in self._branches:
            outcome = branch.outcome_of(activity_name)
            if outcome is not None:
                pairs.append((branch.guard, outcome))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BusinessProcess(%r, %d activities, %d services)" % (
            self.name,
            len(self._activities),
            len(self._services),
        )
