"""Process variables (messages) exchanged between activities.

Variables are the carriers of *data* dependencies: an activity writing a
variable happens-before every activity reading it (Section 3.1).  Because
remote-service parameters are call-by-value and service execution has no
side effect on process state, definition-use is the only data-dependency
shape the scheduler needs (no anti/output dependencies, per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Variable:
    """A named, typed process variable.

    ``type_name`` is informational (it flows into the generated BPEL
    ``<variable>`` declarations) and does not affect scheduling.
    """

    name: str
    type_name: str = "message"

    def __str__(self) -> str:
        return self.name
