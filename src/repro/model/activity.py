"""Activities and their lifecycle states.

Following DSCL (Section 4.1), every activity's life cycle is the state
sequence *start* (``S``) -> *run* (``R``) -> *finish* (``F``); constraints
are expressed between states of different activities.  Activities carry the
metadata the dependency extractors need: the variables they read and write
(data dependencies), the service port they are bound to (service
dependencies) and, for guard activities, the outcome domain (control
dependencies / colored tokens).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.errors import ModelError
from repro.model.service import PortRef


class ActivityState(enum.Enum):
    """The three DSCL lifecycle states of an activity."""

    START = "S"
    RUN = "R"
    FINISH = "F"

    @classmethod
    def from_letter(cls, letter: str) -> "ActivityState":
        for state in cls:
            if state.value == letter:
                return state
        raise ValueError("unknown activity state %r (expected S, R or F)" % letter)

    def __str__(self) -> str:
        return self.value


class ActivityKind(enum.Enum):
    """What an activity does, in the paper's ``actionService_parameter`` style."""

    #: Receive a message from the client or from a service callback port.
    RECEIVE = "receive"
    #: Asynchronously invoke a remote service port.
    INVOKE = "invoke"
    #: Send a reply back to the process client.
    REPLY = "reply"
    #: Local computation that assigns process variables (e.g. ``set_oi``).
    ASSIGN = "assign"
    #: Evaluate a condition and expose its outcome (e.g. ``if_au``).
    GUARD = "guard"
    #: Any other local computation.
    COMPUTE = "compute"
    #: Internal coordinator introduced by HappenTogether desugaring.
    COORDINATOR = "coordinator"


@dataclass(frozen=True)
class Activity:
    """An immutable activity declaration.

    Parameters
    ----------
    name:
        Unique activity name, e.g. ``"invPurchase_po"``.
    kind:
        The :class:`ActivityKind`.
    reads / writes:
        Names of process variables consumed / produced.  Definition-use
        pairs over these sets yield the data dependencies of Section 3.1.
    port:
        For ``INVOKE``: the service port this activity calls.  For
        ``RECEIVE``: the (dummy) callback port it listens on, or ``None``
        when receiving from the process client.
    outcomes:
        For ``GUARD`` activities, the outcome domain (default ``{T, F}``);
        empty for every other kind.
    duration:
        Nominal execution time used by the discrete-event simulator.
    """

    name: str
    kind: ActivityKind
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    port: Optional[PortRef] = None
    outcomes: FrozenSet[str] = frozenset()
    duration: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("activity name must be non-empty")
        if self.kind is ActivityKind.GUARD and not self.outcomes:
            object.__setattr__(self, "outcomes", frozenset({"T", "F"}))
        if self.kind is not ActivityKind.GUARD and self.outcomes:
            raise ModelError(
                "activity %r: only GUARD activities may declare outcomes" % self.name
            )
        if self.kind is ActivityKind.INVOKE and self.port is None:
            raise ModelError("invoke activity %r must be bound to a service port" % self.name)
        if self.duration < 0:
            raise ModelError("activity %r: duration must be non-negative" % self.name)

    @property
    def is_guard(self) -> bool:
        return self.kind is ActivityKind.GUARD

    @property
    def interacts(self) -> bool:
        """Does this activity talk to a remote service port?"""
        return self.port is not None

    def state(self, state: ActivityState) -> "StateRef":
        """A reference to one of this activity's lifecycle states."""
        return StateRef(self.name, state)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class StateRef:
    """A reference to a lifecycle state of a named activity, e.g. ``F(a1)``."""

    activity: str
    state: ActivityState = field(compare=True)

    def __str__(self) -> str:
        return "%s(%s)" % (self.state.value, self.activity)
