"""Remote services and their ports.

Section 3.3 of the paper names the ports of a service ``s`` as
``s1, s2, ..., sn`` (or just ``s`` when there is a single port) and adds a
*dummy* callback port ``s_d`` when the service replies asynchronously.
Service dependencies (Table 1) connect invocation activities to ports, ports
to one another (declared invocation orderings, request-before-callback) and
the dummy port to the receive activities listening on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError

#: Suffix used for dummy callback ports, as in the paper (``Purchase_d``).
DUMMY_SUFFIX = "_d"


@dataclass(frozen=True, order=True)
class PortRef:
    """A reference to a port of a service: ``(service name, port name)``."""

    service: str
    port: str

    def __str__(self) -> str:
        return self.port


@dataclass(frozen=True)
class Port:
    """A single port of a service.

    ``is_dummy`` marks the synthetic callback port through which an
    asynchronous service calls back into the process.
    """

    service: str
    name: str
    is_dummy: bool = False

    @property
    def ref(self) -> PortRef:
        return PortRef(self.service, self.name)

    def __str__(self) -> str:
        return self.name


class Service:
    """A remote service: named ports plus interaction constraints.

    Parameters
    ----------
    name:
        Service name, e.g. ``"Purchase"``.
    ports:
        Request-port names in declaration order.  When omitted, a single
        port named after the service is created (the paper's convention
        for single-port services such as ``Credit``).
    asynchronous:
        When true, a dummy callback port ``<name>_d`` is added and every
        request port is constrained to precede it (a callback can only
        happen after the request that triggers it).
    sequential:
        When true, the service is *state-aware* and requires its request
        ports to be invoked in declaration order (the ``Purchase`` service
        of Section 2).  Produces the ``s1 ->s s2 ->s ...`` constraints.
    latency:
        Nominal processing latency used by the discrete-event simulator.
    """

    def __init__(
        self,
        name: str,
        ports: Optional[Sequence[str]] = None,
        asynchronous: bool = False,
        sequential: bool = False,
        latency: float = 1.0,
    ) -> None:
        if not name:
            raise ModelError("service name must be non-empty")
        self.name = name
        self.asynchronous = asynchronous
        self.sequential = sequential
        self.latency = latency

        if ports is None:
            ports = [name]
        if not ports:
            raise ModelError("service %r must declare at least one port" % name)
        self._ports: Dict[str, Port] = {}
        self._request_order: List[str] = []
        for port_name in ports:
            if port_name in self._ports:
                raise ModelError("service %r declares port %r twice" % (name, port_name))
            self._ports[port_name] = Port(service=name, name=port_name)
            self._request_order.append(port_name)

        self.dummy_port: Optional[Port] = None
        if asynchronous:
            dummy_name = name + DUMMY_SUFFIX
            if dummy_name in self._ports:
                raise ModelError(
                    "service %r: port name %r collides with the dummy callback port"
                    % (name, dummy_name)
                )
            self.dummy_port = Port(service=name, name=dummy_name, is_dummy=True)
            self._ports[dummy_name] = self.dummy_port

    # -- queries -----------------------------------------------------------

    @property
    def request_ports(self) -> List[Port]:
        """Request ports in declaration order (dummy port excluded)."""
        return [self._ports[port_name] for port_name in self._request_order]

    @property
    def all_ports(self) -> List[Port]:
        ports = self.request_ports
        if self.dummy_port is not None:
            ports = ports + [self.dummy_port]
        return ports

    def port(self, port_name: str) -> Port:
        try:
            return self._ports[port_name]
        except KeyError:
            raise ModelError(
                "service %r has no port %r (known: %s)"
                % (self.name, port_name, ", ".join(self._ports))
            ) from None

    def port_ref(self, port_name: str) -> PortRef:
        return self.port(port_name).ref

    def internal_orderings(self) -> List[Tuple[PortRef, PortRef]]:
        """Port-to-port constraints internal to the service.

        Sequential (state-aware) services order their request ports; an
        asynchronous service's callback port follows every request port.
        These become the ``si ->s sj`` rows of Table 1.
        """
        orderings: List[Tuple[PortRef, PortRef]] = []
        if self.sequential:
            request_ports = self.request_ports
            for earlier, later in zip(request_ports, request_ports[1:]):
                orderings.append((earlier.ref, later.ref))
        if self.dummy_port is not None:
            for request_port in self.request_ports:
                orderings.append((request_port.ref, self.dummy_port.ref))
        return orderings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.asynchronous:
            flags.append("async")
        if self.sequential:
            flags.append("sequential")
        return "Service(%r, ports=%r%s)" % (
            self.name,
            [port.name for port in self.request_ports],
            (", " + ", ".join(flags)) if flags else "",
        )
