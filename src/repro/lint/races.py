"""Static synchronization-race detection.

The paper's central claim is that explicit dependencies make
synchronization *analyzable*; this module is the analysis that claim begs
for.  Two activities **race** on a variable ``v`` when

* both access ``v`` and at least one access is a write,
* no happen-before path orders them — in *either* direction — in every
  execution where both run, and
* they can actually co-occur (activities on exclusive branch arms, whose
  execution guards are contradictory, never race — the guard-awareness
  that keeps ``set_oi`` vs. ``recPurchase_oi`` in Purchasing from
  false-positiving), and no ``Exclusive`` relation serializes them at
  runtime.

Ordering is judged on the guard-aware annotated closure
(:mod:`repro.core.closure`): a fact ``b`` in ``a+`` with an *empty*
residual annotation set means ``a`` precedes ``b`` in every execution in
which both run (annotations implied by either endpoint's own execution
guard are already stripped, and complementary conditional facts are
merged).  A fact that survives only under some extra condition does **not**
order the pair — on the other branch both run unordered, which is exactly
a race.

Because minimization preserves guard-aware transitive equivalence, a
minimal constraint set is race-free **iff** the full set is — a property
the test suite checks with hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.conditions import is_contradictory
from repro.core.closure import Semantics, closure_map
from repro.core.constraints import SynchronizationConstraintSet
from repro.dscl.ast import Exclusive
from repro.model.process import BusinessProcess

#: Access maps: variable -> the activities reading / writing it.
AccessMap = Mapping[str, AbstractSet[str]]

WRITE_WRITE = "write/write"
READ_WRITE = "read/write"


@dataclass(frozen=True)
class Race:
    """An unordered pair of conflicting accesses to one variable.

    ``first``/``second`` are sorted lexicographically (the pair is
    symmetric); ``kind`` is :data:`WRITE_WRITE` or :data:`READ_WRITE`.  For
    read/write races ``writer`` names the writing side.
    """

    variable: str
    first: str
    second: str
    kind: str
    writer: str = ""

    def __str__(self) -> str:
        return "%s race on %r between %r and %r" % (
            self.kind,
            self.variable,
            self.first,
            self.second,
        )


def access_maps_from_process(
    process: BusinessProcess,
) -> Tuple[Dict[str, Set[str]], Dict[str, Set[str]]]:
    """``(reads, writes)`` maps ``variable -> accessing activities``."""
    reads: Dict[str, Set[str]] = {}
    writes: Dict[str, Set[str]] = {}
    for activity in process.activities:
        for variable in activity.reads:
            reads.setdefault(variable, set()).add(activity.name)
        for variable in activity.writes:
            writes.setdefault(variable, set()).add(activity.name)
    return reads, writes


def ordered_pairs(
    sc: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> Set[Tuple[str, str]]:
    """All pairs ``(a, b)`` such that ``a`` precedes ``b`` whenever both run.

    Under the guard-aware semantics a closure fact with an empty residual
    annotation set is exactly that guarantee; under strict/reachability
    semantics the same criterion degrades gracefully (strict keeps more
    annotations, so it reports fewer ordered pairs — a sound
    over-approximation of racing).
    """
    pairs: Set[Tuple[str, str]] = set()
    for source, facts in closure_map(sc, semantics).items():
        for target, annotations in facts:
            if not annotations:
                pairs.add((source, target))
    return pairs


def _exclusive_pairs(exclusives: Iterable[Exclusive]) -> Set[FrozenSet[str]]:
    return {
        frozenset({exclusive.left.activity, exclusive.right.activity})
        for exclusive in exclusives
    }


def find_races_from_accesses(
    sc: SynchronizationConstraintSet,
    reads: AccessMap,
    writes: AccessMap,
    exclusives: Iterable[Exclusive] = (),
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> List[Race]:
    """Race detection given explicit variable-access maps.

    Activities unknown to ``sc`` are ignored (a caller may pass a process
    whose activity set is a superset of the constraint set's).
    """
    known = set(sc.activities)
    ordered = ordered_pairs(sc, semantics)
    serialized = _exclusive_pairs(exclusives)

    def is_race(a: str, b: str) -> bool:
        if a == b or a not in known or b not in known:
            return False
        if (a, b) in ordered or (b, a) in ordered:
            return False
        if frozenset({a, b}) in serialized:
            return False
        # Exclusive branch arms: contradictory execution guards mean the
        # two activities never co-occur in any single execution.
        if is_contradictory(sc.effective_guard(a) | sc.effective_guard(b)):
            return False
        return True

    races: Dict[Tuple[str, str, str], Race] = {}
    variables = sorted(set(reads) | set(writes))
    for variable in variables:
        variable_writers = sorted(writes.get(variable, ()))
        variable_readers = sorted(reads.get(variable, ()))
        for i, first_writer in enumerate(variable_writers):
            for second_writer in variable_writers[i + 1 :]:
                if is_race(first_writer, second_writer):
                    key = (variable, first_writer, second_writer)
                    races[key] = Race(
                        variable=variable,
                        first=first_writer,
                        second=second_writer,
                        kind=WRITE_WRITE,
                    )
        for writer in variable_writers:
            for reader in variable_readers:
                if reader == writer:
                    continue
                pair = tuple(sorted((writer, reader)))
                key = (variable, pair[0], pair[1])
                if key in races:
                    continue  # already a write/write race on this pair
                if is_race(writer, reader):
                    races[key] = Race(
                        variable=variable,
                        first=pair[0],
                        second=pair[1],
                        kind=READ_WRITE,
                        writer=writer,
                    )
    return [races[key] for key in sorted(races)]


def find_races(
    sc: SynchronizationConstraintSet,
    process: Optional[BusinessProcess] = None,
    reads: Optional[AccessMap] = None,
    writes: Optional[AccessMap] = None,
    exclusives: Iterable[Exclusive] = (),
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> List[Race]:
    """Race detection over a constraint set.

    Accesses come from ``process`` (the normal route) or from explicit
    ``reads``/``writes`` maps (standalone sets in tests and tools).
    """
    if process is not None:
        derived_reads, derived_writes = access_maps_from_process(process)
        return find_races_from_accesses(
            sc, derived_reads, derived_writes, exclusives, semantics
        )
    return find_races_from_accesses(
        sc, reads or {}, writes or {}, exclusives, semantics
    )
