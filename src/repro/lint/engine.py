"""The lint engine: analysis context, rule registry and runner.

Rules are plain functions ``check(context) -> Iterable[Diagnostic]``
registered with the :func:`rule` decorator under a stable code.  The
engine (:func:`run_lint`) runs every enabled rule over a
:class:`LintContext` — the bundle of process model, constraint sets and
derived caches the rules share — then applies per-rule selection and
baseline suppression and returns a
:class:`~repro.lint.diagnostics.LintReport`.

Rule codes are grouped by prefix, which ``--select``/``--ignore`` honor:

* ``SYNC`` — synchronization safety (races, cycles, dead activities);
* ``SVC``  — service-protocol conformance;
* ``RED``  — redundancy (constraints the minimizer would remove);
* ``SPEC`` — over-/under-specification of a constructs tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.conditions import Fact
from repro.core.closure import Semantics, closure_map
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.dscl.ast import Exclusive, HappenBefore, Program
from repro.lint.baseline import Baseline
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.model.process import BusinessProcess
from repro.validation.conflicts import ConflictReport, find_conflicts
from repro.wscl.model import Conversation

CheckFunction = Callable[["LintContext"], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """A registered analyzer."""

    code: str
    name: str
    summary: str
    severity: Severity
    check: CheckFunction

    def run(self, context: "LintContext") -> List[Diagnostic]:
        return list(self.check(context))


_REGISTRY: Dict[str, Rule] = {}


def rule(
    code: str, name: str, summary: str, severity: Severity
) -> Callable[[CheckFunction], CheckFunction]:
    """Register ``check`` under ``code``; duplicate codes are a bug."""

    def register(check: CheckFunction) -> CheckFunction:
        if code in _REGISTRY:
            raise ValueError("rule code %r registered twice" % code)
        _REGISTRY[code] = Rule(
            code=code, name=name, summary=summary, severity=severity, check=check
        )
        return check

    return register


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    _ensure_rules_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    _ensure_rules_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            "unknown rule code %r (known: %s)" % (code, ", ".join(sorted(_REGISTRY)))
        ) from None


def _ensure_rules_loaded() -> None:
    # Rule modules self-register on import; importing lazily here avoids a
    # circular import at load time.  Every rule-bearing subsystem is pulled
    # in so prefix selection (``--select VER``) and the SARIF rule table
    # see the complete registry regardless of which command is running.
    import repro.conformance.rules  # noqa: F401
    import repro.deploy.rules  # noqa: F401
    import repro.discover.rules  # noqa: F401
    import repro.lint.rules  # noqa: F401
    import repro.runtime.rules  # noqa: F401
    import repro.verify.rules  # noqa: F401


@dataclass(frozen=True)
class LintConfig:
    """Rule selection, severity gating and baseline suppression.

    ``select``/``ignore`` hold exact rule codes or prefixes (``"SYNC"``
    enables/disables the whole group).  ``select=None`` means *all rules*.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    fail_on: Severity = Severity.ERROR
    baseline: Optional[Baseline] = None

    @classmethod
    def from_codes(
        cls,
        select: Iterable[str] = (),
        ignore: Iterable[str] = (),
        fail_on: str = "error",
        baseline: Optional[Baseline] = None,
    ) -> "LintConfig":
        selected = frozenset(code.strip().upper() for code in select if code.strip())
        return cls(
            select=selected or None,
            ignore=frozenset(code.strip().upper() for code in ignore if code.strip()),
            fail_on=Severity.from_name(fail_on),
            baseline=baseline,
        )

    def enabled(self, code: str) -> bool:
        def matches(patterns: FrozenSet[str]) -> bool:
            return any(code == p or code.startswith(p) for p in patterns)

        if self.select is not None and not matches(self.select):
            return False
        return not matches(self.ignore)


class LintContext:
    """Everything the rules may consult, with shared caches.

    ``sc`` is the set the rules analyze — normally the translated ``ASC``
    (activities only, full ordering information).  ``merged`` optionally
    carries the pre-translation set (with external port nodes) for rules
    that want to look at service ports directly.
    """

    def __init__(
        self,
        sc: SynchronizationConstraintSet,
        process: Optional[BusinessProcess] = None,
        merged: Optional[SynchronizationConstraintSet] = None,
        minimal: Optional[SynchronizationConstraintSet] = None,
        exclusives: Iterable[Exclusive] = (),
        program: Optional[Program] = None,
        construct=None,
        conversations: Iterable[Conversation] = (),
        reads: Optional[Mapping[str, Set[str]]] = None,
        writes: Optional[Mapping[str, Set[str]]] = None,
        semantics: Semantics = Semantics.GUARD_AWARE,
    ) -> None:
        self.sc = sc
        self.process = process
        self.merged = merged
        self.exclusives: Tuple[Exclusive, ...] = tuple(exclusives)
        self.program = program
        self.construct = construct
        self.conversations: Tuple[Conversation, ...] = tuple(conversations)
        self.reads = reads
        self.writes = writes
        self.semantics = semantics
        self._minimal = minimal
        self._closure: Optional[Dict[str, FrozenSet[Fact]]] = None
        self._conflicts: Optional[ConflictReport] = None
        self._spans: Optional[Dict[Tuple[str, str, Optional[str]], Tuple[int, int]]] = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_weave(cls, result, construct=None, conversations=()) -> "LintContext":
        """Context over a :class:`~repro.core.pipeline.WeaveResult`."""
        return cls(
            sc=result.asc,
            process=result.process,
            merged=result.merged,
            minimal=result.minimal,
            exclusives=result.exclusives,
            program=result.program,
            construct=construct,
            conversations=conversations,
            semantics=result.semantics,
        )

    @classmethod
    def from_constraints(
        cls,
        sc: SynchronizationConstraintSet,
        process: Optional[BusinessProcess] = None,
        **kwargs,
    ) -> "LintContext":
        """Context over a bare constraint set (no pipeline run required)."""
        return cls(sc=sc, process=process, **kwargs)

    # -- shared caches ------------------------------------------------------

    @property
    def has_cycles(self) -> bool:
        return bool(self.conflicts.cycles)

    @property
    def conflicts(self) -> ConflictReport:
        if self._conflicts is None:
            self._conflicts = find_conflicts(self.sc, exclusives=self.exclusives)
        return self._conflicts

    @property
    def minimal(self) -> Optional[SynchronizationConstraintSet]:
        """The minimized set; computed on demand, never for cyclic input."""
        if self._minimal is None and not self.has_cycles:
            from repro.core.minimize import minimize

            self._minimal = minimize(self.sc, semantics=self.semantics)
        return self._minimal

    def closure(self) -> Dict[str, FrozenSet[Fact]]:
        if self._closure is None:
            self._closure = closure_map(self.sc, self.semantics)
        return self._closure

    def ordered(self, first: str, second: str) -> bool:
        """Does ``first`` precede ``second`` whenever both run?"""
        facts = self.closure().get(first, frozenset())
        return any(target == second and not anns for target, anns in facts)

    def span_of(self, constraint: Constraint) -> Optional[Tuple[int, int]]:
        """Line span of the constraint's DSCL statement, if a program is
        attached.  Lines are 1-based into the canonical
        :func:`repro.dscl.printer.to_text` rendering (provenance comments
        included)."""
        if self.program is None:
            return None
        if self._spans is None:
            self._spans = _program_spans(self.program)
        return self._spans.get(
            (constraint.source, constraint.target, constraint.condition)
        )


def _program_spans(
    program: Program,
) -> Dict[Tuple[str, str, Optional[str]], Tuple[int, int]]:
    """Map ``(source, target, condition)`` to DSCL statement line spans."""
    spans: Dict[Tuple[str, str, Optional[str]], Tuple[int, int]] = {}
    line = 0
    for statement in program:
        first = line + 1
        if getattr(statement, "provenance", ""):
            line += 1  # the "# provenance" comment line
        line += 1  # the statement itself
        if isinstance(statement, HappenBefore):
            key = (
                statement.left.activity,
                statement.right.activity,
                statement.condition,
            )
            spans.setdefault(key, (first, line))
    return spans


def run_lint(
    context: LintContext, config: Optional[LintConfig] = None
) -> LintReport:
    """Run every enabled rule over ``context`` and assemble the report."""
    if config is None:
        config = LintConfig()
    findings: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    rules_run: List[str] = []
    for registered in all_rules():
        if not config.enabled(registered.code):
            continue
        rules_run.append(registered.code)
        for diagnostic in registered.run(context):
            if config.baseline is not None and config.baseline.matches(diagnostic):
                suppressed.append(diagnostic)
            else:
                findings.append(diagnostic)
    return LintReport.from_diagnostics(
        findings, suppressed, rules_run=tuple(rules_run)
    )
