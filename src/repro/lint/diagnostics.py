"""Diagnostics: severities, source locations, findings and reports.

Every static-analysis rule (:mod:`repro.lint.rules`) emits
:class:`Diagnostic` records carrying a **stable rule code** (``SYNC001``,
``SVC002`` ...), a :class:`Severity`, a :class:`SourceLocation` pointing at
the offending activity/constraint/port (optionally with the line span of
the corresponding DSCL statement), free-text evidence, and — where the
analysis knows one — a concrete fix suggestion.

A :class:`LintReport` aggregates the findings of one engine run and knows
how to gate: ``exit_code(fail_on)`` is what the CLI returns, so CI can
fail a build on any finding at or above a chosen severity.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple


class Severity(enum.Enum):
    """Finding severity, ordered ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def at_least(self, threshold: "Severity") -> bool:
        return self.rank >= threshold.rank

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        for severity in cls:
            if severity.value == name:
                return severity
        raise ValueError(
            "unknown severity %r (expected info, warning or error)" % name
        )

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding points.

    ``kind`` classifies the logical location (``activity``, ``constraint``,
    ``port``, ``service``, ``variable`` or ``process``); ``name`` is the
    model element's name (for constraints, the ``source -> target``
    rendering).  ``span`` optionally carries the 1-based ``(first, last)``
    line range of the corresponding statement in the canonical DSCL
    rendering of the specification, so editors and SARIF viewers can jump
    to a textual position.
    """

    kind: str
    name: str
    span: Optional[Tuple[int, int]] = None

    @property
    def fully_qualified(self) -> str:
        return "%s:%s" % (self.kind, self.name)

    def __str__(self) -> str:
        if self.span is not None:
            return "%s (dscl:%d-%d)" % (self.fully_qualified, *self.span)
        return self.fully_qualified


def activity_location(name: str) -> SourceLocation:
    return SourceLocation("activity", name)


def constraint_location(
    source: str,
    target: str,
    condition: Optional[str] = None,
    span: Optional[Tuple[int, int]] = None,
) -> SourceLocation:
    if condition is None:
        rendered = "%s -> %s" % (source, target)
    else:
        rendered = "%s ->%s %s" % (source, condition, target)
    return SourceLocation("constraint", rendered, span=span)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule.

    ``evidence`` holds the facts the rule based its verdict on (variable
    names, covering paths, cycle members ...) — the analogue of the
    dependency ``rationale`` the paper insists on keeping first-class.
    ``fix`` is a human-actionable suggestion, when the rule can compute one.
    """

    code: str
    severity: Severity
    message: str
    location: SourceLocation
    related: Tuple[SourceLocation, ...] = ()
    evidence: Tuple[str, ...] = ()
    fix: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline suppression.

        Hashes the rule code, the primary and related locations and the
        evidence — everything that identifies *this* finding, nothing that
        depends on rule wording or finding order.
        """
        parts = [self.code, self.location.fully_qualified]
        parts.extend(sorted(loc.fully_qualified for loc in self.related))
        parts.extend(sorted(self.evidence))
        digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
        return digest[:16]

    def with_severity(self, severity: Severity) -> "Diagnostic":
        return replace(self, severity=severity)

    def render(self) -> str:
        """One-finding textual rendering (multi-line)."""
        lines = [
            "%s %s [%s] %s" % (self.severity.value, self.code, self.location, self.message)
        ]
        for item in self.evidence:
            lines.append("    evidence: %s" % item)
        if self.fix:
            lines.append("    fix: %s" % self.fix)
        return "\n".join(lines)

    def __str__(self) -> str:
        return "%s %s: %s" % (self.code, self.severity.value, self.message)


#: Sort key: errors first, then code, then location — deterministic output.
def _order_key(diagnostic: Diagnostic) -> Tuple:
    return (
        -diagnostic.severity.rank,
        diagnostic.code,
        diagnostic.location.fully_qualified,
        diagnostic.message,
    )


@dataclass(frozen=True)
class LintReport:
    """All findings of one lint run.

    ``findings`` are the active diagnostics; ``suppressed`` are findings
    matched by the baseline file (kept so tooling can report "N suppressed"
    and so a stale baseline is detectable).
    """

    findings: Tuple[Diagnostic, ...]
    suppressed: Tuple[Diagnostic, ...] = ()
    rules_run: Tuple[str, ...] = ()

    @classmethod
    def from_diagnostics(
        cls,
        diagnostics: List[Diagnostic],
        suppressed: List[Diagnostic] = (),
        rules_run: Tuple[str, ...] = (),
    ) -> "LintReport":
        return cls(
            findings=tuple(sorted(diagnostics, key=_order_key)),
            suppressed=tuple(sorted(suppressed, key=_order_key)),
            rules_run=tuple(rules_run),
        )

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.findings if d.code == code)

    def by_severity(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.findings if d.severity is severity)

    def counts_by_severity(self) -> Dict[str, int]:
        counts = {severity.value: 0 for severity in Severity}
        for diagnostic in self.findings:
            counts[diagnostic.severity.value] += 1
        return counts

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max((d.severity for d in self.findings), key=lambda s: s.rank)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.findings)

    def gating(self, fail_on: Severity = Severity.ERROR) -> Tuple[Diagnostic, ...]:
        """Findings at or above the ``fail_on`` threshold."""
        return tuple(d for d in self.findings if d.severity.at_least(fail_on))

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """0 when nothing gates, 1 otherwise — the CLI/CI contract."""
        return 1 if self.gating(fail_on) else 0

    def summary(self) -> str:
        counts = self.counts_by_severity()
        base = "%d finding(s): %d error, %d warning, %d info" % (
            len(self.findings),
            counts["error"],
            counts["warning"],
            counts["info"],
        )
        if self.suppressed:
            base += " (%d suppressed by baseline)" % len(self.suppressed)
        return base


# Re-exported by repro.lint; kept here so formats.py and engine.py share them
# without circular imports.
__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "SourceLocation",
    "activity_location",
    "constraint_location",
]
