"""Output formats for lint reports: text, JSON and SARIF 2.1.0.

The SARIF output targets the OASIS SARIF 2.1.0 schema so findings can be
uploaded to code-scanning UIs.  Process models have no physical files, so
findings carry **logical locations** (``activity:shipOrder_so``,
``constraint:a -> b``); when the engine knows the line span of the
corresponding DSCL statement it also attaches a physical location into the
canonical ``<workload>.dscl`` rendering.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.lint.diagnostics import Diagnostic, LintReport, Severity, SourceLocation
from repro.lint.engine import Rule, all_rules

TEXT = "text"
JSON = "json"
SARIF = "sarif"
FORMATS = (TEXT, JSON, SARIF)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "dscweaver-lint"
TOOL_INFORMATION_URI = (
    "https://doi.org/10.1109/ICDE.2007.367857"  # the source paper
)

#: SARIF ``level`` values for our severities.
_SARIF_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def render(
    report: LintReport,
    fmt: str = TEXT,
    title: str = "specification",
) -> str:
    """Render ``report`` in ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == TEXT:
        return render_text(report, title=title)
    if fmt == JSON:
        return render_json(report, title=title)
    if fmt == SARIF:
        return render_sarif(report, title=title)
    raise ValueError("unknown format %r (expected one of %s)" % (fmt, ", ".join(FORMATS)))


# ---------------------------------------------------------------------------
# text
# ---------------------------------------------------------------------------


def render_text(report: LintReport, title: str = "specification") -> str:
    lines: List[str] = ["lint results for %s" % title]
    if not report.findings and not report.suppressed:
        lines.append("  no findings")
    for diagnostic in report.findings:
        for rendered in diagnostic.render().splitlines():
            lines.append("  " + rendered)
    if report.suppressed:
        lines.append(
            "  (%d finding(s) suppressed by baseline)" % len(report.suppressed)
        )
    lines.append(report.summary())
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# json
# ---------------------------------------------------------------------------


def _location_dict(location: SourceLocation) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"kind": location.kind, "name": location.name}
    if location.span is not None:
        payload["span"] = {"first_line": location.span[0], "last_line": location.span[1]}
    return payload


def _diagnostic_dict(diagnostic: Diagnostic) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "code": diagnostic.code,
        "severity": diagnostic.severity.value,
        "message": diagnostic.message,
        "location": _location_dict(diagnostic.location),
        "fingerprint": diagnostic.fingerprint,
    }
    if diagnostic.related:
        payload["related"] = [_location_dict(loc) for loc in diagnostic.related]
    if diagnostic.evidence:
        payload["evidence"] = list(diagnostic.evidence)
    if diagnostic.fix is not None:
        payload["fix"] = diagnostic.fix
    return payload


def report_dict(report: LintReport, title: str = "specification") -> Dict[str, Any]:
    """The JSON-format payload as a plain dict (useful for embedding)."""
    return {
        "tool": TOOL_NAME,
        "subject": title,
        "rules_run": list(report.rules_run),
        "counts": report.counts_by_severity(),
        "findings": [_diagnostic_dict(d) for d in report.findings],
        "suppressed": [_diagnostic_dict(d) for d in report.suppressed],
    }


def render_json(report: LintReport, title: str = "specification") -> str:
    return json.dumps(report_dict(report, title=title), indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# SARIF 2.1.0
# ---------------------------------------------------------------------------


def _sarif_location(
    location: SourceLocation, title: str, message: Optional[str] = None
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "logicalLocations": [
            {
                "name": location.name,
                "fullyQualifiedName": location.fully_qualified,
                "kind": location.kind,
            }
        ]
    }
    if location.span is not None:
        payload["physicalLocation"] = {
            "artifactLocation": {"uri": "%s.dscl" % title},
            "region": {
                "startLine": location.span[0],
                "endLine": location.span[1],
            },
        }
    if message is not None:
        payload["message"] = {"text": message}
    return payload


def _sarif_rule(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
    }


def _sarif_result(diagnostic: Diagnostic, title: str, suppressed: bool) -> Dict[str, Any]:
    message = diagnostic.message
    if diagnostic.evidence:
        message += "\n" + "\n".join("evidence: %s" % e for e in diagnostic.evidence)
    if diagnostic.fix:
        message += "\nfix: %s" % diagnostic.fix
    result: Dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": _SARIF_LEVELS[diagnostic.severity],
        "message": {"text": message},
        "locations": [_sarif_location(diagnostic.location, title)],
        "partialFingerprints": {"dscweaverFingerprint/v1": diagnostic.fingerprint},
    }
    if diagnostic.related:
        result["relatedLocations"] = [
            _sarif_location(loc, title, message="related location")
            for loc in diagnostic.related
        ]
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def sarif_dict(report: LintReport, title: str = "specification") -> Dict[str, Any]:
    """The SARIF 2.1.0 log as a plain dict."""
    ran = set(report.rules_run)
    rules = [r for r in all_rules() if not ran or r.code in ran]
    results = [_sarif_result(d, title, suppressed=False) for d in report.findings]
    results.extend(
        _sarif_result(d, title, suppressed=True) for d in report.suppressed
    )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_INFORMATION_URI,
                        "rules": [_sarif_rule(r) for r in rules],
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(report: LintReport, title: str = "specification") -> str:
    return json.dumps(sarif_dict(report, title=title), indent=2, sort_keys=True) + "\n"
