"""Baseline suppression files.

A baseline records the fingerprints of *known* findings so that adopting
the linter on an existing specification does not require fixing every
legacy warning at once: baselined findings are reported as *suppressed*
and do not gate the exit code.  New findings — anything not in the
baseline — still fail the build.

The file is JSON, diff-friendly (sorted, one suppression per entry) and
versioned::

    {
      "version": 1,
      "suppressions": [
        {"fingerprint": "ab12...", "code": "SYNC002", "message": "..."}
      ]
    }

``code`` and ``message`` are informational (they make the file reviewable);
matching is by fingerprint only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.lint.diagnostics import Diagnostic

BASELINE_VERSION = 1


@dataclass(frozen=True)
class Suppression:
    """One baselined finding."""

    fingerprint: str
    code: str = ""
    message: str = ""


class Baseline:
    """A set of suppressed finding fingerprints."""

    def __init__(self, suppressions: Iterable[Suppression] = ()) -> None:
        self._by_fingerprint: Dict[str, Suppression] = {}
        for suppression in suppressions:
            self._by_fingerprint[suppression.fingerprint] = suppression

    # -- construction -------------------------------------------------------

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        """A baseline accepting every current finding (adoption mode)."""
        return cls(
            Suppression(
                fingerprint=diagnostic.fingerprint,
                code=diagnostic.code,
                message=diagnostic.message,
            )
            for diagnostic in diagnostics
        )

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        payload = json.loads(text)
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                "unsupported baseline version %r (expected %d)"
                % (version, BASELINE_VERSION)
            )
        suppressions = [
            Suppression(
                fingerprint=entry["fingerprint"],
                code=entry.get("code", ""),
                message=entry.get("message", ""),
            )
            for entry in payload.get("suppressions", [])
        ]
        return cls(suppressions)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- queries ------------------------------------------------------------

    def matches(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.fingerprint in self._by_fingerprint

    @property
    def suppressions(self) -> List[Suppression]:
        return sorted(
            self._by_fingerprint.values(), key=lambda s: (s.code, s.fingerprint)
        )

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._by_fingerprint

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "version": BASELINE_VERSION,
            "suppressions": [
                {
                    "fingerprint": suppression.fingerprint,
                    "code": suppression.code,
                    "message": suppression.message,
                }
                for suppression in self.suppressions
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
