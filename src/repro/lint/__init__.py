"""Static analysis of synchronization specifications.

The paper's thesis is that making synchronization dependencies explicit
and first-class makes processes *analyzable*; :mod:`repro.lint` is that
analyzer.  It runs a registry of rules — synchronization races, protocol
conformance, dead activities, redundancy, over-/under-specification —
over a :class:`~repro.core.constraints.SynchronizationConstraintSet`
(plus, optionally, the process model, construct tree and WSCL
conversations) and reports :class:`Diagnostic` findings with stable rule
codes, severities, source locations, evidence and fix suggestions, in
text, JSON or SARIF 2.1.0.

Typical use::

    from repro.lint import LintContext, LintConfig, run_lint, render

    context = LintContext.from_weave(weave_result)
    report = run_lint(context, LintConfig.from_codes(ignore=["RED"]))
    print(render(report, "text"))
    exit(report.exit_code())
"""

from repro.lint.baseline import Baseline, Suppression
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
    activity_location,
    constraint_location,
)
from repro.lint.engine import (
    LintConfig,
    LintContext,
    Rule,
    all_rules,
    get_rule,
    rule,
    run_lint,
)
from repro.lint.formats import (
    FORMATS,
    render,
    render_json,
    render_sarif,
    render_text,
    report_dict,
    sarif_dict,
)
from repro.lint.protocol import (
    ProtocolViolation,
    UnmatchedCallback,
    check_callback_matching,
    check_invocation_order,
)
from repro.lint.races import (
    READ_WRITE,
    WRITE_WRITE,
    Race,
    access_maps_from_process,
    find_races,
    find_races_from_accesses,
    ordered_pairs,
)

__all__ = [
    "Baseline",
    "Diagnostic",
    "FORMATS",
    "LintConfig",
    "LintContext",
    "LintReport",
    "ProtocolViolation",
    "READ_WRITE",
    "Race",
    "Rule",
    "Severity",
    "SourceLocation",
    "Suppression",
    "UnmatchedCallback",
    "WRITE_WRITE",
    "access_maps_from_process",
    "activity_location",
    "all_rules",
    "check_callback_matching",
    "check_invocation_order",
    "constraint_location",
    "find_races",
    "find_races_from_accesses",
    "get_rule",
    "ordered_pairs",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "report_dict",
    "rule",
    "run_lint",
    "sarif_dict",
]
