"""Static service-protocol conformance checking.

Section 4 of the paper warns that missing orderings cause protocol faults
at *state-aware* services (invoking ``Purchase2`` before ``Purchase1``
faults the Purchase service at runtime).  This module checks conformance
statically, before anything executes:

* **Invocation-order conformance** — for every WSCL conversation (derived
  from the declared :class:`~repro.model.service.Service` objects or
  supplied as :class:`~repro.wscl.model.Conversation` documents), every
  transition between ports ``p -> q`` must be respected by the constraint
  set: each activity bound to ``p`` must happen before each activity bound
  to ``q`` in every execution where both run.
* **Callback matching** — every asynchronous invoke must have a matching
  receive on the service's callback port that is reachable (ordered after
  the invoke) and can co-occur with it; otherwise the callback is lost and
  the process deadlocks or drops a message.

Both checks are guard-aware: a violating pair whose execution guards are
contradictory (exclusive branch arms) is not reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.conditions import is_contradictory
from repro.core.closure import Semantics
from repro.core.constraints import SynchronizationConstraintSet
from repro.lint.races import ordered_pairs
from repro.model.activity import ActivityKind
from repro.model.process import BusinessProcess
from repro.wscl.derive import (
    conversation_for_service,
    service_dependencies_from_conversation,
)
from repro.wscl.model import Conversation


@dataclass(frozen=True)
class ProtocolViolation:
    """A pair of port-bound activities violating a conversation ordering."""

    service: str
    conversation: str
    earlier_port: str
    later_port: str
    earlier_activity: str
    later_activity: str

    def __str__(self) -> str:
        return (
            "conversation %r of service %r requires port %s before %s, but "
            "%r is not ordered before %r"
            % (
                self.conversation,
                self.service,
                self.earlier_port,
                self.later_port,
                self.earlier_activity,
                self.later_activity,
            )
        )


@dataclass(frozen=True)
class UnmatchedCallback:
    """An async invoke with no reachable matching receive."""

    service: str
    invoke: str
    callback_port: str
    #: Receives that exist on the callback port but are not reachable from
    #: the invoke (empty when the process declares no receive at all).
    candidates: Tuple[str, ...] = ()

    def __str__(self) -> str:
        if not self.candidates:
            return (
                "async invoke %r of service %r has no receive listening on "
                "callback port %s" % (self.invoke, self.service, self.callback_port)
            )
        return (
            "async invoke %r of service %r has no *reachable* matching receive "
            "on %s (candidates: %s)"
            % (
                self.invoke,
                self.service,
                self.callback_port,
                ", ".join(self.candidates),
            )
        )


def port_actors(process: BusinessProcess) -> Dict[str, List[str]]:
    """Map ``port display name -> activities bound to it``.

    Invoke activities are the actors of request ports; receive activities
    are the actors of (dummy) callback ports.
    """
    actors: Dict[str, List[str]] = {}
    for activity in process.activities:
        if activity.port is None:
            continue
        if activity.kind in (ActivityKind.INVOKE, ActivityKind.RECEIVE):
            actors.setdefault(activity.port.port, []).append(activity.name)
    return actors


def conversations_for_process(
    process: BusinessProcess,
    conversations: Iterable[Conversation] = (),
) -> List[Conversation]:
    """Supplied conversations, plus derived ones for undeclared services."""
    supplied = list(conversations)
    covered = {conversation.service for conversation in supplied}
    for service in process.services:
        if service.name not in covered:
            supplied.append(conversation_for_service(service))
    return supplied


def check_invocation_order(
    sc: SynchronizationConstraintSet,
    process: BusinessProcess,
    conversations: Iterable[Conversation] = (),
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> List[ProtocolViolation]:
    """Find activity pairs that violate a conversation's port ordering."""
    ordered = ordered_pairs(sc, semantics)
    actors = port_actors(process)
    known = set(sc.activities)

    violations: List[ProtocolViolation] = []
    nodes = set(sc.nodes)
    for conversation in conversations_for_process(process, conversations):
        for dependency in service_dependencies_from_conversation(conversation):
            earlier_port, later_port = dependency.source, dependency.target
            # Pre-translation sets keep the external port nodes; a port-level
            # ordering there is enforced service-side by the runtime, which
            # already rules out the protocol fault (Section 4.3 merely
            # *translates* it onto activities for optimization).
            if (
                earlier_port in nodes
                and later_port in nodes
                and (earlier_port, later_port) in ordered
            ):
                continue
            for earlier_activity in sorted(actors.get(earlier_port, ())):
                for later_activity in sorted(actors.get(later_port, ())):
                    if earlier_activity == later_activity:
                        continue
                    if earlier_activity not in known or later_activity not in known:
                        continue
                    if (earlier_activity, later_activity) in ordered:
                        continue
                    guards = sc.effective_guard(earlier_activity) | sc.effective_guard(
                        later_activity
                    )
                    if is_contradictory(guards):
                        continue  # exclusive branch arms never co-occur
                    violations.append(
                        ProtocolViolation(
                            service=conversation.service,
                            conversation=conversation.name,
                            earlier_port=earlier_port,
                            later_port=later_port,
                            earlier_activity=earlier_activity,
                            later_activity=later_activity,
                        )
                    )
    return violations


def check_callback_matching(
    sc: SynchronizationConstraintSet,
    process: BusinessProcess,
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> List[UnmatchedCallback]:
    """Find async invokes with no reachable matching receive."""
    ordered = ordered_pairs(sc, semantics)
    known = set(sc.activities)

    receives_by_port: Dict[str, List[str]] = {}
    for activity in process.activities:
        if activity.kind is ActivityKind.RECEIVE and activity.port is not None:
            receives_by_port.setdefault(activity.port.port, []).append(activity.name)

    unmatched: List[UnmatchedCallback] = []
    for service in process.services:
        if service.dummy_port is None:
            continue
        callback_port = service.dummy_port.name
        candidates = sorted(receives_by_port.get(callback_port, ()))
        for activity in process.activities:
            if activity.kind is not ActivityKind.INVOKE:
                continue
            if activity.port is None or activity.port.service != service.name:
                continue
            if activity.name not in known:
                continue
            matched = _matching_receive(
                sc, ordered, activity.name, candidates, known
            )
            if matched is None:
                unmatched.append(
                    UnmatchedCallback(
                        service=service.name,
                        invoke=activity.name,
                        callback_port=callback_port,
                        candidates=tuple(candidates),
                    )
                )
    return unmatched


def _matching_receive(
    sc: SynchronizationConstraintSet,
    ordered: Set[Tuple[str, str]],
    invoke: str,
    candidates: Iterable[str],
    known: Set[str],
) -> Optional[str]:
    invoke_guard = sc.effective_guard(invoke)
    for receive in candidates:
        if receive not in known:
            continue
        if is_contradictory(invoke_guard | sc.effective_guard(receive)):
            continue  # the receive never runs when the invoke does
        if (invoke, receive) in ordered:
            return receive
    return None
