"""The built-in rule set.

=========  ========  =======================================================
code       severity  finding
=========  ========  =======================================================
SYNC001    warning   write/write race: two writers of a variable unordered
SYNC002    warning   read/write race: reader and writer unordered
SYNC003    error     synchronization cycle (infinite synchronization sequence)
SYNC004    error     dead activity: unsatisfiable execution guard
SYNC005    info      vacuous Exclusive: endpoints already ordered
SYNC006    warning   unreachable guard outcome: condition outside the domain
SVC001     error     service-protocol order violated (WSCL transition)
SVC002     warning   async invoke without a reachable matching receive
RED001     info      redundant constraint (the minimizer would remove it)
SPEC001    warning   over-specified construct ordering (lost concurrency)
SPEC002    error     under-specified construct ordering (correctness hazard)
=========  ========  =======================================================

Rules degrade gracefully: a rule that needs an input the context lacks
(process model, construct tree) yields nothing instead of failing, so the
engine can run any subset over any context.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.core.constraints import SynchronizationConstraintSet
from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
    activity_location,
    constraint_location,
)
from repro.lint.engine import LintContext, rule
from repro.lint.protocol import check_callback_matching, check_invocation_order
from repro.lint.races import READ_WRITE, WRITE_WRITE, find_races


# ---------------------------------------------------------------------------
# SYNC: synchronization safety
# ---------------------------------------------------------------------------


def _race_diagnostics(context: LintContext, kind: str) -> Iterator[Diagnostic]:
    if context.has_cycles:
        return  # ordering is meaningless until the cycle is fixed
    races = find_races(
        context.sc,
        process=context.process,
        reads=context.reads,
        writes=context.writes,
        exclusives=context.exclusives,
        semantics=context.semantics,
    )
    for race in races:
        if race.kind != kind:
            continue
        code = "SYNC001" if kind == WRITE_WRITE else "SYNC002"
        if kind == WRITE_WRITE:
            message = (
                "activities %r and %r both write variable %r but no "
                "happen-before path orders them" % (race.first, race.second, race.variable)
            )
        else:
            reader = race.second if race.writer == race.first else race.first
            message = (
                "activity %r writes variable %r while %r reads it, with no "
                "happen-before path between them" % (race.writer, race.variable, reader)
            )
        yield Diagnostic(
            code=code,
            severity=Severity.WARNING,
            message=message,
            location=activity_location(race.first),
            related=(activity_location(race.second),),
            evidence=(
                "variable: %s" % race.variable,
                "conflict: %s" % race.kind,
            ),
            fix=(
                "add a happen-before constraint %s -> %s (or the reverse), "
                "e.g. as a cooperation dependency" % (race.first, race.second)
            ),
        )


@rule(
    "SYNC001",
    "race-write-write",
    "two unordered activities write the same variable",
    Severity.WARNING,
)
def check_write_write_races(context: LintContext) -> Iterable[Diagnostic]:
    return _race_diagnostics(context, WRITE_WRITE)


@rule(
    "SYNC002",
    "race-read-write",
    "an unordered reader/writer pair accesses the same variable",
    Severity.WARNING,
)
def check_read_write_races(context: LintContext) -> Iterable[Diagnostic]:
    return _race_diagnostics(context, READ_WRITE)


@rule(
    "SYNC003",
    "synchronization-cycle",
    "a happen-before cycle can never be scheduled",
    Severity.ERROR,
)
def check_cycles(context: LintContext) -> Iterable[Diagnostic]:
    for cycle in context.conflicts.cycles:
        members = list(cycle)
        rendered = " -> ".join(members + members[:1])
        yield Diagnostic(
            code="SYNC003",
            severity=Severity.ERROR,
            message="synchronization cycle: %s" % rendered,
            location=activity_location(members[0]),
            related=tuple(activity_location(member) for member in members[1:]),
            evidence=("cycle: %s" % rendered,),
            fix="remove one constraint on the cycle; an 'infinite "
            "synchronization sequence' can never be scheduled",
        )


@rule(
    "SYNC004",
    "dead-activity",
    "an activity whose execution guard is unsatisfiable never runs",
    Severity.ERROR,
)
def check_dead_activities(context: LintContext) -> Iterable[Diagnostic]:
    for activity in context.conflicts.unsatisfiable_guards:
        guard = context.sc.effective_guard(activity)
        yield Diagnostic(
            code="SYNC004",
            severity=Severity.ERROR,
            message=(
                "activity %r can never execute: its effective guard requires "
                "contradictory outcomes" % activity
            ),
            location=activity_location(activity),
            evidence=(
                "effective guard: {%s}" % ", ".join(sorted(str(c) for c in guard)),
            ),
            fix="restructure the branches so %r is guarded by a satisfiable "
            "condition, or delete the dead activity" % activity,
        )


@rule(
    "SYNC005",
    "vacuous-exclusive",
    "an Exclusive between transitively ordered activities is vacuous",
    Severity.INFO,
)
def check_vacuous_exclusives(context: LintContext) -> Iterable[Diagnostic]:
    for rendered in context.conflicts.vacuous_exclusives:
        yield Diagnostic(
            code="SYNC005",
            severity=Severity.INFO,
            message=(
                "exclusive %r is vacuous: its endpoints are already ordered "
                "by happen-before constraints and can never run concurrently"
                % rendered
            ),
            location=SourceLocation("constraint", rendered),
            fix="drop the Exclusive, or drop the ordering if concurrency "
            "plus mutual exclusion was intended",
        )


@rule(
    "SYNC006",
    "unreachable-outcome",
    "a condition names an outcome outside the guard's declared domain",
    Severity.WARNING,
)
def check_unreachable_outcomes(context: LintContext) -> Iterable[Diagnostic]:
    sc = context.sc
    for constraint in sorted(sc.constraints):
        if constraint.condition is None:
            continue
        domain = sc.domains.domain(constraint.source)
        if constraint.condition not in domain:
            yield Diagnostic(
                code="SYNC006",
                severity=Severity.WARNING,
                message=(
                    "constraint %s is conditioned on outcome %r, which is not "
                    "in guard %r's domain {%s} — the edge can never fire"
                    % (
                        constraint,
                        constraint.condition,
                        constraint.source,
                        ", ".join(sorted(domain)),
                    )
                ),
                location=constraint_location(
                    constraint.source,
                    constraint.target,
                    constraint.condition,
                    span=context.span_of(constraint),
                ),
                evidence=("declared domain: {%s}" % ", ".join(sorted(domain)),),
                fix="declare the outcome in the guard's domain or fix the "
                "condition's spelling",
            )


# ---------------------------------------------------------------------------
# SVC: service-protocol conformance
# ---------------------------------------------------------------------------


@rule(
    "SVC001",
    "protocol-order",
    "the constraint set does not enforce a conversation's port ordering",
    Severity.ERROR,
)
def check_protocol_order(context: LintContext) -> Iterable[Diagnostic]:
    if context.process is None or context.has_cycles:
        return
    for violation in check_invocation_order(
        context.sc,
        context.process,
        conversations=context.conversations,
        semantics=context.semantics,
    ):
        yield Diagnostic(
            code="SVC001",
            severity=Severity.ERROR,
            message=str(violation),
            location=activity_location(violation.later_activity),
            related=(activity_location(violation.earlier_activity),),
            evidence=(
                "conversation: %s" % violation.conversation,
                "required port order: %s before %s"
                % (violation.earlier_port, violation.later_port),
            ),
            fix=(
                "add the constraint %s -> %s so the state-aware service %r "
                "sees its ports in protocol order"
                % (
                    violation.earlier_activity,
                    violation.later_activity,
                    violation.service,
                )
            ),
        )


@rule(
    "SVC002",
    "unmatched-callback",
    "an asynchronous invoke has no reachable matching receive",
    Severity.WARNING,
)
def check_unmatched_callbacks(context: LintContext) -> Iterable[Diagnostic]:
    if context.process is None or context.has_cycles:
        return
    for unmatched in check_callback_matching(
        context.sc, context.process, semantics=context.semantics
    ):
        yield Diagnostic(
            code="SVC002",
            severity=Severity.WARNING,
            message=str(unmatched),
            location=activity_location(unmatched.invoke),
            related=tuple(
                activity_location(candidate) for candidate in unmatched.candidates
            ),
            evidence=("callback port: %s" % unmatched.callback_port,),
            fix=(
                "add a receive activity listening on %s, ordered after %r in "
                "every execution where the invoke runs"
                % (unmatched.callback_port, unmatched.invoke)
            ),
        )


# ---------------------------------------------------------------------------
# RED: redundancy
# ---------------------------------------------------------------------------


def _covering_path(
    sc: SynchronizationConstraintSet, source: str, target: str
) -> Optional[List[str]]:
    """A shortest happen-before path ``source -> ... -> target`` (BFS)."""
    graph = sc.as_graph()
    frontier = [[source]]
    seen = {source}
    while frontier:
        path = frontier.pop(0)
        for successor in graph.successors(path[-1]):
            if successor == target:
                return path + [successor]
            if successor not in seen:
                seen.add(successor)
                frontier.append(path + [successor])
    return None


@rule(
    "RED001",
    "redundant-constraint",
    "a constraint the minimizer would remove (covered by other paths)",
    Severity.INFO,
)
def check_redundant_constraints(context: LintContext) -> Iterable[Diagnostic]:
    minimal = context.minimal
    if minimal is None:
        return
    for constraint in sorted(context.sc.constraints):
        if constraint in minimal:
            continue
        path = _covering_path(minimal, constraint.source, constraint.target)
        evidence: tuple
        if path is not None:
            evidence = ("covering path: %s" % " -> ".join(path),)
        else:  # pragma: no cover - conditional covers without a direct path
            evidence = ("covered by the minimal set's annotated closure",)
        yield Diagnostic(
            code="RED001",
            severity=Severity.INFO,
            message=(
                "constraint %s is redundant: transitive equivalence is "
                "preserved without it" % constraint
            ),
            location=constraint_location(
                constraint.source,
                constraint.target,
                constraint.condition,
                span=context.span_of(constraint),
            ),
            evidence=evidence,
            fix="remove it — redundant constraints cost runtime monitoring "
            "work and block concurrency for no safety gain",
        )


# ---------------------------------------------------------------------------
# SPEC: construct trees vs. the dependency set
# ---------------------------------------------------------------------------


def _specification_reports(context: LintContext):
    """Coverage of the construct tree's orderings vs. the required set."""
    if context.construct is None or context.process is None or context.has_cycles:
        return None
    from repro.constructs.rewrite import constructs_to_constraints
    from repro.validation.coverage import compare_constraint_sets

    implementation = constructs_to_constraints(context.process, context.construct)
    return compare_constraint_sets(
        implementation, context.sc, semantics=context.semantics
    )


@rule(
    "SPEC001",
    "over-specified",
    "the construct tree enforces an ordering no dependency requires",
    Severity.WARNING,
)
def check_over_specification(context: LintContext) -> Iterable[Diagnostic]:
    report = _specification_reports(context)
    if report is None:
        return
    for source, target in report.unnecessary:
        yield Diagnostic(
            code="SPEC001",
            severity=Severity.WARNING,
            message=(
                "construct tree forces %r before %r, but no dependency "
                "requires that ordering (lost concurrency)" % (source, target)
            ),
            location=constraint_location(source, target),
            evidence=("required by: nothing — over-specification",),
            fix="let %r and %r run concurrently (drop the sequencing)"
            % (source, target),
        )


@rule(
    "SPEC002",
    "under-specified",
    "the construct tree misses an ordering the dependencies require",
    Severity.ERROR,
)
def check_under_specification(context: LintContext) -> Iterable[Diagnostic]:
    report = _specification_reports(context)
    if report is None:
        return
    for source, target in report.missing:
        yield Diagnostic(
            code="SPEC002",
            severity=Severity.ERROR,
            message=(
                "dependencies require %r before %r, but the construct tree "
                "does not enforce it (correctness hazard)" % (source, target)
            ),
            location=constraint_location(source, target),
            evidence=("required ordering not implied by any construct",),
            fix="sequence %r before %r (or add a link) in the construct tree"
            % (source, target),
        )
