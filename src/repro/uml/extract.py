"""Dependency extraction from activity diagrams.

* Each **object flow** is, by construction, a definition-use pair: the
  producing action happens-before the consuming action — one data
  dependency each.
* **Control dependencies** apply the post-dominator criterion over the
  diagram's control-flow graph.  Decision out-edges carry the guard labels
  that become the conditions; only decision nodes act as branch sources
  (fork/join express parallelism).  Pseudo nodes (initial/final/decision/
  merge/fork/join) never appear as dependency endpoints — a control
  dependence on an interior control node is re-anchored on the actions it
  governs, and the decision node itself is represented by the *action*
  that feeds it when one exists (matching the paper's style, where the
  guard ``if_au`` is an activity).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.graphs import DirectedGraph
from repro.deps.controlflow import extract_control_dependencies_from_cfg
from repro.deps.registry import DependencySet
from repro.deps.types import Dependency, DependencyKind
from repro.uml.model import ActivityDiagram, NodeKind


def _cfg_of(diagram: ActivityDiagram) -> Tuple[DirectedGraph, Dict[Tuple[str, str], str]]:
    graph = DirectedGraph(nodes=[node.name for node in diagram.nodes])
    labels: Dict[Tuple[str, str], str] = {}
    for flow in diagram.control_flows:
        graph.add_edge(flow.source, flow.target)
        if flow.guard is not None:
            labels[(flow.source, flow.target)] = flow.guard
    return graph, labels


def diagram_dependencies(diagram: ActivityDiagram) -> DependencySet:
    """Extract the data and control dependencies of ``diagram``."""
    diagram.validate()
    initial = diagram.sole_node(NodeKind.INITIAL).name
    final = diagram.sole_node(NodeKind.FINAL).name
    graph, labels = _cfg_of(diagram)

    dependencies = DependencySet()

    # Data: object flows are definition-use pairs.
    for flow in diagram.object_flows:
        dependencies.add(
            Dependency(
                DependencyKind.DATA,
                flow.source,
                flow.target,
                rationale="object %r flows along the diagram" % flow.object_name,
            )
        )

    # Control: post-dominator criterion, decision nodes only.
    decision_names = {n.name for n in diagram.nodes_of_kind(NodeKind.DECISION)}
    action_names = {n.name for n in diagram.nodes_of_kind(NodeKind.ACTION)}
    raw = extract_control_dependencies_from_cfg(
        graph, initial, final, labels, include_join_edges=False
    )

    def anchor_decision(decision: str) -> Optional[str]:
        """The action immediately feeding the decision, if unique."""
        feeders = [
            p for p in graph.predecessors(decision) if p in action_names
        ]
        return feeders[0] if len(feeders) == 1 else None

    for dependency in raw:
        if dependency.source not in decision_names:
            continue  # forks/joins are not decision points
        source = anchor_decision(dependency.source) or dependency.source
        target = dependency.target
        if target not in action_names:
            continue  # control nodes are structure, not schedulable work
        if source == target:
            continue
        dependencies.add(
            Dependency(
                DependencyKind.CONTROL,
                source,
                target,
                condition=dependency.condition,
                rationale="decision %r governs %r (UML activity diagram)"
                % (dependency.source, target),
            )
        )

    # Join ("NONE") edges: each decision orders the first *action* at which
    # its branches re-converge.  Walk the post-dominator chain through any
    # interior control nodes (merges, joins) until an action is found.
    from repro.analysis.dominators import postdominators

    ipostdom = postdominators(graph, final)
    for decision in sorted(decision_names):
        current = ipostdom.get(decision)
        while current is not None and current != final:
            if current in action_names:
                source = anchor_decision(decision) or decision
                if source != current:
                    dependencies.add(
                        Dependency(
                            DependencyKind.CONTROL,
                            source,
                            current,
                            condition=None,
                            rationale="%r is the join of decision %r "
                            "(UML activity diagram)" % (current, decision),
                        )
                    )
                break
            parent = ipostdom.get(current)
            if parent == current:
                break
            current = parent
    return dependencies
