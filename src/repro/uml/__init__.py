"""UML activity diagrams as a dependency source.

Section 3.1: "in meta-modeling approach like UML, dependency information
is available in activity diagrams, use case diagrams etc."  This package
implements a compact activity-diagram model (actions, decision/merge and
fork/join nodes, control flows with guard labels, object flows), an XML
reader/writer, and extraction of data and control dependencies so a
diagram can feed the weave pipeline directly:

* every **object flow** is a definition-use data dependency;
* **control dependencies** come from the post-dominator criterion over the
  diagram's control-flow graph, with decision nodes as the only branch
  sources (fork/join nodes express parallelism, not decisions).
"""

from repro.uml.model import (
    ActivityDiagram,
    ControlFlow,
    NodeKind,
    ObjectFlow,
    UmlNode,
)
from repro.uml.xmlio import diagram_from_xml, diagram_to_xml
from repro.uml.extract import diagram_dependencies

__all__ = [
    "ActivityDiagram",
    "ControlFlow",
    "NodeKind",
    "ObjectFlow",
    "UmlNode",
    "diagram_dependencies",
    "diagram_from_xml",
    "diagram_to_xml",
]
