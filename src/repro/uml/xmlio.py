"""XML serialization for activity diagrams (an XMI-flavoured subset).

Documents look like::

    <activityDiagram name="Claims">
      <node name="start" kind="initial"/>
      <node name="validate" kind="action"/>
      <node name="d1" kind="decision"/>
      ...
      <controlFlow source="start" target="validate"/>
      <controlFlow source="d1" target="approve" guard="ok"/>
      <objectFlow source="validate" target="approve" object="claim"/>
    </activityDiagram>

``diagram_from_xml(diagram_to_xml(d)) == d`` round-trips.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import ModelError
from repro.uml.model import ActivityDiagram, NodeKind


def diagram_to_xml(diagram: ActivityDiagram) -> str:
    """Serialize a diagram to XML text."""
    root = ET.Element("activityDiagram", {"name": diagram.name})
    for node in diagram.nodes:
        ET.SubElement(root, "node", {"name": node.name, "kind": node.kind.value})
    for flow in diagram.control_flows:
        attributes = {"source": flow.source, "target": flow.target}
        if flow.guard is not None:
            attributes["guard"] = flow.guard
        ET.SubElement(root, "controlFlow", attributes)
    for flow in diagram.object_flows:
        ET.SubElement(
            root,
            "objectFlow",
            {
                "source": flow.source,
                "target": flow.target,
                "object": flow.object_name,
            },
        )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def diagram_from_xml(text: str) -> ActivityDiagram:
    """Parse the XML subset back into an :class:`ActivityDiagram`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise ModelError("malformed activity-diagram XML: %s" % error) from error
    if root.tag != "activityDiagram":
        raise ModelError(
            "expected <activityDiagram> root, found <%s>" % root.tag
        )
    name = root.get("name")
    if not name:
        raise ModelError("<activityDiagram> requires a name")

    diagram = ActivityDiagram(name)
    for element in root.findall("node"):
        node_name = element.get("name") or ""
        kind_text = element.get("kind") or ""
        try:
            kind = NodeKind(kind_text)
        except ValueError:
            raise ModelError(
                "unknown node kind %r on %r" % (kind_text, node_name)
            ) from None
        diagram.add_node(node_name, kind)
    for element in root.findall("controlFlow"):
        diagram.flow(
            element.get("source") or "",
            element.get("target") or "",
            element.get("guard"),
        )
    for element in root.findall("objectFlow"):
        diagram.object_flow(
            element.get("source") or "",
            element.get("target") or "",
            element.get("object") or "",
        )
    return diagram
