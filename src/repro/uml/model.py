"""A compact UML activity-diagram model.

Supports the node kinds needed for dependency extraction: actions, the
initial and final nodes, decision/merge (exclusive) and fork/join
(parallel) control nodes.  Control flows may carry a guard label
(``[approved]`` style); object flows carry the name of the object (the
variable) that travels along them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ModelError


class NodeKind(enum.Enum):
    INITIAL = "initial"
    FINAL = "final"
    ACTION = "action"
    DECISION = "decision"
    MERGE = "merge"
    FORK = "fork"
    JOIN = "join"


@dataclass(frozen=True)
class UmlNode:
    """One node of the diagram, identified by a unique name."""

    name: str
    kind: NodeKind

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("UML node name must be non-empty")


@dataclass(frozen=True)
class ControlFlow:
    """A control-flow edge; ``guard`` labels decision out-edges."""

    source: str
    target: str
    guard: Optional[str] = None

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ModelError("control flow endpoints must differ")


@dataclass(frozen=True)
class ObjectFlow:
    """An object-flow edge: ``object_name`` produced by ``source`` is
    consumed by ``target``."""

    source: str
    target: str
    object_name: str

    def __post_init__(self) -> None:
        if not self.object_name:
            raise ModelError("object flow must name its object")
        if self.source == self.target:
            raise ModelError("object flow endpoints must differ")


class ActivityDiagram:
    """An activity diagram: nodes plus control and object flows."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ModelError("diagram name must be non-empty")
        self.name = name
        self._nodes: Dict[str, UmlNode] = {}
        self._control_flows: List[ControlFlow] = []
        self._object_flows: List[ObjectFlow] = []

    # -- construction -------------------------------------------------------

    def add_node(self, name: str, kind: NodeKind) -> UmlNode:
        if name in self._nodes:
            raise ModelError("node %r already in diagram" % name)
        node = UmlNode(name, kind)
        self._nodes[name] = node
        return node

    def action(self, name: str) -> UmlNode:
        return self.add_node(name, NodeKind.ACTION)

    def flow(
        self, source: str, target: str, guard: Optional[str] = None
    ) -> ControlFlow:
        for endpoint in (source, target):
            if endpoint not in self._nodes:
                raise ModelError("control flow references unknown node %r" % endpoint)
        edge = ControlFlow(source, target, guard)
        self._control_flows.append(edge)
        return edge

    def object_flow(self, source: str, target: str, object_name: str) -> ObjectFlow:
        for endpoint in (source, target):
            if endpoint not in self._nodes:
                raise ModelError("object flow references unknown node %r" % endpoint)
            if self._nodes[endpoint].kind is not NodeKind.ACTION:
                raise ModelError(
                    "object flows connect actions, not %s nodes"
                    % self._nodes[endpoint].kind.value
                )
        edge = ObjectFlow(source, target, object_name)
        self._object_flows.append(edge)
        return edge

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> List[UmlNode]:
        return list(self._nodes.values())

    @property
    def control_flows(self) -> List[ControlFlow]:
        return list(self._control_flows)

    @property
    def object_flows(self) -> List[ObjectFlow]:
        return list(self._object_flows)

    def node(self, name: str) -> UmlNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ModelError("diagram has no node %r" % name) from None

    def nodes_of_kind(self, kind: NodeKind) -> List[UmlNode]:
        return [node for node in self._nodes.values() if node.kind is kind]

    def sole_node(self, kind: NodeKind) -> UmlNode:
        """The unique node of ``kind``; raises if absent or ambiguous."""
        found = self.nodes_of_kind(kind)
        if len(found) != 1:
            raise ModelError(
                "expected exactly one %s node, found %d" % (kind.value, len(found))
            )
        return found[0]

    def validate(self) -> None:
        """Structural sanity: one initial, one final, guards only on
        decision out-edges."""
        self.sole_node(NodeKind.INITIAL)
        self.sole_node(NodeKind.FINAL)
        for edge in self._control_flows:
            if edge.guard is not None:
                source = self._nodes[edge.source]
                if source.kind is not NodeKind.DECISION:
                    raise ModelError(
                        "guard %r on flow from non-decision node %r"
                        % (edge.guard, edge.source)
                    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActivityDiagram):
            return NotImplemented
        return (
            self.name == other.name
            and self._nodes == other._nodes
            and sorted(map(str, self._control_flows))
            == sorted(map(str, other._control_flows))
            and sorted(map(str, self._object_flows))
            == sorted(map(str, other._object_flows))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ActivityDiagram(%r, %d nodes, %d flows, %d object flows)" % (
            self.name,
            len(self._nodes),
            len(self._control_flows),
            len(self._object_flows),
        )
