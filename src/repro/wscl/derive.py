"""Deriving service dependencies from WSCL conversations — and back.

``service_dependencies_from_conversation`` turns the allowed transitions of
a conversation into ``->s`` dependencies between the service's ports — the
"participants of service integration can simply submit their dependencies
like a WSCL document" workflow of Section 1.

``conversation_for_service`` goes the other way: it renders a declared
:class:`~repro.model.service.Service` as the WSCL document it would
publish, which keeps the two representations interchangeable in tests and
examples.
"""

from __future__ import annotations

from typing import List

from repro.deps.types import Dependency, DependencyKind
from repro.model.service import Service
from repro.wscl.model import Conversation, Interaction, InteractionKind, Transition


def service_dependencies_from_conversation(
    conversation: Conversation,
) -> List[Dependency]:
    """Port-to-port service dependencies implied by a conversation.

    Each WSCL transition between interactions at ports ``p`` and ``q``
    yields ``p ->s q``.  Transitions between interactions at the *same*
    port collapse (a port is one node in the constraint graph).
    """
    dependencies: List[Dependency] = []
    seen = set()
    for transition in conversation.transitions:
        source_port = conversation.interaction(transition.source).port
        target_port = conversation.interaction(transition.target).port
        if source_port == target_port:
            continue
        key = (source_port, target_port)
        if key in seen:
            continue
        seen.add(key)
        dependencies.append(
            Dependency(
                DependencyKind.SERVICE,
                source_port,
                target_port,
                rationale="WSCL conversation %r of service %r orders %s before %s"
                % (conversation.name, conversation.service, source_port, target_port),
            )
        )
    return dependencies


def conversation_for_service(service: Service) -> Conversation:
    """The WSCL document a declared service would publish.

    Request ports become ``Receive`` interactions; an asynchronous
    service's callback becomes a ``Send`` interaction at the dummy port.
    Transitions mirror :meth:`Service.internal_orderings`.
    """
    conversation = Conversation(
        name="%sConversation" % service.name, service=service.name
    )
    for port in service.request_ports:
        conversation.add_interaction(
            Interaction(
                id="recv_%s" % port.name,
                kind=InteractionKind.RECEIVE,
                port=port.name,
                document="%sRequest" % port.name,
            )
        )
    if service.dummy_port is not None:
        conversation.add_interaction(
            Interaction(
                id="send_%s" % service.dummy_port.name,
                kind=InteractionKind.SEND,
                port=service.dummy_port.name,
                document="%sCallback" % service.name,
            )
        )

    def interaction_id_for(port_name: str) -> str:
        if service.dummy_port is not None and port_name == service.dummy_port.name:
            return "send_%s" % port_name
        return "recv_%s" % port_name

    for earlier, later in service.internal_orderings():
        conversation.add_transition(
            Transition(interaction_id_for(earlier.port), interaction_id_for(later.port))
        )
    return conversation
