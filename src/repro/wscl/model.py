"""WSCL conversation model (subset of WSCL 1.0).

A conversation describes a service's protocol from the service's point of
view: *interactions* (document exchanges at the service's ports) and
*transitions* (the allowed orderings between interactions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import WSCLError


class InteractionKind(enum.Enum):
    """Direction of a document exchange, from the service's perspective."""

    #: The service receives a document (the process invokes a port).
    RECEIVE = "Receive"
    #: The service sends a document (a callback into the process).
    SEND = "Send"
    #: Request-response in one interaction.
    RECEIVE_SEND = "ReceiveSend"


@dataclass(frozen=True)
class Interaction:
    """One interaction of the conversation.

    ``port`` names the service port the interaction happens at; it is the
    hook that maps conversation constraints onto the process's service
    dependency graph.
    """

    id: str
    kind: InteractionKind
    port: str
    document: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise WSCLError("interaction id must be non-empty")
        if not self.port:
            raise WSCLError("interaction %r must name a port" % self.id)


@dataclass(frozen=True)
class Transition:
    """An allowed ordering: ``source`` interaction precedes ``target``."""

    source: str
    target: str

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise WSCLError("transition endpoints must differ")


class Conversation:
    """A service conversation: interactions plus allowed transitions."""

    def __init__(
        self,
        name: str,
        service: str,
        interactions: Iterable[Interaction] = (),
        transitions: Iterable[Transition] = (),
    ) -> None:
        if not name:
            raise WSCLError("conversation name must be non-empty")
        if not service:
            raise WSCLError("conversation %r must name its service" % name)
        self.name = name
        self.service = service
        self._interactions: Dict[str, Interaction] = {}
        self._transitions: List[Transition] = []
        for interaction in interactions:
            self.add_interaction(interaction)
        for transition in transitions:
            self.add_transition(transition)

    def add_interaction(self, interaction: Interaction) -> Interaction:
        if interaction.id in self._interactions:
            raise WSCLError("duplicate interaction id %r" % interaction.id)
        self._interactions[interaction.id] = interaction
        return interaction

    def add_transition(self, transition: Transition) -> Transition:
        for endpoint in (transition.source, transition.target):
            if endpoint not in self._interactions:
                raise WSCLError(
                    "transition references unknown interaction %r" % endpoint
                )
        self._transitions.append(transition)
        return transition

    @property
    def interactions(self) -> List[Interaction]:
        return list(self._interactions.values())

    @property
    def transitions(self) -> List[Transition]:
        return list(self._transitions)

    def interaction(self, interaction_id: str) -> Interaction:
        try:
            return self._interactions[interaction_id]
        except KeyError:
            raise WSCLError("no interaction %r" % interaction_id) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conversation):
            return NotImplemented
        return (
            self.name == other.name
            and self.service == other.service
            and self._interactions == other._interactions
            and self._transitions == other._transitions
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Conversation(%r, service=%r, %d interactions, %d transitions)" % (
            self.name,
            self.service,
            len(self._interactions),
            len(self._transitions),
        )
