"""WSCL — Web Services Conversation Language documents.

Section 3.2: "Service dependency information is likely to be found in
standard description documents like WSCL that specifies the XML documents
being exchanged, and the allowed sequencing of these document exchanges."

This package implements a WSCL 1.0 subset: conversations with typed
interactions and allowed transitions, XML parsing/emission, and the
derivation of *service dependencies* from a conversation — so a service can
"submit its dependencies like a WSCL document to a scheduling engine"
(Section 1) instead of relying on the process being hand-coded correctly.
"""

from repro.wscl.model import Conversation, Interaction, InteractionKind, Transition
from repro.wscl.xmlio import conversation_from_xml, conversation_to_xml
from repro.wscl.derive import (
    conversation_for_service,
    service_dependencies_from_conversation,
)

__all__ = [
    "Conversation",
    "Interaction",
    "InteractionKind",
    "Transition",
    "conversation_for_service",
    "conversation_from_xml",
    "conversation_to_xml",
    "service_dependencies_from_conversation",
]
