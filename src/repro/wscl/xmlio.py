"""WSCL XML serialization (subset of the WSCL 1.0 syntax).

Documents look like::

    <Conversation name="PurchaseConversation" service="Purchase">
      <ConversationInteractions>
        <Interaction id="order" interactionType="Receive" port="Purchase1"
                     document="PurchaseOrder"/>
        ...
      </ConversationInteractions>
      <ConversationTransitions>
        <Transition>
          <SourceInteraction href="order"/>
          <DestinationInteraction href="invoiceRequest"/>
        </Transition>
      </ConversationTransitions>
    </Conversation>

``conversation_from_xml(conversation_to_xml(c)) == c`` round-trips.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import WSCLError
from repro.wscl.model import Conversation, Interaction, InteractionKind, Transition


def conversation_to_xml(conversation: Conversation) -> str:
    """Serialize a conversation to the WSCL XML subset."""
    root = ET.Element(
        "Conversation",
        {"name": conversation.name, "service": conversation.service},
    )
    interactions = ET.SubElement(root, "ConversationInteractions")
    for interaction in conversation.interactions:
        attributes = {
            "id": interaction.id,
            "interactionType": interaction.kind.value,
            "port": interaction.port,
        }
        if interaction.document:
            attributes["document"] = interaction.document
        ET.SubElement(interactions, "Interaction", attributes)
    transitions = ET.SubElement(root, "ConversationTransitions")
    for transition in conversation.transitions:
        element = ET.SubElement(transitions, "Transition")
        ET.SubElement(element, "SourceInteraction", {"href": transition.source})
        ET.SubElement(element, "DestinationInteraction", {"href": transition.target})
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def conversation_from_xml(text: str) -> Conversation:
    """Parse the WSCL XML subset back into a :class:`Conversation`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise WSCLError("malformed WSCL XML: %s" % error) from error
    if root.tag != "Conversation":
        raise WSCLError("expected <Conversation> root, found <%s>" % root.tag)
    name = root.get("name")
    service = root.get("service")
    if not name or not service:
        raise WSCLError("<Conversation> requires name and service attributes")

    conversation = Conversation(name, service)
    interactions = root.find("ConversationInteractions")
    if interactions is not None:
        for element in interactions.findall("Interaction"):
            interaction_id = element.get("id") or ""
            kind_text = element.get("interactionType") or ""
            try:
                kind = InteractionKind(kind_text)
            except ValueError:
                raise WSCLError(
                    "unknown interactionType %r on %r" % (kind_text, interaction_id)
                ) from None
            conversation.add_interaction(
                Interaction(
                    id=interaction_id,
                    kind=kind,
                    port=element.get("port") or "",
                    document=element.get("document") or "",
                )
            )
    transitions = root.find("ConversationTransitions")
    if transitions is not None:
        for element in transitions.findall("Transition"):
            source = element.find("SourceInteraction")
            target = element.find("DestinationInteraction")
            if source is None or target is None:
                raise WSCLError("<Transition> requires source and destination")
            conversation.add_transition(
                Transition(source.get("href") or "", target.get("href") or "")
            )
    return conversation
