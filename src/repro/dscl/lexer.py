"""Tokenizer for the DSCL text syntax.

The surface syntax, one statement per line (``;``-terminated)::

    # data dependency: po flows between the activities
    F(recClient_po) -> S(invCredit_po);
    F(if_au) ->[T] S(invPurchase_po);
    S(collectSurvey) -> F(closeOrder);
    F(a) <-> S(b);
    R(a) O R(b);

Object-centric statements (cross-case synchronization) add three tokens::

    object order 1..* item;                 # one-to-many relation
    item.pack_item ->A order.ship_order;    # all-of barrier
    order.invoice_order ->1 order;          # exactly-once per object

``#`` starts a comment running to end of line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import DSCLSyntaxError


class TokenKind(enum.Enum):
    IDENT = "ident"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    ARROW = "->"
    ARROW_ALL = "->A"
    ARROW_ONCE = "->1"
    CARDINALITY = "1..*"
    TOGETHER = "<->"
    EXCLUSIVE = "O"
    SEMI = ";"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(%r)" % (self.kind.name, self.text)


_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789.")


def tokenize(source: str) -> List[Token]:
    """Tokenize DSCL source; raises :class:`DSCLSyntaxError` on bad input.

    The bare identifier ``O`` is emitted as the EXCLUSIVE operator token —
    activity names therefore must not be the single letter ``O``, matching
    the paper's notation.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("<->", index):
            tokens.append(Token(TokenKind.TOGETHER, "<->", line, column))
            index += 3
            column += 3
            continue
        # ``->A`` / ``->1`` win over the plain arrow, but only when not a
        # prefix of a longer identifier (``->Apply`` still lexes as ``->``
        # followed by IDENT ``Apply``).
        if (
            source.startswith("->A", index) or source.startswith("->1", index)
        ) and (index + 3 >= length or source[index + 3] not in _IDENT_CONT):
            text = source[index : index + 3]
            kind = TokenKind.ARROW_ALL if text == "->A" else TokenKind.ARROW_ONCE
            tokens.append(Token(kind, text, line, column))
            index += 3
            column += 3
            continue
        if source.startswith("->", index):
            tokens.append(Token(TokenKind.ARROW, "->", line, column))
            index += 2
            column += 2
            continue
        if source.startswith("1..*", index):
            tokens.append(Token(TokenKind.CARDINALITY, "1..*", line, column))
            index += 4
            column += 4
            continue
        simple = {
            "(": TokenKind.LPAREN,
            ")": TokenKind.RPAREN,
            "[": TokenKind.LBRACKET,
            "]": TokenKind.RBRACKET,
            ";": TokenKind.SEMI,
        }
        if char in simple:
            tokens.append(Token(simple[char], char, line, column))
            index += 1
            column += 1
            continue
        if char in _IDENT_START:
            start = index
            start_column = column
            while index < length and source[index] in _IDENT_CONT:
                index += 1
                column += 1
            text = source[start:index]
            if text == "O":
                tokens.append(Token(TokenKind.EXCLUSIVE, text, line, start_column))
            else:
                tokens.append(Token(TokenKind.IDENT, text, line, start_column))
            continue
        raise DSCLSyntaxError("unexpected character %r" % char, line, column)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
