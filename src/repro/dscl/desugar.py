"""Desugaring of ``HappenTogether`` (Section 4.2).

Per the paper, ``<->c`` is syntax sugar: it "can always be simulated by
introducing a coordinating activity and using ``->c``".  The barrier
``L <-> R`` is realized by a fresh coordinator activity ``co`` such that

* every constraint that previously targeted ``L`` or ``R`` is redirected to
  target ``S(co)`` — the coordinator becomes ready exactly when both sides
  would have been;
* ``F(co) ->c L`` and ``F(co) ->c R`` release both sides at once.

The rewrite is applied to a whole program at once so that chained barriers
compose (a redirected edge may itself target an earlier coordinator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.dscl.ast import HappenBefore, HappenTogether, Program, Statement
from repro.model.activity import ActivityState, StateRef

#: Prefix of generated coordinator activity names.
COORDINATOR_PREFIX = "__together"


@dataclass
class DesugarResult:
    """A desugared program plus the coordinators that were introduced."""

    program: Program
    coordinators: List[str] = field(default_factory=list)


def desugar(program: Program) -> DesugarResult:
    """Remove every ``HappenTogether`` by coordinator introduction."""
    statements: List[Statement] = list(program.statements)
    coordinators: List[str] = []
    counter = 0

    while True:
        together = next(
            (s for s in statements if isinstance(s, HappenTogether)), None
        )
        if together is None:
            break
        counter += 1
        coordinator = "%s_%d" % (COORDINATOR_PREFIX, counter)
        coordinators.append(coordinator)
        barrier_targets: Tuple[StateRef, StateRef] = (together.left, together.right)

        rewritten: List[Statement] = []
        for statement in statements:
            if statement is together:
                continue
            if isinstance(statement, HappenBefore) and statement.right in barrier_targets:
                rewritten.append(
                    HappenBefore(
                        statement.left,
                        StateRef(coordinator, ActivityState.START),
                        condition=statement.condition,
                        provenance=statement.provenance,
                    )
                )
            else:
                rewritten.append(statement)
        for side in barrier_targets:
            rewritten.append(
                HappenBefore(
                    StateRef(coordinator, ActivityState.FINISH),
                    side,
                    condition=together.condition,
                    provenance="desugared %s" % together,
                )
            )
        statements = rewritten

    # Object statements are cross-case and untouched by the single-case
    # coordinator rewrite; carry them through unchanged.
    return DesugarResult(
        Program(statements, objects=list(program.objects)), coordinators
    )
