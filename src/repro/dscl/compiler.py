"""Compilation between dependencies, DSCL programs and constraint sets.

Section 4.2: *data*, *service* and *cooperation* dependencies are
represented by unconditional HappenBefore (``F(source) -> S(target)``);
*control* dependencies by conditional HappenBefore
(``F(guard) ->[c] S(target)``).  The compiled
:class:`~repro.core.constraints.SynchronizationConstraintSet` is the input
of translation and minimization.

State pairs other than ``F -> S`` (fine-granularity constraints such as
``S(collectSurvey) -> F(closeOrder)``) cannot be expressed as activity-level
precedences; they are preserved separately and enforced by the scheduling
engine, bypassing static optimization — as are ``Exclusive`` relations
(Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.analysis.conditions import Cond, ConditionDomains
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.deps.registry import DependencySet
from repro.dscl.ast import Exclusive, HappenBefore, Program, happen_before
from repro.dscl.desugar import desugar
from repro.errors import DSCLSemanticError
from repro.model.activity import ActivityState
from repro.model.process import BusinessProcess


@dataclass
class CompiledConstraints:
    """Result of compiling a DSCL program.

    ``sc``
        Activity-level happen-before constraints (``F -> S`` statements).
    ``fine_grained``
        HappenBefore statements over other state pairs, for dynamic
        enforcement.
    ``exclusives``
        ``O`` relations, for dynamic enforcement.
    ``coordinators``
        Activities synthesized by HappenTogether desugaring.
    """

    sc: SynchronizationConstraintSet
    fine_grained: List[HappenBefore] = field(default_factory=list)
    exclusives: List[Exclusive] = field(default_factory=list)
    coordinators: List[str] = field(default_factory=list)


def dependencies_to_program(dependencies: DependencySet) -> Program:
    """Uniform DSCL representation of a dependency set (Section 4.2)."""
    program = Program()
    for dependency in dependencies:
        program.add(
            happen_before(
                dependency.source,
                dependency.target,
                condition=dependency.condition,
                provenance="%s dependency: %s"
                % (dependency.kind.value, dependency.rationale or str(dependency)),
            )
        )
    return program


def compile_program(
    program: Program,
    activities: Iterable[str],
    externals: Iterable[str] = (),
    guards: Optional[Dict[str, FrozenSet[Cond]]] = None,
    domains: Optional[ConditionDomains] = None,
) -> CompiledConstraints:
    """Compile a DSCL program into a constraint set plus dynamic residue.

    ``activities``/``externals`` declare the node partition; coordinator
    activities introduced by desugaring are added to ``activities``
    automatically.  Statements mentioning undeclared names raise
    :class:`DSCLSemanticError`.
    """
    result = desugar(program)
    activity_names = list(dict.fromkeys(activities)) + result.coordinators
    external_names = list(dict.fromkeys(externals))
    known = set(activity_names) | set(external_names)

    constraints: List[Constraint] = []
    fine_grained: List[HappenBefore] = []
    exclusives: List[Exclusive] = []

    for statement in result.program:
        for endpoint in (statement.left.activity, statement.right.activity):
            if endpoint not in known:
                raise DSCLSemanticError(
                    "statement %r mentions undeclared activity %r"
                    % (str(statement), endpoint)
                )
        if isinstance(statement, Exclusive):
            exclusives.append(statement)
            continue
        assert isinstance(statement, HappenBefore)
        is_activity_level = (
            statement.left.state is ActivityState.FINISH
            and statement.right.state is ActivityState.START
        )
        if is_activity_level:
            constraints.append(
                Constraint(
                    statement.left.activity,
                    statement.right.activity,
                    statement.condition,
                )
            )
        else:
            fine_grained.append(statement)

    sc = SynchronizationConstraintSet(
        activities=activity_names,
        externals=external_names,
        constraints=constraints,
        guards=guards,
        domains=domains,
    )
    return CompiledConstraints(
        sc=sc,
        fine_grained=fine_grained,
        exclusives=exclusives,
        coordinators=result.coordinators,
    )


def guards_from_process(process: BusinessProcess) -> Dict[str, FrozenSet[Cond]]:
    """Execution guards of every branch-guarded activity in ``process``."""
    guards: Dict[str, FrozenSet[Cond]] = {}
    for activity in process.activities:
        pairs = process.guard_of(activity.name)
        if pairs:
            guards[activity.name] = frozenset(
                Cond(guard, outcome) for guard, outcome in pairs
            )
    return guards


def domains_from_process(process: BusinessProcess) -> ConditionDomains:
    """Outcome domains of every guard activity in ``process``."""
    domains = ConditionDomains()
    for activity in process.activities:
        if activity.is_guard:
            domains.declare(activity.name, activity.outcomes)
    return domains


def compile_dependencies(
    process: BusinessProcess, dependencies: DependencySet
) -> CompiledConstraints:
    """One-step compilation: dependency set -> DSCL -> constraint set.

    Uses the process model to declare activities, external ports, guards
    and guard domains.
    """
    dependencies.validate_against(process)
    program = dependencies_to_program(dependencies)
    return compile_program(
        program,
        activities=process.activity_names,
        externals=process.port_names(),
        guards=guards_from_process(process),
        domains=domains_from_process(process),
    )
