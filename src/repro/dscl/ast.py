"""DSCL abstract syntax.

A program is a sequence of statements; each statement relates two activity
*states* (:class:`~repro.model.activity.StateRef`).  Statements carry an
optional ``provenance`` string recording which dependency produced them —
keeping the *source* of every synchronization constraint first-class is the
point of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import DSCLSemanticError
from repro.model.activity import ActivityState, StateRef


@dataclass(frozen=True)
class HappenBefore:
    """``left ->[condition] right``: ``left`` is reached before ``right``.

    ``condition`` is the outcome of the *left* state's activity under which
    the precedence applies (``None`` = unconditional).
    """

    left: StateRef
    right: StateRef
    condition: Optional[str] = None
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.left.activity == self.right.activity:
            raise DSCLSemanticError(
                "HappenBefore cannot relate two states of the same activity %r "
                "(the lifecycle already orders them)" % self.left.activity
            )

    def __str__(self) -> str:
        arrow = "->" if self.condition is None else "->[%s]" % self.condition
        return "%s %s %s" % (self.left, arrow, self.right)


@dataclass(frozen=True)
class HappenTogether:
    """``left <->[condition] right``: both states reached together (barrier)."""

    left: StateRef
    right: StateRef
    condition: Optional[str] = None
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.left.activity == self.right.activity:
            raise DSCLSemanticError(
                "HappenTogether cannot relate two states of the same activity %r"
                % self.left.activity
            )

    def __str__(self) -> str:
        arrow = "<->" if self.condition is None else "<->[%s]" % self.condition
        return "%s %s %s" % (self.left, arrow, self.right)


@dataclass(frozen=True)
class Exclusive:
    """``left O right``: the two states must never be concurrent.

    Enforced dynamically by the scheduling engine (Section 4.2); excluded
    from static optimization.
    """

    left: StateRef
    right: StateRef
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.left.activity == self.right.activity:
            raise DSCLSemanticError(
                "Exclusive cannot relate two states of the same activity %r"
                % self.left.activity
            )

    def __str__(self) -> str:
        return "%s O %s" % (self.left, self.right)


Statement = Union[HappenBefore, HappenTogether, Exclusive]


def _split_qualified(qualified: str, what: str) -> "tuple[str, str]":
    role, dot, activity = qualified.partition(".")
    if not dot or not role or not activity or "." in activity:
        raise DSCLSemanticError(
            "%s must be a qualified role.activity name, got %r" % (what, qualified)
        )
    return role, activity


@dataclass(frozen=True)
class ObjectRelationDecl:
    """``object parent 1..* child``: a one-to-many object relation.

    Cases playing the ``child`` role fan out from a case playing the
    ``parent`` role over a shared object identity (e.g. one order, many
    line items).
    """

    parent: str
    child: str
    provenance: str = ""

    def __post_init__(self) -> None:
        if not self.parent or not self.child:
            raise DSCLSemanticError("object relation roles must be non-empty")
        if self.parent == self.child:
            raise DSCLSemanticError(
                "object relation cannot relate role %r to itself" % self.parent
            )

    def __str__(self) -> str:
        return "object %s 1..* %s" % (self.parent, self.child)


@dataclass(frozen=True)
class CrossCaseAll:
    """``child.act ->A parent.act``: an all-of cross-case barrier.

    The parent-role activity may start only after *every* sibling child
    case of the same object has finished (or skipped) the child activity.
    """

    child_role: str
    child_activity: str
    parent_role: str
    parent_activity: str
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.child_role == self.parent_role:
            raise DSCLSemanticError(
                "all-of sync must cross roles, got %r on both sides" % self.child_role
            )

    @classmethod
    def from_qualified(
        cls, left: str, right: str, provenance: str = ""
    ) -> "CrossCaseAll":
        child_role, child_activity = _split_qualified(left, "all-of sync source")
        parent_role, parent_activity = _split_qualified(right, "all-of sync target")
        return cls(child_role, child_activity, parent_role, parent_activity, provenance)

    def __str__(self) -> str:
        return "%s.%s ->A %s.%s" % (
            self.child_role,
            self.child_activity,
            self.parent_role,
            self.parent_activity,
        )


@dataclass(frozen=True)
class CrossCaseOnce:
    """``role.act ->1 role``: the activity fires exactly once per object.

    Across all cases of ``role`` sharing one object identity, at most one
    may execute ``activity`` (e.g. one invoice per order); the monitor
    reports a double-fire when a second case executes it.
    """

    role: str
    activity: str
    provenance: str = ""

    @classmethod
    def from_qualified(
        cls, left: str, right: str, provenance: str = ""
    ) -> "CrossCaseOnce":
        role, activity = _split_qualified(left, "exactly-once sync source")
        if right != role:
            raise DSCLSemanticError(
                "exactly-once sync %s.%s must scope to its own role, got %r"
                % (role, activity, right)
            )
        return cls(role, activity, provenance)

    def __str__(self) -> str:
        return "%s.%s ->1 %s" % (self.role, self.activity, self.role)


ObjectStatement = Union[ObjectRelationDecl, CrossCaseAll, CrossCaseOnce]


class Program:
    """An ordered DSCL program.

    ``statements`` are the single-case constraints; ``objects`` carries the
    (usually empty) object-centric declarations — kept in a separate list so
    every existing consumer of the single-case statement stream is
    untouched when no object constraints are declared.
    """

    def __init__(
        self,
        statements: Optional[List[Statement]] = None,
        objects: Optional[List[ObjectStatement]] = None,
    ) -> None:
        self.statements: List[Statement] = list(statements or [])
        self.objects: List[ObjectStatement] = list(objects or [])

    def add(self, statement: Statement) -> "Program":
        self.statements.append(statement)
        return self

    def add_object(self, statement: ObjectStatement) -> "Program":
        self.objects.append(statement)
        return self

    @property
    def happen_befores(self) -> List[HappenBefore]:
        return [s for s in self.statements if isinstance(s, HappenBefore)]

    @property
    def happen_togethers(self) -> List[HappenTogether]:
        return [s for s in self.statements if isinstance(s, HappenTogether)]

    @property
    def exclusives(self) -> List[Exclusive]:
        return [s for s in self.statements if isinstance(s, Exclusive)]

    def activities(self) -> List[str]:
        """Every activity name mentioned, in first-mention order."""
        seen: dict = {}
        for statement in self.statements:
            seen.setdefault(statement.left.activity, None)
            seen.setdefault(statement.right.activity, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self.statements == other.statements and self.objects == other.objects

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.objects:
            return "Program(%d statements, %d object statements)" % (
                len(self.statements),
                len(self.objects),
            )
        return "Program(%d statements)" % len(self.statements)


def happen_before(
    left_activity: str,
    right_activity: str,
    condition: Optional[str] = None,
    left_state: ActivityState = ActivityState.FINISH,
    right_state: ActivityState = ActivityState.START,
    provenance: str = "",
) -> HappenBefore:
    """Convenience constructor: by default ``F(left) -> S(right)``, the shape
    every activity-level dependency compiles to."""
    return HappenBefore(
        StateRef(left_activity, left_state),
        StateRef(right_activity, right_state),
        condition=condition,
        provenance=provenance,
    )
