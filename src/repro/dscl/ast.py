"""DSCL abstract syntax.

A program is a sequence of statements; each statement relates two activity
*states* (:class:`~repro.model.activity.StateRef`).  Statements carry an
optional ``provenance`` string recording which dependency produced them —
keeping the *source* of every synchronization constraint first-class is the
point of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import DSCLSemanticError
from repro.model.activity import ActivityState, StateRef


@dataclass(frozen=True)
class HappenBefore:
    """``left ->[condition] right``: ``left`` is reached before ``right``.

    ``condition`` is the outcome of the *left* state's activity under which
    the precedence applies (``None`` = unconditional).
    """

    left: StateRef
    right: StateRef
    condition: Optional[str] = None
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.left.activity == self.right.activity:
            raise DSCLSemanticError(
                "HappenBefore cannot relate two states of the same activity %r "
                "(the lifecycle already orders them)" % self.left.activity
            )

    def __str__(self) -> str:
        arrow = "->" if self.condition is None else "->[%s]" % self.condition
        return "%s %s %s" % (self.left, arrow, self.right)


@dataclass(frozen=True)
class HappenTogether:
    """``left <->[condition] right``: both states reached together (barrier)."""

    left: StateRef
    right: StateRef
    condition: Optional[str] = None
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.left.activity == self.right.activity:
            raise DSCLSemanticError(
                "HappenTogether cannot relate two states of the same activity %r"
                % self.left.activity
            )

    def __str__(self) -> str:
        arrow = "<->" if self.condition is None else "<->[%s]" % self.condition
        return "%s %s %s" % (self.left, arrow, self.right)


@dataclass(frozen=True)
class Exclusive:
    """``left O right``: the two states must never be concurrent.

    Enforced dynamically by the scheduling engine (Section 4.2); excluded
    from static optimization.
    """

    left: StateRef
    right: StateRef
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.left.activity == self.right.activity:
            raise DSCLSemanticError(
                "Exclusive cannot relate two states of the same activity %r"
                % self.left.activity
            )

    def __str__(self) -> str:
        return "%s O %s" % (self.left, self.right)


Statement = Union[HappenBefore, HappenTogether, Exclusive]


class Program:
    """An ordered DSCL program."""

    def __init__(self, statements: Optional[List[Statement]] = None) -> None:
        self.statements: List[Statement] = list(statements or [])

    def add(self, statement: Statement) -> "Program":
        self.statements.append(statement)
        return self

    @property
    def happen_befores(self) -> List[HappenBefore]:
        return [s for s in self.statements if isinstance(s, HappenBefore)]

    @property
    def happen_togethers(self) -> List[HappenTogether]:
        return [s for s in self.statements if isinstance(s, HappenTogether)]

    @property
    def exclusives(self) -> List[Exclusive]:
        return [s for s in self.statements if isinstance(s, Exclusive)]

    def activities(self) -> List[str]:
        """Every activity name mentioned, in first-mention order."""
        seen: dict = {}
        for statement in self.statements:
            seen.setdefault(statement.left.activity, None)
            seen.setdefault(statement.right.activity, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self.statements == other.statements

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Program(%d statements)" % len(self.statements)


def happen_before(
    left_activity: str,
    right_activity: str,
    condition: Optional[str] = None,
    left_state: ActivityState = ActivityState.FINISH,
    right_state: ActivityState = ActivityState.START,
    provenance: str = "",
) -> HappenBefore:
    """Convenience constructor: by default ``F(left) -> S(right)``, the shape
    every activity-level dependency compiles to."""
    return HappenBefore(
        StateRef(left_activity, left_state),
        StateRef(right_activity, right_state),
        condition=condition,
        provenance=provenance,
    )
