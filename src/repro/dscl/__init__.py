"""DSCL — the DAG Synchronization Constraint Language (Section 4.1).

DSCL treats an activity's life cycle as the states start (``S``), run
(``R``) and finish (``F``) and declares synchronization relations between
states of different activities:

* ``HappenBefore`` (``->`` / ``->[c]``) — conditional precedence;
* ``HappenTogether`` (``<->`` / ``<->[c]``) — barrier; syntax sugar,
  desugared through a coordinator activity;
* ``Exclusive`` (``O``) — mutual exclusion, checked dynamically by the
  scheduling engine and excluded from static optimization.

The package provides the AST, a text syntax (lexer + recursive-descent
parser + pretty-printer that round-trips), the desugaring pass, and the
compiler that turns dependency sets into DSCL programs and DSCL programs
into synchronization constraint sets.
"""

from repro.dscl.ast import (
    CrossCaseAll,
    CrossCaseOnce,
    Exclusive,
    HappenBefore,
    HappenTogether,
    ObjectRelationDecl,
    ObjectStatement,
    Program,
    Statement,
)
from repro.dscl.lexer import Token, TokenKind, tokenize
from repro.dscl.parser import parse
from repro.dscl.printer import to_text
from repro.dscl.desugar import desugar
from repro.dscl.compiler import (
    CompiledConstraints,
    compile_program,
    dependencies_to_program,
)
from repro.dscl import patterns

__all__ = [
    "CompiledConstraints",
    "CrossCaseAll",
    "CrossCaseOnce",
    "Exclusive",
    "HappenBefore",
    "HappenTogether",
    "ObjectRelationDecl",
    "ObjectStatement",
    "Program",
    "Statement",
    "Token",
    "TokenKind",
    "compile_program",
    "dependencies_to_program",
    "desugar",
    "parse",
    "patterns",
    "to_text",
    "tokenize",
]
