"""Pretty-printer for DSCL programs.

``parse(to_text(program)) == program`` modulo provenance comments, which is
checked by a property-based round-trip test.
"""

from __future__ import annotations

from repro.dscl.ast import Program


def to_text(program: Program, include_provenance: bool = True) -> str:
    """Render ``program`` in the DSCL surface syntax.

    Provenance strings become ``#`` comments above their statement.
    """
    lines = []
    for statement in program:
        provenance = getattr(statement, "provenance", "")
        if include_provenance and provenance:
            lines.append("# %s" % provenance)
        lines.append("%s;" % statement)
    for object_statement in program.objects:
        provenance = getattr(object_statement, "provenance", "")
        if include_provenance and provenance:
            lines.append("# %s" % provenance)
        lines.append("%s;" % object_statement)
    return "\n".join(lines) + ("\n" if lines else "")
