"""Workflow patterns expressed in DSCL (Section 4.1).

The paper: "DSCL can describe a wide variety of synchronization behavior,
like sequence, parallel split, synchronization, interleave parallel
routing, and milestone."  This module provides constructors for those
patterns (van der Aalst et al., *Workflow Patterns*) as DSCL statements,
so pattern-based designs can enter the same merge/optimize pipeline:

* **sequence** — chained ``F -> S`` happen-befores;
* **parallel split (AND-split)** — one activity releases many;
* **synchronization (AND-join)** — many activities release one;
* **exclusive choice (XOR-split)** — a guard releases one branch per
  outcome (conditional happen-befores);
* **simple merge (XOR-join)** — any branch releases the join, with the
  complementary conditions covering the guard's domain;
* **interleaved parallel routing** — activities unordered but never
  concurrent: pairwise ``Exclusive`` relations, enforced dynamically;
* **milestone** — an activity may only start while another is in progress:
  ``S(m) -> S(a)`` plus ``S(a) -> F(m)`` fine-grained constraints.

Every constructor returns a list of DSCL statements (happen-befores,
exclusives) ready to append to a :class:`~repro.dscl.ast.Program`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Sequence

from repro.dscl.ast import Exclusive, HappenBefore, Statement, happen_before
from repro.errors import DSCLSemanticError
from repro.model.activity import ActivityState, StateRef


def sequence(activities: Sequence[str]) -> List[HappenBefore]:
    """WP-1 Sequence: each activity finishes before the next starts."""
    if len(activities) < 2:
        raise DSCLSemanticError("a sequence needs at least two activities")
    return [
        happen_before(earlier, later, provenance="pattern: sequence")
        for earlier, later in zip(activities, activities[1:])
    ]


def parallel_split(source: str, branches: Iterable[str]) -> List[HappenBefore]:
    """WP-2 Parallel Split: ``source`` releases every branch concurrently."""
    statements = [
        happen_before(source, branch, provenance="pattern: parallel split")
        for branch in branches
    ]
    if not statements:
        raise DSCLSemanticError("a parallel split needs at least one branch")
    return statements


def synchronization(branches: Iterable[str], join: str) -> List[HappenBefore]:
    """WP-3 Synchronization (AND-join): every branch precedes the join."""
    statements = [
        happen_before(branch, join, provenance="pattern: synchronization")
        for branch in branches
    ]
    if not statements:
        raise DSCLSemanticError("a synchronization needs at least one branch")
    return statements


def exclusive_choice(
    guard: str, cases: Sequence[tuple]
) -> List[HappenBefore]:
    """WP-4 Exclusive Choice (XOR-split).

    ``cases`` is a sequence of ``(outcome, first_activity)`` pairs: when the
    guard evaluates to that outcome, the corresponding branch starts.
    """
    if not cases:
        raise DSCLSemanticError("an exclusive choice needs at least one case")
    return [
        happen_before(
            guard, first, condition=outcome, provenance="pattern: exclusive choice"
        )
        for outcome, first in cases
    ]


def simple_merge(last_of_branches: Iterable[str], join: str) -> List[HappenBefore]:
    """WP-5 Simple Merge (XOR-join): whichever branch ran releases the join.

    Expressed as one happen-before per branch; under dead-path elimination
    the skipped branches' obligations are vacuous, so the join fires as
    soon as the chosen branch finishes — and under the guard-aware closure
    semantics the complementary conditions merge into an unconditional
    ordering from the guard.
    """
    statements = [
        happen_before(last, join, provenance="pattern: simple merge")
        for last in last_of_branches
    ]
    if not statements:
        raise DSCLSemanticError("a simple merge needs at least one branch")
    return statements


def interleaved_parallel_routing(activities: Sequence[str]) -> List[Statement]:
    """WP-17 Interleaved Parallel Routing: any order, never concurrent.

    No happen-before is imposed; instead every pair is pairwise exclusive
    on its RUN state, which the scheduling engine enforces dynamically
    (Section 4.2 — ``O`` relations are not part of static optimization).
    """
    if len(activities) < 2:
        raise DSCLSemanticError(
            "interleaved parallel routing needs at least two activities"
        )
    return [
        Exclusive(
            StateRef(first, ActivityState.RUN),
            StateRef(second, ActivityState.RUN),
            provenance="pattern: interleaved parallel routing",
        )
        for first, second in combinations(activities, 2)
    ]


def milestone(milestone_activity: str, dependent: str) -> List[HappenBefore]:
    """WP-18 Milestone: ``dependent`` may only start while
    ``milestone_activity`` is in progress.

    Two fine-grained constraints: the milestone must have started before
    the dependent starts, and the dependent must have started before the
    milestone finishes — the overlapping-life-span synchronization the
    paper's ``collectSurvey``/``closeOrder`` example needs.
    """
    return [
        HappenBefore(
            StateRef(milestone_activity, ActivityState.START),
            StateRef(dependent, ActivityState.START),
            provenance="pattern: milestone (must have started)",
        ),
        HappenBefore(
            StateRef(dependent, ActivityState.START),
            StateRef(milestone_activity, ActivityState.FINISH),
            provenance="pattern: milestone (window still open)",
        ),
    ]
