"""Recursive-descent parser for the DSCL text syntax.

Grammar::

    program    := (statement | objectstmt)* EOF
    statement  := stateref relation stateref ';'
    relation   := '->' cond? | '<->' cond? | 'O'
    cond       := '[' IDENT ']'
    stateref   := ('S' | 'R' | 'F') '(' IDENT ')'
    objectstmt := 'object' IDENT '1..*' IDENT ';'
                | QUALIFIED '->A' QUALIFIED ';'
                | QUALIFIED '->1' IDENT ';'
    QUALIFIED  := IDENT containing exactly one '.'   (role.activity)

Object statements land in :attr:`Program.objects`; single-case statements
land in :attr:`Program.statements` exactly as before.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dscl.ast import (
    CrossCaseAll,
    CrossCaseOnce,
    Exclusive,
    HappenBefore,
    HappenTogether,
    ObjectRelationDecl,
    ObjectStatement,
    Program,
    Statement,
)
from repro.dscl.lexer import Token, TokenKind, tokenize
from repro.errors import DSCLSemanticError, DSCLSyntaxError
from repro.model.activity import ActivityState, StateRef

_STATE_LETTERS = {"S", "R", "F"}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise DSCLSyntaxError(
                "expected %s, found %r" % (kind.value, token.text or "end of input"),
                token.line,
                token.column,
            )
        return self._advance()

    def _state_ref(self) -> StateRef:
        token = self._expect(TokenKind.IDENT)
        if token.text not in _STATE_LETTERS:
            raise DSCLSyntaxError(
                "expected a state letter S, R or F, found %r" % token.text,
                token.line,
                token.column,
            )
        self._expect(TokenKind.LPAREN)
        name = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.RPAREN)
        return StateRef(name.text, ActivityState.from_letter(token.text))

    def _condition(self) -> Optional[str]:
        if self._peek().kind is TokenKind.LBRACKET:
            self._advance()
            value = self._expect(TokenKind.IDENT)
            self._expect(TokenKind.RBRACKET)
            return value.text
        return None

    def _statement(self) -> Statement:
        left = self._state_ref()
        operator = self._peek()
        if operator.kind is TokenKind.ARROW:
            self._advance()
            condition = self._condition()
            right = self._state_ref()
            self._expect(TokenKind.SEMI)
            return HappenBefore(left, right, condition)
        if operator.kind is TokenKind.TOGETHER:
            self._advance()
            condition = self._condition()
            right = self._state_ref()
            self._expect(TokenKind.SEMI)
            return HappenTogether(left, right, condition)
        if operator.kind is TokenKind.EXCLUSIVE:
            self._advance()
            right = self._state_ref()
            self._expect(TokenKind.SEMI)
            return Exclusive(left, right)
        raise DSCLSyntaxError(
            "expected a relation (->, <-> or O), found %r"
            % (operator.text or "end of input"),
            operator.line,
            operator.column,
        )

    def _object_statement(self) -> ObjectStatement:
        token = self._peek()
        if token.text == "object":
            self._advance()
            parent = self._expect(TokenKind.IDENT)
            self._expect(TokenKind.CARDINALITY)
            child = self._expect(TokenKind.IDENT)
            self._expect(TokenKind.SEMI)
            return self._semantic(
                token, lambda: ObjectRelationDecl(parent.text, child.text)
            )
        left = self._expect(TokenKind.IDENT)
        operator = self._peek()
        if operator.kind is TokenKind.ARROW_ALL:
            self._advance()
            right = self._expect(TokenKind.IDENT)
            self._expect(TokenKind.SEMI)
            return self._semantic(
                left, lambda: CrossCaseAll.from_qualified(left.text, right.text)
            )
        if operator.kind is TokenKind.ARROW_ONCE:
            self._advance()
            right = self._expect(TokenKind.IDENT)
            self._expect(TokenKind.SEMI)
            return self._semantic(
                left, lambda: CrossCaseOnce.from_qualified(left.text, right.text)
            )
        raise DSCLSyntaxError(
            "expected a cross-case relation (->A or ->1) after %r, found %r"
            % (left.text, operator.text or "end of input"),
            operator.line,
            operator.column,
        )

    @staticmethod
    def _semantic(token: Token, build: Callable[[], ObjectStatement]) -> ObjectStatement:
        """Attach source position to semantic errors raised while building."""
        try:
            return build()
        except DSCLSemanticError as error:
            raise DSCLSyntaxError(str(error), token.line, token.column)

    def program(self) -> Program:
        program = Program()
        while self._peek().kind is not TokenKind.EOF:
            token = self._peek()
            if token.kind is TokenKind.IDENT and (
                token.text == "object" or "." in token.text
            ):
                program.add_object(self._object_statement())
            else:
                program.add(self._statement())
        return program


def parse(source: str) -> Program:
    """Parse DSCL source text into a :class:`~repro.dscl.ast.Program`."""
    return _Parser(tokenize(source)).program()
