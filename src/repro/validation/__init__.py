"""Static validation of synchronization specifications.

* :mod:`repro.validation.conflicts` — synchronization cycles ("infinite
  synchronization sequences", Section 4.1), unsatisfiable execution guards,
  and exclusives that contradict happen-before constraints;
* :mod:`repro.validation.coverage` — under-/over-specification of one
  constraint set relative to another (what must be kept vs. what is noise).
"""

from repro.validation.conflicts import ConflictReport, find_conflicts
from repro.validation.coverage import CoverageReport, compare_constraint_sets

__all__ = [
    "ConflictReport",
    "CoverageReport",
    "compare_constraint_sets",
    "find_conflicts",
]
