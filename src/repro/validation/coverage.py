"""Coverage comparison between two constraint sets.

Generalizes the Figure 2 analysis to any pair of constraint sets: given an
*implementation* set (what a scheme enforces) and a *requirement* set (what
the dependencies demand), report which required orderings are missing
(under-specification) and which enforced orderings are unnecessary
(over-specification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

from repro.core.closure import Semantics, closure_map
from repro.core.constraints import SynchronizationConstraintSet

Pair = Tuple[str, str]


@dataclass(frozen=True)
class CoverageReport:
    """Set difference between enforced and required orderings."""

    missing: Tuple[Pair, ...]
    unnecessary: Tuple[Pair, ...]
    satisfied: Tuple[Pair, ...]

    @property
    def is_sufficient(self) -> bool:
        """Does the implementation enforce everything required?"""
        return not self.missing

    @property
    def is_tight(self) -> bool:
        """Does it enforce *only* what is required?"""
        return not self.unnecessary

    @property
    def is_exact(self) -> bool:
        return self.is_sufficient and self.is_tight


def _ordering_pairs(
    sc: SynchronizationConstraintSet, semantics: Semantics
) -> Set[Pair]:
    pairs: Set[Pair] = set()
    for source, facts in closure_map(sc, semantics).items():
        for target, _annotations in facts:
            pairs.add((source, target))
    return pairs


def compare_constraint_sets(
    implementation: SynchronizationConstraintSet,
    requirement: SynchronizationConstraintSet,
    semantics: Semantics = Semantics.GUARD_AWARE,
) -> CoverageReport:
    """Compare the ordering closures of implementation vs. requirement."""
    enforced = _ordering_pairs(implementation, semantics)
    required = _ordering_pairs(requirement, semantics)
    return CoverageReport(
        missing=tuple(sorted(required - enforced)),
        unnecessary=tuple(sorted(enforced - required)),
        satisfied=tuple(sorted(required & enforced)),
    )
