"""Conflict detection on synchronization constraint sets.

Three classes of design-stage conflicts are detected:

* **cycles** — a happen-before cycle can never be scheduled ("infinite
  synchronization sequence"); the weaver refuses such sets;
* **unsatisfiable guards** — an activity whose effective execution guard
  requires one guard activity to take two different outcomes can never
  execute (dead code that usually indicates a modeling error);
* **exclusive/order contradictions** — an ``Exclusive`` relation between
  activities one of which transitively precedes the other is vacuous (they
  can never run concurrently anyway), which again usually indicates a
  misunderstanding worth flagging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.conditions import is_contradictory
from repro.analysis.graphs import cyclic_components, has_path
from repro.core.constraints import SynchronizationConstraintSet
from repro.dscl.ast import Exclusive


@dataclass(frozen=True)
class ConflictReport:
    """Outcome of conflict detection."""

    cycles: Tuple[Tuple[str, ...], ...]
    unsatisfiable_guards: Tuple[str, ...]
    vacuous_exclusives: Tuple[str, ...]

    @property
    def has_conflicts(self) -> bool:
        return bool(self.cycles or self.unsatisfiable_guards)

    def severity_counts(self) -> Dict[str, int]:
        """Severity-aware rollup, aligned with the :mod:`repro.lint` codes.

        Cycles and unsatisfiable guards are ``error`` (the specification is
        broken); vacuous exclusives are ``info`` — worth flagging, never
        build-breaking (``has_conflicts`` ignores them, and so does the
        default lint gate).
        """
        return {
            "error": len(self.cycles) + len(self.unsatisfiable_guards),
            "warning": 0,
            "info": len(self.vacuous_exclusives),
        }

    @property
    def max_severity(self) -> Optional[str]:
        """``"error"``, ``"info"`` or ``None`` when the report is empty."""
        counts = self.severity_counts()
        for severity in ("error", "warning", "info"):
            if counts[severity]:
                return severity
        return None

    def summary(self) -> str:
        if not self.has_conflicts and not self.vacuous_exclusives:
            return "no conflicts detected"
        parts: List[str] = []
        if self.cycles:
            parts.append("%d synchronization cycle(s)" % len(self.cycles))
        if self.unsatisfiable_guards:
            parts.append(
                "%d activity(ies) with unsatisfiable guards"
                % len(self.unsatisfiable_guards)
            )
        if self.vacuous_exclusives:
            parts.append("%d vacuous exclusive(s)" % len(self.vacuous_exclusives))
        return "; ".join(parts)


def find_conflicts(
    sc: SynchronizationConstraintSet,
    exclusives: Iterable[Exclusive] = (),
) -> ConflictReport:
    """Run all static conflict checks on ``sc``."""
    graph = sc.as_graph()

    # Every strongly connected component with a cycle is reported, so a
    # specification with several independent conflicts surfaces all of
    # them in one pass.
    cycles: List[Tuple[str, ...]] = [
        tuple(str(node) for node in component)
        for component in cyclic_components(graph)
    ]

    unsatisfiable = tuple(
        sorted(
            activity
            for activity in sc.activities
            if is_contradictory(sc.effective_guard(activity))
        )
    )

    vacuous: List[str] = []
    for exclusive in exclusives:
        left = exclusive.left.activity
        right = exclusive.right.activity
        if has_path(graph, left, right) or has_path(graph, right, left):
            vacuous.append(str(exclusive))

    return ConflictReport(
        cycles=tuple(cycles),
        unsatisfiable_guards=unsatisfiable,
        vacuous_exclusives=tuple(sorted(vacuous)),
    )
