"""DEP001–DEP005: hot-swap migration findings as first-class lint rules.

The deploy engine (:mod:`repro.deploy.migrate`) produces
:class:`~repro.lint.diagnostics.Diagnostic` records while planning and
applying a constraint hot swap; registering them as rules makes the
text/JSON/SARIF renderers, ``--select DEP`` and ``--fail-on`` gating of
:mod:`repro.lint` work on migration outcomes unchanged.  Rules read an
attached plan from ``context.deploy`` (mirroring how the RT00x rules
read ``context.runtime``), so running the lint engine without a deploy
attachment simply reports them as clean.
"""

from __future__ import annotations

from typing import List

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintContext, rule

#: migrating this in-flight case to the new version would strand it (VER005).
MIGRATION_WOULD_STRAND = "DEP001"
#: the case's journaled prefix does not re-derive under the new program.
PREFIX_REPLAY_DIVERGED = "DEP002"
#: the case was failed at the swap barrier by the migration strategy.
CASE_REJECTED_AT_SWAP = "DEP003"
#: a crashed swap was rolled forward to a consistent version map.
SWAP_RECOVERED = "DEP004"
#: the pre-flight sweep found strandable prefixes (gate before rollout).
PREFLIGHT_STRAND_GATE = "DEP005"

DEP_CODES = (
    MIGRATION_WOULD_STRAND,
    PREFIX_REPLAY_DIVERGED,
    CASE_REJECTED_AT_SWAP,
    SWAP_RECOVERED,
    PREFLIGHT_STRAND_GATE,
)


def _deploy(context: LintContext, code: str) -> List[Diagnostic]:
    """Diagnostics of one DEP code from the attached migration plan."""
    plan = getattr(context, "deploy", None)
    if plan is None:
        return []
    return [d for d in plan.diagnostics if d.code == code]


@rule(
    MIGRATION_WOULD_STRAND,
    "migration-would-strand",
    "An in-flight case's history deadlocks under the new program version.",
    Severity.ERROR,
)
def migration_would_strand(context: LintContext) -> List[Diagnostic]:
    return _deploy(context, MIGRATION_WOULD_STRAND)


@rule(
    PREFIX_REPLAY_DIVERGED,
    "prefix-replay-divergence",
    "A case's journaled prefix does not replay cleanly under the new "
    "version; the case drains on its old version.",
    Severity.WARNING,
)
def prefix_replay_diverged(context: LintContext) -> List[Diagnostic]:
    return _deploy(context, PREFIX_REPLAY_DIVERGED)


@rule(
    CASE_REJECTED_AT_SWAP,
    "case-rejected-at-swap",
    "The migration strategy failed an in-flight case at the swap barrier.",
    Severity.ERROR,
)
def case_rejected_at_swap(context: LintContext) -> List[Diagnostic]:
    return _deploy(context, CASE_REJECTED_AT_SWAP)


@rule(
    SWAP_RECOVERED,
    "swap-recovered",
    "Recovery found a swap begun but not committed and rolled it forward.",
    Severity.WARNING,
)
def swap_recovered(context: LintContext) -> List[Diagnostic]:
    return _deploy(context, SWAP_RECOVERED)


@rule(
    PREFLIGHT_STRAND_GATE,
    "preflight-strand-gate",
    "The pre-flight sweep over all reachable old-version prefixes found "
    "histories the new version would strand.",
    Severity.ERROR,
)
def preflight_strand_gate(context: LintContext) -> List[Diagnostic]:
    return _deploy(context, PREFLIGHT_STRAND_GATE)
