"""Versioned constraint programs and incremental re-minimization.

A :class:`ProgramRegistry` owns the full compiled surface of every
deployed version of one process's synchronization constraints: the
declared (pre-minimization) set, the order-dependent minimal set, the
serving :class:`~repro.runtime.program.ConstraintProgram` and the
:class:`~repro.conformance.monitor.MonitorProgram` the migration engine
replays journaled prefixes against.

:meth:`ProgramRegistry.redeploy` turns an edit batch ``(added, removed)``
into the next version *without* minimizing from scratch: the registry
keeps the :class:`~repro.core.session.MinimizationSession` that produced
the current minimal set alive and calls
:meth:`~repro.core.session.MinimizationSession.rebase`, which replays the
previous pass's per-candidate decisions outside the edit's dependency
region and re-checks only inside it.  The result is bit-identical to a
cold ``minimize_fast`` on the edited declared set (pinned by a Hypothesis
differential in ``tests/test_session_rebase.py``) at a fraction of the
cost (``benchmarks/bench_deploy.py``).  Cyclic edited sets raise before
any state changes; ``cold=True`` forces the from-scratch path as the
timing baseline.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.closure import Semantics
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.session import MinimizationSession
from repro.model.process import BusinessProcess
from repro.obs import Observability
from repro.runtime.program import ConstraintProgram, compile_program


@dataclass(frozen=True)
class ProgramVersion:
    """One deployed version: the sets it was compiled from and the targets."""

    version: int
    declared: SynchronizationConstraintSet
    minimal: SynchronizationConstraintSet
    program: ConstraintProgram
    monitor: object  # MonitorProgram (kept untyped to avoid a hard import)


@dataclass(frozen=True)
class RedeployResult:
    """What one :meth:`ProgramRegistry.redeploy` produced."""

    version: ProgramVersion
    #: wall-clock seconds spent re-minimizing (rebase or cold).
    minimize_seconds: float
    #: True when the session rebase ran; False on the cold fallback.
    incremental: bool
    added: Tuple[Constraint, ...]
    removed: Tuple[Constraint, ...]


def load_edits(path: str) -> Tuple[Tuple[Constraint, ...], Tuple[Constraint, ...]]:
    """Parse an edits file: ``{"add": [{...}], "remove": [{...}]}``.

    Each entry is ``{"source": ..., "target": ..., "condition": ...}``
    with ``condition`` optional (unconditional edge when omitted).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError("edits file must hold a JSON object, got %s" % type(payload).__name__)

    def parse(entries: object, key: str) -> Tuple[Constraint, ...]:
        if not isinstance(entries, list):
            raise ValueError("edits file %r key must hold a list" % key)
        constraints = []
        for entry in entries:
            if not isinstance(entry, dict) or "source" not in entry or "target" not in entry:
                raise ValueError(
                    "each %r entry needs 'source' and 'target': %r" % (key, entry)
                )
            condition = entry.get("condition")
            constraints.append(
                Constraint(
                    str(entry["source"]),
                    str(entry["target"]),
                    None if condition is None else str(condition),
                )
            )
        return tuple(constraints)

    return parse(payload.get("add", []), "add"), parse(payload.get("remove", []), "remove")


class ProgramRegistry:
    """Version map ``vN -> ProgramVersion`` plus the live rebase session."""

    def __init__(
        self,
        process: BusinessProcess,
        declared: SynchronizationConstraintSet,
        semantics: Semantics = Semantics.GUARD_AWARE,
        fine_grained: Tuple = (),
        exclusives: Tuple = (),
        dependencies: object = None,
        bridged: Tuple = (),
        obs: Optional[Observability] = None,
    ) -> None:
        if not declared.is_activity_set:
            raise ValueError(
                "the registry deploys activity constraint sets; run service "
                "dependency translation first"
            )
        self.process = process
        self.semantics = semantics
        self._fine_grained = tuple(fine_grained)
        self._exclusives = tuple(exclusives)
        self._dependencies = dependencies
        self._bridged = tuple(bridged)
        self._obs = obs
        self._versions: Dict[int, ProgramVersion] = {}
        self.current_version = 0
        self._session: Optional[MinimizationSession] = None

        started = _time.perf_counter()
        minimal = self._minimize_cold(declared)
        self._publish(declared, minimal)
        self.base_minimize_seconds = _time.perf_counter() - started

    @classmethod
    def from_weave(cls, result, obs: Optional[Observability] = None) -> "ProgramRegistry":
        """Seed a registry from a :class:`~repro.core.pipeline.WeaveResult`.

        Version 1 is the weave's translated declared set minimized under
        the weave's semantics — the same sets ``program_from_weave``
        compiles, so a registry-served v1 and a plain serve agree.
        """
        return cls(
            result.process,
            result.asc,
            semantics=result.semantics,
            fine_grained=tuple(result.fine_grained),
            exclusives=tuple(result.exclusives),
            dependencies=result.dependencies,
            bridged=tuple(result.translation.bridged),
            obs=obs,
        )

    # -- lookup ---------------------------------------------------------------

    @property
    def current(self) -> ProgramVersion:
        return self._versions[self.current_version]

    def version(self, number: int) -> ProgramVersion:
        try:
            return self._versions[number]
        except KeyError:
            raise KeyError(
                "no deployed version %d (have: %s)"
                % (number, ", ".join(str(v) for v in sorted(self._versions)))
            ) from None

    def versions(self) -> Tuple[int, ...]:
        return tuple(sorted(self._versions))

    def programs(self) -> Dict[int, ConstraintProgram]:
        """``version -> serving program`` (what ``Runtime(programs=...)`` takes)."""
        return {number: entry.program for number, entry in self._versions.items()}

    # -- redeploy -------------------------------------------------------------

    def redeploy(
        self,
        added: Tuple[Constraint, ...] = (),
        removed: Tuple[Constraint, ...] = (),
        cold: bool = False,
    ) -> RedeployResult:
        """Re-minimize the edited declared set and publish the next version.

        Incremental by default (session :meth:`rebase`); ``cold=True``
        re-minimizes from scratch — same result, measured as the baseline
        by ``benchmarks/bench_deploy.py``.  Invalid edits (unknown
        activities, unknown removals, introduced cycles) raise ``ValueError``
        before any registry or session state changes.
        """
        added = tuple(added)
        removed = tuple(removed)
        span = (
            self._obs.tracer.span(
                "deploy.redeploy",
                added=len(added),
                removed=len(removed),
                cold=cold,
            )
            if self._obs is not None
            else None
        )
        if span is not None:
            span.__enter__()
        started = _time.perf_counter()
        try:
            declared = self._edited_declared(added, removed)
            if not cold and self._session is not None:
                minimal = self._session.rebase(added=added, removed=removed)
                incremental = True
            else:
                minimal = self._minimize_cold(declared)
                incremental = False
        finally:
            elapsed = _time.perf_counter() - started
            if span is not None:
                span.set(seconds=elapsed)
                span.__exit__(None, None, None)
        entry = self._publish(declared, minimal)
        if self._obs is not None:
            self._obs.metrics.histogram(
                "repro_deploy_rebase_seconds",
                "Wall-clock cost of one redeploy re-minimization.",
                ("mode",),
            ).labels(mode="incremental" if incremental else "cold").observe(elapsed)
            self._obs.metrics.counter(
                "repro_deploy_redeploys_total",
                "Published program versions beyond the base deployment.",
            ).inc()
        return RedeployResult(
            version=entry,
            minimize_seconds=elapsed,
            incremental=incremental,
            added=added,
            removed=removed,
        )

    # -- internals ------------------------------------------------------------

    def _edited_declared(
        self,
        added: Tuple[Constraint, ...],
        removed: Tuple[Constraint, ...],
    ) -> SynchronizationConstraintSet:
        """The edited declared set under rebase's exact edit semantics."""
        declared = self._versions[self.current_version].declared if self._versions else None
        if declared is None:
            raise RuntimeError("registry has no base version")
        removed_keys = {(c.source, c.target, c.condition) for c in removed}
        declared_keys = {
            (c.source, c.target, c.condition) for c in declared.constraints
        }
        unknown = removed_keys - declared_keys
        if unknown:
            raise ValueError(
                "cannot remove undeclared constraint(s): %s"
                % ", ".join(sorted("%s->%s" % (s, t) for s, t, _ in unknown))
            )
        known = set(declared.nodes)
        for constraint in added:
            if constraint.source not in known or constraint.target not in known:
                raise ValueError(
                    "added constraint %s -> %s references an unknown activity"
                    % (constraint.source, constraint.target)
                )
        survivors = [
            c
            for c in declared.constraints
            if (c.source, c.target, c.condition) not in removed_keys
        ]
        additions = []
        seen = set(removed_keys)
        surviving_keys = {(c.source, c.target, c.condition) for c in survivors}
        for constraint in added:
            key = (constraint.source, constraint.target, constraint.condition)
            if key in surviving_keys or key in {(
                c.source, c.target, c.condition) for c in additions}:
                continue
            additions.append(constraint)
        return declared.replace_constraints(survivors + additions)

    def _minimize_cold(
        self, declared: SynchronizationConstraintSet
    ) -> SynchronizationConstraintSet:
        """Cold pass; (re)builds the session ``rebase`` continues from."""
        session = MinimizationSession(declared, self.semantics)
        for constraint in declared.constraints:
            session.try_remove(constraint)
        self._session = session
        return session.to_constraint_set()

    def _publish(
        self,
        declared: SynchronizationConstraintSet,
        minimal: SynchronizationConstraintSet,
    ) -> ProgramVersion:
        from repro.conformance.monitor import categorize_constraints, compile_monitor

        number = self.current_version + 1
        entry = ProgramVersion(
            version=number,
            declared=declared,
            minimal=minimal,
            program=compile_program(
                self.process,
                minimal,
                fine_grained=self._fine_grained,
                exclusives=self._exclusives,
            ),
            monitor=compile_monitor(
                minimal,
                fine_grained=self._fine_grained,
                exclusives=self._exclusives,
                categories=categorize_constraints(
                    minimal,
                    dependencies=self._dependencies,
                    bridged=self._bridged,
                ),
            ),
        )
        self._versions[number] = entry
        self.current_version = number
        return entry
