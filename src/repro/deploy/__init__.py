"""Zero-downtime constraint hot swaps (ROADMAP item 2).

The deploy subsystem versions compiled constraint programs
(:mod:`repro.deploy.registry`), re-minimizes edited dependency sets
incrementally via :meth:`~repro.core.session.MinimizationSession.rebase`,
gates rollouts on the VER005 strand sweep, and migrates in-flight cases
live — upgrade / drain / reject, write-ahead journaled so a crash
mid-swap recovers to a consistent version map
(:mod:`repro.deploy.migrate`).  Migration findings surface as DEP001–
DEP005 lint rules (:mod:`repro.deploy.rules`).
"""

from repro.deploy.migrate import (
    CLASS_DRAIN,
    CLASS_REJECT,
    CLASS_UPGRADE,
    STRATEGIES,
    STRATEGY_DRAIN,
    STRATEGY_REJECT,
    STRATEGY_UPGRADE,
    CaseDecision,
    MigrationEngine,
    MigrationPlan,
    PoolSwap,
    case_history,
    execute_swap,
    plan_swap,
    preflight,
    resume_swap,
)
from repro.deploy.registry import (
    ProgramRegistry,
    ProgramVersion,
    RedeployResult,
    load_edits,
)
from repro.deploy.rules import DEP_CODES

__all__ = [
    "CLASS_DRAIN",
    "CLASS_REJECT",
    "CLASS_UPGRADE",
    "STRATEGIES",
    "STRATEGY_DRAIN",
    "STRATEGY_REJECT",
    "STRATEGY_UPGRADE",
    "CaseDecision",
    "DEP_CODES",
    "MigrationEngine",
    "MigrationPlan",
    "PoolSwap",
    "ProgramRegistry",
    "ProgramVersion",
    "RedeployResult",
    "case_history",
    "execute_swap",
    "load_edits",
    "plan_swap",
    "preflight",
    "resume_swap",
]
