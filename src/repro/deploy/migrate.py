"""Live case migration: classify, journal, and apply a constraint hot swap.

Every in-flight case of a running :class:`~repro.runtime.coordinator.
Runtime` is classified against the candidate version:

**reject**
    The case's executed history deadlocks somewhere under the new program
    — decided by :func:`repro.verify.strand.would_strand` (VER005), so
    swap-time rejections and the static verifier agree exactly.
**upgrade**
    Not strandable, the journaled prefix replays without error-severity
    findings against the new version's monitor, *and* an operational
    probe (a fresh :class:`~repro.runtime.instance.CaseInstance` replaying
    the prefix record-for-record, the crash-recovery machinery) re-derives
    the prefix cleanly.  Such a case can be swapped in place.
**drain**
    Everything else: the case is safe on its old version but its history
    cannot be re-anchored in the new one, so it finishes on vN.

The ``strategy`` then maps classifications to actions: ``drain`` keeps
every case on its old version, ``upgrade`` (the default) migrates
upgradable cases and drains the rest (rejecting only strandable ones),
``reject`` fails anything that cannot upgrade.

Applying a plan is write-ahead journaled as ``{"rt": "dep"}`` records —
``begin``, one ``assign`` per case *before* its action applies, then
``commit``.  A crash mid-swap therefore leaves a ``begin`` without its
``commit``; :func:`resume_swap` rolls the swap forward at recovery:
already-assigned cases keep their durable decisions, unassigned cases are
re-classified (decisions are pure functions of the journaled prefixes, so
the re-run decides identically) and the ``commit`` is finally written.
The swap only ever runs between scheduling rounds — the barrier point
where every resident case sits in its shard queue exactly once — which is
what makes in-place instance replacement safe.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.conformance.events import FINISH, SKIP, START, Event
from repro.deploy.registry import ProgramVersion
from repro.deploy.rules import (
    CASE_REJECTED_AT_SWAP,
    MIGRATION_WOULD_STRAND,
    PREFIX_REPLAY_DIVERGED,
    PREFLIGHT_STRAND_GATE,
    SWAP_RECOVERED,
)
from repro.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.runtime.coordinator import Runtime
from repro.runtime.instance import CaseStatus
from repro.runtime.journal import JournalState, read_journal
from repro.verify.space import DEFAULT_STATE_LIMIT, StateSpace
from repro.verify.strand import StrandReport, migration_strands, would_strand

#: classification outcomes (what the case *can* do).
CLASS_UPGRADE = "upgrade"
CLASS_DRAIN = "drain"
CLASS_REJECT = "reject"

#: strategies (what the operator *wants*).
STRATEGY_DRAIN = "drain"
STRATEGY_UPGRADE = "upgrade"
STRATEGY_REJECT = "reject"
STRATEGIES = (STRATEGY_DRAIN, STRATEGY_UPGRADE, STRATEGY_REJECT)


@dataclass(frozen=True)
class PoolSwap:
    """Deploy spec a :class:`~repro.runtime.workers.WorkerPool` arms at
    construction.

    Passed before the pool forks so every worker process inherits the
    compiled old/new programs by memory, not by pickling.  ``after`` is
    the per-worker pause target: each worker stops at the first scheduling
    barrier once that many of *its own* cases have finished, the pool
    broadcasts the swap once every worker is paused, and all workers flip
    versions in the same exchange round.
    """

    old: ProgramVersion
    new: ProgramVersion
    strategy: str = STRATEGY_UPGRADE
    after: int = 0
    state_limit: int = DEFAULT_STATE_LIMIT


@dataclass(frozen=True)
class CaseDecision:
    """One case's classification and the action the strategy chose."""

    case: str
    classification: str
    action: str
    #: program version the case runs under after the swap.
    version: int
    reasons: Tuple[str, ...] = ()


@dataclass
class MigrationPlan:
    """Everything one swap decided (and, unless dry-run, applied)."""

    from_version: int
    to_version: int
    strategy: str
    decisions: List[CaseDecision] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    applied: bool = False
    #: True when this plan rolled forward a crashed swap at recovery.
    recovered: bool = False

    def count(self, action: str) -> int:
        return sum(1 for decision in self.decisions if decision.action == action)

    @property
    def upgraded(self) -> int:
        return self.count(CLASS_UPGRADE)

    @property
    def drained(self) -> int:
        return self.count(CLASS_DRAIN)

    @property
    def rejected(self) -> int:
        return self.count(CLASS_REJECT)

    def to_dict(self) -> Dict[str, object]:
        return {
            "from_version": self.from_version,
            "to_version": self.to_version,
            "strategy": self.strategy,
            "applied": self.applied,
            "recovered": self.recovered,
            "upgraded": self.upgraded,
            "drained": self.drained,
            "rejected": self.rejected,
            "decisions": [
                {
                    "case": decision.case,
                    "classification": decision.classification,
                    "action": decision.action,
                    "version": decision.version,
                    "reasons": list(decision.reasons),
                }
                for decision in self.decisions
            ],
        }


def case_history(
    events: Tuple[Event, ...],
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Dict[str, str]]:
    """``(executed, skipped, outcomes)`` of a journaled event prefix.

    Only *finished* activities count as executed — an activity mid-run at
    the swap point contributes nothing to the strand query's done-mask,
    which matches migrating at quiescent points only.
    """
    executed: List[str] = []
    skipped: List[str] = []
    outcomes: Dict[str, str] = {}
    for event in events:
        if event.lifecycle == FINISH:
            executed.append(event.activity)
            if event.outcome is not None:
                outcomes[event.activity] = event.outcome
        elif event.lifecycle == SKIP:
            skipped.append(event.activity)
        elif event.lifecycle == START:
            pass
    return tuple(sorted(executed)), tuple(sorted(skipped)), outcomes


def preflight(
    old: ProgramVersion,
    new: ProgramVersion,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> Tuple[StrandReport, List[Diagnostic]]:
    """Sweep every reachable old-version prefix before rollout (DEP005).

    Wraps :func:`repro.verify.strand.migration_strands`: the returned
    diagnostics are deploy-side gate findings, one per strandable prefix,
    each carrying the verifier's counterexample as evidence.
    """
    report = migration_strands(old.program, new.program, state_limit=state_limit)
    findings: List[Diagnostic] = []
    for executed, outcomes, counterexample in report.stranded:
        findings.append(
            Diagnostic(
                code=PREFLIGHT_STRAND_GATE,
                severity=Severity.ERROR,
                message=(
                    "v%d -> v%d: a case that executed {%s} would strand under "
                    "the new version"
                    % (old.version, new.version, ", ".join(executed))
                ),
                location=SourceLocation("process", new.program.process.name),
                evidence=(
                    "outcomes: %s"
                    % (", ".join("%s=%s" % kv for kv in outcomes) or "<none>"),
                    "continuation: "
                    + (" -> ".join(counterexample) or "<no step possible>"),
                ),
            )
        )
    if report.truncated:
        findings.append(
            Diagnostic(
                code=PREFLIGHT_STRAND_GATE,
                severity=Severity.ERROR,
                message=(
                    "v%d -> v%d: pre-flight sweep truncated at the state "
                    "limit; strand-safety is undecided"
                    % (old.version, new.version)
                ),
                location=SourceLocation("process", new.program.process.name),
                evidence=("state_limit: %d" % state_limit,),
            )
        )
    return report, findings


class MigrationEngine:
    """Classifies in-flight cases against one ``old -> new`` candidate swap.

    One engine per swap: the new program's :class:`StateSpace` is shared
    across every case query, so the antichain frontier amortizes exactly
    as in :func:`~repro.verify.strand.migration_strands`.
    """

    def __init__(
        self,
        old: ProgramVersion,
        new: ProgramVersion,
        state_limit: int = DEFAULT_STATE_LIMIT,
    ) -> None:
        self.old = old
        self.new = new
        self._space = StateSpace(new.program, state_limit=state_limit)
        self._state_limit = state_limit

    def classify(
        self, runtime: Runtime, case: str, events: Tuple[Event, ...]
    ) -> Tuple[str, Tuple[str, ...], List[Diagnostic]]:
        """``(classification, reasons, diagnostics)`` for one resident case."""
        from repro.conformance.monitor import ConformanceMonitor

        executed, skipped, outcomes = case_history(events)
        strand = would_strand(
            self.old.program,
            self.new.program,
            executed,
            skipped,
            outcomes,
            space=self._space,
            state_limit=self._state_limit,
        )
        if strand.stranded or strand.truncated:
            reason = (
                "strand-safety undecided (state limit reached)"
                if strand.truncated and not strand.stranded
                else "executed prefix {%s} deadlocks under v%d"
                % (", ".join(executed), self.new.version)
            )
            evidence: Tuple[str, ...] = ()
            if strand.stranded:
                _, _, counterexample = strand.stranded[0]
                evidence = (
                    "continuation: "
                    + (" -> ".join(counterexample) or "<no step possible>"),
                )
            return (
                CLASS_REJECT,
                (reason,),
                [
                    Diagnostic(
                        code=MIGRATION_WOULD_STRAND,
                        severity=Severity.ERROR,
                        message="[%s] %s" % (case, reason),
                        location=SourceLocation("case", case),
                        evidence=("case: %s" % case,) + evidence,
                    )
                ],
            )

        monitor = ConformanceMonitor(self.new.monitor)
        monitor_errors = [
            diagnostic
            for diagnostic in monitor.replay_events(events)
            if diagnostic.severity.at_least(Severity.ERROR)
        ]
        if monitor_errors:
            reason = (
                "journaled prefix violates v%d monitor: %s"
                % (self.new.version, monitor_errors[0].message)
            )
            return (
                CLASS_DRAIN,
                (reason,),
                [self._divergence(case, reason)],
            )

        probe = runtime.probe_case(case, self.new.program, events)
        active = True
        while probe.replaying and active:
            active = probe.advance()
        if probe.status is CaseStatus.FAILED or probe.replaying:
            reason = (
                probe.reason
                if probe.reason is not None
                else "prefix replay stalled with %d journaled event(s) left"
                % len(probe._prefix)  # noqa: SLF001 — diagnostic detail only
            )
            return (
                CLASS_DRAIN,
                (reason,),
                [self._divergence(case, reason)],
            )
        return CLASS_UPGRADE, (), []

    def _divergence(self, case: str, reason: str) -> Diagnostic:
        return Diagnostic(
            code=PREFIX_REPLAY_DIVERGED,
            severity=Severity.WARNING,
            message="[%s] drains on v%d: %s" % (case, self.old.version, reason),
            location=SourceLocation("case", case),
            evidence=("case: %s" % case, "to_version: %d" % self.new.version),
        )


def _action_for(classification: str, strategy: str) -> str:
    """The strategy matrix (classification x strategy -> applied action)."""
    if strategy == STRATEGY_DRAIN:
        return CLASS_DRAIN
    if classification == CLASS_UPGRADE:
        return CLASS_UPGRADE
    if classification == CLASS_REJECT:
        return CLASS_REJECT
    return CLASS_DRAIN if strategy == STRATEGY_UPGRADE else CLASS_REJECT


def _check_swappable(runtime: Runtime, strategy: str) -> None:
    if strategy not in STRATEGIES:
        raise ValueError(
            "strategy must be one of %s, got %r" % ("/".join(STRATEGIES), strategy)
        )
    if runtime.has_objects:
        raise ValueError(
            "hot swap is not supported for object-centric runs: cross-case "
            "barriers couple case states across versions (drain the run "
            "and redeploy cold instead)"
        )
    if runtime.journal is None:
        raise ValueError(
            "hot swap requires a write-ahead journal: migration decisions "
            "are classified from (and journaled to) it"
        )


def plan_swap(
    runtime: Runtime,
    engine: MigrationEngine,
    strategy: str = STRATEGY_UPGRADE,
    state: Optional[JournalState] = None,
) -> MigrationPlan:
    """Classify every resident case; decide actions; apply nothing."""
    _check_swappable(runtime, strategy)
    journal = runtime.journal
    assert journal is not None  # _check_swappable
    if state is None:
        journal.flush()
        state = read_journal(journal.path)
    plan = MigrationPlan(
        from_version=engine.old.version,
        to_version=engine.new.version,
        strategy=strategy,
    )
    for case in sorted(runtime.resident_cases()):
        journaled = state.cases.get(case)
        events = tuple(journaled.events) if journaled is not None else ()
        classification, reasons, diagnostics = engine.classify(runtime, case, events)
        action = _action_for(classification, strategy)
        plan.decisions.append(
            CaseDecision(
                case=case,
                classification=classification,
                action=action,
                version=(
                    engine.new.version
                    if action == CLASS_UPGRADE
                    else (journaled.version if journaled is not None else 1)
                ),
                reasons=reasons,
            )
        )
        plan.diagnostics.extend(diagnostics)
    return plan


def _apply_decision(
    runtime: Runtime,
    plan: MigrationPlan,
    decision: CaseDecision,
    state: JournalState,
    now: float,
) -> None:
    journal = runtime.journal
    assert journal is not None
    journal.dep_assign(decision.case, decision.version, decision.action, now)
    if decision.action == CLASS_UPGRADE:
        journaled = state.cases.get(decision.case)
        prefix = tuple(journaled.events) if journaled is not None else ()
        runtime.swap_case(decision.case, decision.version, prefix)
    elif decision.action == CLASS_DRAIN:
        runtime.drain_case(decision.case)
    else:
        reason = "; ".join(decision.reasons) or (
            "strategy %r rejects non-upgradable cases" % plan.strategy
        )
        message = "rejected at v%d -> v%d swap barrier: %s" % (
            plan.from_version,
            plan.to_version,
            reason,
        )
        diagnostic = Diagnostic(
            code=CASE_REJECTED_AT_SWAP,
            severity=Severity.ERROR,
            message="[%s] %s" % (decision.case, message),
            location=SourceLocation("case", decision.case),
            evidence=(
                "case: %s" % decision.case,
                "classification: %s" % decision.classification,
                "strategy: %s" % plan.strategy,
            ),
        )
        plan.diagnostics.append(diagnostic)
        runtime.reject_case(decision.case, message, diagnostic)


def execute_swap(
    runtime: Runtime,
    engine: MigrationEngine,
    strategy: str = STRATEGY_UPGRADE,
    dry_run: bool = False,
    now: float = 0.0,
) -> MigrationPlan:
    """Plan and (unless ``dry_run``) apply one hot swap at the barrier.

    Must be called between scheduling rounds — after
    :meth:`~repro.runtime.coordinator.Runtime.run_until_completed`
    returned, before the next ``run*`` call.  Write-ahead order: every
    decision is journaled (``assign``) before it applies; ``begin`` before
    any decision; ``commit`` only after all of them.  New admissions after
    the swap run the new version.
    """
    started = _time.perf_counter()
    obs = runtime._obs  # noqa: SLF001 — same-subsystem instrumentation
    span = (
        obs.tracer.span(
            "deploy.swap",
            from_version=engine.old.version,
            to_version=engine.new.version,
            strategy=strategy,
            dry_run=dry_run,
        )
        if obs is not None
        else None
    )
    if span is not None:
        span.__enter__()
    try:
        _check_swappable(runtime, strategy)
        journal = runtime.journal
        assert journal is not None
        journal.flush()
        state = read_journal(journal.path)
        plan = plan_swap(runtime, engine, strategy, state=state)
        if dry_run:
            return plan
        journal.dep_begin(engine.old.version, engine.new.version, now)
        runtime.register_program(engine.new.version, engine.new.program)
        for decision in plan.decisions:
            _apply_decision(runtime, plan, decision, state, now)
        journal.dep_commit(engine.new.version, now)
        runtime.activate_version(engine.new.version)
        journal.flush()
        plan.applied = True
        # DEP001/DEP002 classification findings flow into the runtime
        # report; DEP003 already arrived there via the rejected instance.
        runtime.diagnostics.extend(
            d for d in plan.diagnostics if d.code != CASE_REJECTED_AT_SWAP
        )
        if obs is not None:
            counter = obs.metrics.counter(
                "repro_deploy_migrations_total",
                "Swap migration decisions applied, by action.",
                ("action",),
            )
            for decision in plan.decisions:
                counter.labels(action=decision.action).inc()
        return plan
    finally:
        if span is not None:
            span.set(seconds=_time.perf_counter() - started)
            span.__exit__(None, None, None)


def _assigned_after_begin(state: JournalState) -> Dict[str, Tuple[int, str]]:
    """``case -> (version, action)`` for assigns after the last ``begin``."""
    last_begin = None
    for index, record in enumerate(state.deploys):
        if record.get("kind") == "begin":
            last_begin = index
    assigned: Dict[str, Tuple[int, str]] = {}
    if last_begin is None:
        return assigned
    for record in state.deploys[last_begin + 1 :]:
        if record.get("kind") == "assign":
            assigned[str(record["case"])] = (
                int(record["version"]),
                str(record["action"]),
            )
    return assigned


def resume_swap(
    runtime: Runtime,
    engine: MigrationEngine,
    state: JournalState,
    strategy: str = STRATEGY_UPGRADE,
    now: float = 0.0,
) -> Optional[MigrationPlan]:
    """Roll a crashed swap forward after :meth:`Runtime.recover`.

    A ``begin`` without its ``commit`` in ``state`` means the crash hit
    mid-swap.  Cases with durable ``assign`` records keep those decisions
    (recovery already re-activated upgraded cases under the new version);
    the remaining resident cases are re-classified — decisions are pure
    functions of the journaled prefixes, so the roll-forward converges to
    the same version map as an uncrashed swap — and the ``commit`` is
    finally written.  Returns ``None`` when no swap was pending.
    """
    pending = state.pending_deploy()
    if pending is None:
        return None
    _check_swappable(runtime, strategy)
    journal = runtime.journal
    assert journal is not None
    if int(pending["to"]) != engine.new.version:
        raise ValueError(
            "journal has a pending swap to version %d but the engine targets "
            "version %d" % (int(pending["to"]), engine.new.version)
        )
    plan = MigrationPlan(
        from_version=int(pending["from"]),
        to_version=int(pending["to"]),
        strategy=strategy,
        recovered=True,
    )
    runtime.register_program(engine.new.version, engine.new.program)
    assigned = _assigned_after_begin(state)
    resident = runtime.resident_cases()

    for case in sorted(assigned):
        version, action = assigned[case]
        plan.decisions.append(
            CaseDecision(
                case=case,
                classification=action,
                action=action,
                version=version,
                reasons=("journaled before the crash",),
            )
        )
        if action == CLASS_UPGRADE:
            # Recovery already re-activated the case under its assigned
            # version (the assign record set its version map entry).
            runtime.upgraded += 1
        elif action == CLASS_DRAIN:
            runtime.drained += 1
        elif case in resident:
            # Assigned reject, but the crash hit before the FAILED
            # completion was journaled: apply it now.
            message = "rejected at v%d -> v%d swap barrier (recovered)" % (
                plan.from_version,
                plan.to_version,
            )
            diagnostic = Diagnostic(
                code=CASE_REJECTED_AT_SWAP,
                severity=Severity.ERROR,
                message="[%s] %s" % (case, message),
                location=SourceLocation("case", case),
                evidence=("case: %s" % case, "strategy: %s" % strategy),
            )
            plan.diagnostics.append(diagnostic)
            runtime.reject_case(case, message, diagnostic)
        else:
            runtime.swap_rejected += 1

    for case in sorted(resident):
        if case in assigned:
            continue
        journaled = state.cases.get(case)
        events = tuple(journaled.events) if journaled is not None else ()
        classification, reasons, diagnostics = engine.classify(runtime, case, events)
        action = _action_for(classification, strategy)
        decision = CaseDecision(
            case=case,
            classification=classification,
            action=action,
            version=(
                engine.new.version
                if action == CLASS_UPGRADE
                else (journaled.version if journaled is not None else 1)
            ),
            reasons=reasons,
        )
        plan.decisions.append(decision)
        plan.diagnostics.extend(diagnostics)
        _apply_decision(runtime, plan, decision, state, now)

    journal.dep_commit(engine.new.version, now)
    runtime.activate_version(engine.new.version)
    journal.flush()
    plan.applied = True
    plan.diagnostics.append(
        Diagnostic(
            code=SWAP_RECOVERED,
            severity=Severity.WARNING,
            message=(
                "rolled a crashed v%d -> v%d swap forward: %d decision(s) "
                "journaled before the crash, %d re-derived"
                % (
                    plan.from_version,
                    plan.to_version,
                    len(assigned),
                    len(plan.decisions) - len(assigned),
                )
            ),
            location=SourceLocation("journal", journal.path),
            evidence=("pending begin committed at recovery",),
        )
    )
    runtime.diagnostics.extend(
        d for d in plan.diagnostics if d.code != CASE_REJECTED_AT_SWAP
    )
    return plan
