"""Simulated remote services.

Each asynchronous service fires its callback ``latency`` time units after
*all* of its request ports have been invoked; the callback makes the
messages awaited by the service's receive activities available.

A *sequential* (state-aware) service additionally verifies that its request
ports are invoked in declaration order and raises
:class:`~repro.errors.ProtocolViolation` otherwise — reproducing the
scenario of Section 2 where the Purchase service "does not receive a
shipping invoice without receiving the corresponding purchase order".
Strictness is configurable so experiments can *demonstrate* the fault mode
that dropping a service dependency exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ProtocolViolation, SchedulingError
from repro.model.process import BusinessProcess
from repro.model.service import Service


@dataclass
class _ServiceState:
    service: Service
    invoked: List[str] = field(default_factory=list)
    invoke_times: Dict[str, float] = field(default_factory=dict)
    callback_time: Optional[float] = None
    violations: List[str] = field(default_factory=list)


class ServiceSimulator:
    """Tracks interactions of one run with every remote service."""

    def __init__(self, process: BusinessProcess, strict: bool = True) -> None:
        self._strict = strict
        self._states: Dict[str, _ServiceState] = {
            service.name: _ServiceState(service) for service in process.services
        }

    # -- invocation side -----------------------------------------------------

    def invoke(self, service_name: str, port_name: str, time: float) -> Optional[float]:
        """Record an invocation of ``port_name`` at ``time``.

        Returns the callback time if this invocation completes the request
        set of an asynchronous service, else ``None``.  Raises
        :class:`ProtocolViolation` (in strict mode) when a sequential
        service observes out-of-order ports.
        """
        state = self._states.get(service_name)
        if state is None:
            raise SchedulingError("invocation of unknown service %r" % service_name)
        service = state.service
        known_ports = [port.name for port in service.request_ports]
        if port_name not in known_ports:
            raise SchedulingError(
                "service %r has no request port %r" % (service_name, port_name)
            )
        if port_name in state.invoke_times:
            raise SchedulingError(
                "port %r of service %r invoked twice" % (port_name, service_name)
            )

        if service.sequential:
            expected = known_ports[len(state.invoked)]
            if port_name != expected:
                message = (
                    "state-aware service %r received port %r before %r"
                    % (service_name, port_name, expected)
                )
                state.violations.append(message)
                if self._strict:
                    raise ProtocolViolation(message)

        state.invoked.append(port_name)
        state.invoke_times[port_name] = time

        if service.asynchronous and len(state.invoked) == len(known_ports):
            state.callback_time = max(state.invoke_times.values()) + service.latency
            return state.callback_time
        return None

    # -- receive side -------------------------------------------------------------

    def callback_time(self, service_name: str) -> Optional[float]:
        """When the service's callback message becomes available (or None)."""
        state = self._states.get(service_name)
        if state is None:
            raise SchedulingError("unknown service %r" % service_name)
        return state.callback_time

    def message_available(self, service_name: str, time: float) -> bool:
        callback = self.callback_time(service_name)
        return callback is not None and callback <= time

    # -- reporting -----------------------------------------------------------------

    def violations(self) -> List[str]:
        """All protocol violations observed (non-strict mode records them)."""
        result: List[str] = []
        for state in self._states.values():
            result.extend(state.violations)
        return result

    def invocation_order(self, service_name: str) -> List[str]:
        return list(self._states[service_name].invoked)
