"""Execution traces: what happened when during a simulated run.

Traces are also the bridge into :mod:`repro.conformance`: they serialize
to JSON Lines (:meth:`ExecutionTrace.to_jsonl` /
:meth:`ExecutionTrace.from_jsonl`), and the conformance adapter turns a
trace into a replayable event log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ActivityRecord:
    """Lifecycle of one activity in a run.

    ``start``/``finish`` are ``None`` for skipped activities; ``skipped_at``
    is ``None`` for executed ones.  ``outcome`` is set for guard activities.
    """

    name: str
    start: Optional[float] = None
    finish: Optional[float] = None
    skipped_at: Optional[float] = None
    outcome: Optional[str] = None

    @property
    def executed(self) -> bool:
        return self.finish is not None

    @property
    def skipped(self) -> bool:
        return self.skipped_at is not None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; ``None`` fields are omitted."""
        payload: Dict[str, Any] = {"name": self.name}
        for key in ("start", "finish", "skipped_at", "outcome"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ActivityRecord":
        return cls(
            name=payload["name"],
            start=payload.get("start"),
            finish=payload.get("finish"),
            skipped_at=payload.get("skipped_at"),
            outcome=payload.get("outcome"),
        )


@dataclass
class ExecutionTrace:
    """Chronological record of a run."""

    records: Dict[str, ActivityRecord] = field(default_factory=dict)
    #: (time, message) debug/event log in chronological order.
    log: List[Tuple[float, str]] = field(default_factory=list)

    def note(self, time: float, message: str) -> None:
        self.log.append((time, message))

    def record(self, record: ActivityRecord) -> None:
        self.records[record.name] = record

    def executed(self) -> List[ActivityRecord]:
        return sorted(
            (r for r in self.records.values() if r.executed),
            key=lambda r: (r.start, r.name),
        )

    def skipped(self) -> List[str]:
        return sorted(r.name for r in self.records.values() if r.skipped)

    def order_of(self, name: str) -> Optional[float]:
        record = self.records.get(name)
        return record.start if record else None

    def happened_before(self, first: str, second: str) -> bool:
        """Did ``first`` finish before ``second`` started?  False unless
        both executed."""
        a = self.records.get(first)
        b = self.records.get(second)
        if a is None or b is None or not a.executed or not b.executed:
            return False
        return a.finish <= b.start

    def makespan(self) -> float:
        finishes = [r.finish for r in self.records.values() if r.finish is not None]
        return max(finishes) if finishes else 0.0

    # -- serialization -----------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize as JSON Lines: one ``note`` object per log entry (in
        chronological engine order) followed by one ``record`` object per
        activity.  The note stream preserves the exact event interleaving
        the engine produced, which :mod:`repro.conformance` relies on to
        replay same-timestamp events in their true causal order."""
        lines: List[str] = []
        for time, message in self.log:
            lines.append(
                json.dumps({"type": "note", "time": time, "message": message})
            )
        for record in self.records.values():
            lines.append(
                json.dumps({"type": "record", **record.to_dict()}, sort_keys=True)
            )
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "ExecutionTrace":
        """Rebuild a trace from :meth:`to_jsonl` output (round-trip safe)."""
        trace = cls()
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as error:
                raise ValueError("line %d: invalid JSON (%s)" % (number, error))
            kind = payload.get("type")
            if kind == "note":
                trace.note(float(payload["time"]), str(payload["message"]))
            elif kind == "record":
                trace.record(ActivityRecord.from_dict(payload))
            else:
                raise ValueError(
                    "line %d: unknown entry type %r (expected note or record)"
                    % (number, kind)
                )
        return trace
