"""Execution traces: what happened when during a simulated run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ActivityRecord:
    """Lifecycle of one activity in a run.

    ``start``/``finish`` are ``None`` for skipped activities; ``skipped_at``
    is ``None`` for executed ones.  ``outcome`` is set for guard activities.
    """

    name: str
    start: Optional[float] = None
    finish: Optional[float] = None
    skipped_at: Optional[float] = None
    outcome: Optional[str] = None

    @property
    def executed(self) -> bool:
        return self.finish is not None

    @property
    def skipped(self) -> bool:
        return self.skipped_at is not None


@dataclass
class ExecutionTrace:
    """Chronological record of a run."""

    records: Dict[str, ActivityRecord] = field(default_factory=dict)
    #: (time, message) debug/event log in chronological order.
    log: List[Tuple[float, str]] = field(default_factory=list)

    def note(self, time: float, message: str) -> None:
        self.log.append((time, message))

    def record(self, record: ActivityRecord) -> None:
        self.records[record.name] = record

    def executed(self) -> List[ActivityRecord]:
        return sorted(
            (r for r in self.records.values() if r.executed),
            key=lambda r: (r.start, r.name),
        )

    def skipped(self) -> List[str]:
        return sorted(r.name for r in self.records.values() if r.skipped)

    def order_of(self, name: str) -> Optional[float]:
        record = self.records.get(name)
        return record.start if record else None

    def happened_before(self, first: str, second: str) -> bool:
        """Did ``first`` finish before ``second`` started?  False unless
        both executed."""
        a = self.records.get(first)
        b = self.records.get(second)
        if a is None or b is None or not a.executed or not b.executed:
            return False
        return a.finish <= b.start

    def makespan(self) -> float:
        finishes = [r.finish for r in self.records.values() if r.finish is not None]
        return max(finishes) if finishes else 0.0
