"""The constraint-monitoring scheduling engine.

Executes a process straight from its synchronization constraint set: an
activity starts as soon as every incoming happen-before is satisfied (its
source finished — or was skipped, which satisfies obligations vacuously:
dead-path elimination).  Guard activities resolve an outcome; activities
whose execution guard came out the other way are skipped transitively.

The engine is a discrete-event simulator: activities take
``activity.duration`` time units, remote services deliver callbacks after
their latency (see :mod:`repro.scheduler.services`), and unlimited
parallelism is assumed (the paper's concern is ordering, not resources).

Dynamic-only constraints are enforced here exactly as Section 4.2
prescribes: ``Exclusive`` relations serialize the run intervals of their
activities, and fine-grained state-level HappenBefore constraints (e.g.
``S(collectSurvey) -> F(closeOrder)``) gate individual state transitions.

``constraint_checks`` counts every evaluation of a pending constraint — the
"maintenance and computation cost" that motivates minimization.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.dscl.ast import Exclusive, HappenBefore
from repro.errors import DeadlockError, SchedulingError
from repro.model.activity import ActivityKind, ActivityState
from repro.model.process import BusinessProcess
from repro.scheduler.events import ActivityRecord, ExecutionTrace
from repro.scheduler.services import ServiceSimulator

OutcomePolicy = Union[Mapping[str, str], Callable[[str], str], None]


class _Status(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    SKIPPED = "skipped"


@dataclass
class ExecutionResult:
    """Everything observed during one run."""

    trace: ExecutionTrace
    makespan: float
    constraint_checks: int
    outcomes: Dict[str, str]
    violations: List[str] = field(default_factory=list)
    deadlocked: bool = False
    pending_at_deadlock: Tuple[str, ...] = ()

    def executed_names(self) -> List[str]:
        return [record.name for record in self.trace.executed()]


class ConstraintScheduler:
    """Schedules one process from one constraint set.

    Parameters
    ----------
    process:
        Supplies activity durations, kinds, service bindings and services.
    sc:
        The activity synchronization constraint set driving scheduling
        (must contain no external nodes).
    fine_grained:
        State-level HappenBefore constraints enforced dynamically.
    exclusives:
        ``Exclusive`` relations enforced dynamically (run intervals of the
        two activities never overlap).
    strict_services:
        Propagate :class:`~repro.errors.ProtocolViolation` immediately
        (default); when false, violations are recorded in the result.
    max_workers:
        Optional cap on simultaneously running activities (the paper
        assumes unlimited parallelism; a cap models engine thread pools).
    """

    def __init__(
        self,
        process: BusinessProcess,
        sc: SynchronizationConstraintSet,
        fine_grained: Iterable[HappenBefore] = (),
        exclusives: Iterable[Exclusive] = (),
        strict_services: bool = True,
        max_workers: Optional[int] = None,
        obs=None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise SchedulingError("max_workers must be at least 1")
        self._max_workers = max_workers
        self._obs = obs
        if not sc.is_activity_set:
            raise SchedulingError(
                "scheduler requires an activity constraint set; run service "
                "dependency translation first"
            )
        self._process = process
        self._sc = sc
        self._fine_grained = list(fine_grained)
        self._exclusives = list(exclusives)
        self._strict_services = strict_services

        self._incoming: Dict[str, List[Constraint]] = {
            name: [] for name in sc.activities
        }
        for constraint in sc:
            self._incoming[constraint.target].append(constraint)

        for name in sc.activities:
            if not process.has_activity(name) and not name.startswith("__"):
                raise SchedulingError(
                    "constraint set mentions activity %r unknown to process %r"
                    % (name, process.name)
                )

    # -- public API -----------------------------------------------------------

    def run(
        self,
        outcomes: OutcomePolicy = None,
        raise_on_deadlock: bool = True,
    ) -> ExecutionResult:
        """Execute once and return the :class:`ExecutionResult`.

        ``outcomes`` decides guard results: a mapping ``guard -> outcome``,
        a callable, or ``None`` (every guard takes its lexicographically
        last outcome, which is ``T`` for boolean guards).
        """
        state = _RunState(self, outcomes)
        obs = self._obs
        if obs is None:
            return state.execute(raise_on_deadlock)
        with obs.tracer.span(
            "scheduler.run", process=self._process.name, constraints=len(self._sc)
        ):
            result = state.execute(raise_on_deadlock)
        registry = obs.metrics
        registry.counter(
            "repro_scheduler_runs_total", "Single-case scheduler executions."
        ).inc()
        registry.counter(
            "repro_scheduler_checks_total",
            "Constraint evaluations during scheduling.",
        ).inc(result.constraint_checks)
        registry.histogram(
            "repro_scheduler_makespan_virtual",
            "Virtual makespan of scheduler runs.",
            buckets=(1, 2, 5, 10, 20, 50, 100, 200),
        ).observe(result.makespan)
        return result

    # -- helpers used by _RunState ------------------------------------------------

    def _duration(self, name: str) -> float:
        if self._process.has_activity(name):
            return self._process.activity(name).duration
        return 0.0  # synthetic coordinators take no time

    def _outcome_domain(self, name: str) -> List[str]:
        return sorted(self._sc.domains.domain(name))


class _RunState:
    """Mutable state of a single run (kept out of the scheduler object so a
    scheduler can be reused across runs/outcome combinations)."""

    def __init__(self, scheduler: ConstraintScheduler, outcomes: OutcomePolicy) -> None:
        self._s = scheduler
        self._outcome_policy = outcomes
        self._status: Dict[str, _Status] = {
            name: _Status.PENDING for name in scheduler._sc.activities
        }
        self._start_time: Dict[str, float] = {}
        self._finish_time: Dict[str, float] = {}
        self._skip_time: Dict[str, float] = {}
        self._outcomes: Dict[str, str] = {}
        self._trace = ExecutionTrace()
        self._checks = 0
        self._queue: List[Tuple[float, int, str, str]] = []
        self._sequence = itertools.count()
        self._services = ServiceSimulator(
            scheduler._process, strict=scheduler._strict_services
        )
        #: finishes held back by fine-grained constraints: activity -> time
        self._held_finishes: Dict[str, float] = {}

    # -- outcome policy ------------------------------------------------------

    def _resolve_outcome(self, guard: str) -> str:
        domain = self._s._outcome_domain(guard)
        policy = self._outcome_policy
        if policy is None:
            value = "T" if "T" in domain else domain[-1]
        elif callable(policy):
            value = policy(guard)
        else:
            value = policy.get(guard, "T" if "T" in domain else domain[-1])
        if value not in domain:
            raise SchedulingError(
                "outcome %r not in domain %s of guard %r" % (value, domain, guard)
            )
        return value

    # -- fate & readiness -----------------------------------------------------

    def _fate(self, name: str) -> Optional[bool]:
        """True = will run, False = must skip, None = undecided."""
        for condition in self._s._sc.guard_of(name):
            guard_status = self._status.get(condition.guard)
            if guard_status is _Status.SKIPPED:
                return False
            if guard_status is _Status.DONE:
                if self._outcomes.get(condition.guard) != condition.value:
                    return False
            else:
                return None
        return True

    def _constraints_satisfied(self, name: str) -> bool:
        for constraint in self._s._incoming[name]:
            self._checks += 1
            source_status = self._status[constraint.source]
            if source_status not in (_Status.DONE, _Status.SKIPPED):
                return False
        return True

    def _message_ready(self, name: str, now: float) -> bool:
        if not self._s._process.has_activity(name):
            return True
        activity = self._s._process.activity(name)
        if activity.kind is not ActivityKind.RECEIVE or activity.port is None:
            return True
        return self._services.message_available(activity.port.service, now)

    def _workers_exhausted(self) -> bool:
        limit = self._s._max_workers
        if limit is None:
            return False
        running = sum(
            1 for status in self._status.values() if status is _Status.RUNNING
        )
        return running >= limit

    def _exclusive_blocked(self, name: str) -> bool:
        for exclusive in self._s._exclusives:
            left, right = exclusive.left.activity, exclusive.right.activity
            if name == left and self._status.get(right) is _Status.RUNNING:
                return True
            if name == right and self._status.get(left) is _Status.RUNNING:
                return True
        return False

    def _fine_grained_start_blocked(self, name: str) -> bool:
        for hb in self._s._fine_grained:
            if hb.right.activity != name:
                continue
            if hb.right.state is ActivityState.FINISH:
                continue  # gates the finish, not the start
            if self._vacuous(hb):
                continue
            if hb.left.activity not in self._start_time and hb.left.state in (
                ActivityState.START,
                ActivityState.RUN,
            ):
                return True
            if (
                hb.left.state is ActivityState.FINISH
                and hb.left.activity not in self._finish_time
            ):
                return True
        return False

    def _fine_grained_finish_blocked(self, name: str) -> bool:
        for hb in self._s._fine_grained:
            if hb.right.activity != name or hb.right.state is not ActivityState.FINISH:
                continue
            if self._vacuous(hb):
                continue
            left = hb.left.activity
            if hb.left.state is ActivityState.FINISH:
                if left not in self._finish_time:
                    return True
            elif left not in self._start_time:
                return True
        return False

    def _vacuous(self, hb: HappenBefore) -> bool:
        """A fine-grained constraint is vacuous if its left activity was
        skipped (dead-path elimination)."""
        return self._status.get(hb.left.activity) is _Status.SKIPPED

    # -- event machinery --------------------------------------------------------

    def _push(self, time: float, kind: str, payload: str) -> None:
        heapq.heappush(self._queue, (time, next(self._sequence), kind, payload))

    def _start(self, name: str, now: float) -> None:
        self._status[name] = _Status.RUNNING
        self._start_time[name] = now
        self._trace.note(now, "start %s" % name)
        finish_at = now + self._s._duration(name)
        self._push(finish_at, "finish", name)

    def _finish(self, name: str, now: float) -> None:
        self._status[name] = _Status.DONE
        self._finish_time[name] = now
        outcome: Optional[str] = None
        if self._is_guard(name):
            outcome = self._resolve_outcome(name)
            self._outcomes[name] = outcome
        self._trace.note(now, "finish %s%s" % (name, " -> %s" % outcome if outcome else ""))
        self._trace.record(
            ActivityRecord(
                name=name,
                start=self._start_time[name],
                finish=now,
                outcome=outcome,
            )
        )
        self._register_invocation(name, now)
        self._release_held_finishes(now)

    def _skip(self, name: str, now: float) -> None:
        self._status[name] = _Status.SKIPPED
        self._skip_time[name] = now
        self._trace.note(now, "skip %s" % name)
        self._trace.record(ActivityRecord(name=name, skipped_at=now))
        self._release_held_finishes(now)

    def _register_invocation(self, name: str, now: float) -> None:
        if not self._s._process.has_activity(name):
            return
        activity = self._s._process.activity(name)
        if activity.kind is not ActivityKind.INVOKE or activity.port is None:
            return
        callback = self._services.invoke(
            activity.port.service, activity.port.port, now
        )
        if callback is not None:
            self._push(callback, "callback", activity.port.service)

    def _release_held_finishes(self, now: float) -> None:
        for name in list(self._held_finishes):
            if not self._fine_grained_finish_blocked(name):
                del self._held_finishes[name]
                self._finish(name, now)

    def _is_guard(self, name: str) -> bool:
        if self._s._process.has_activity(name):
            return self._s._process.activity(name).is_guard
        return False

    # -- the main loop --------------------------------------------------------------

    def _evaluate(self, now: float) -> None:
        """Start or skip every pending activity that can move; repeats to a
        fixpoint because skips cascade instantly."""
        moved = True
        while moved:
            moved = False
            for name in self._s._sc.activities:
                if self._status[name] is not _Status.PENDING:
                    continue
                fate = self._fate(name)
                if fate is False:
                    self._skip(name, now)
                    moved = True
                    continue
                if fate is None:
                    continue
                if not self._constraints_satisfied(name):
                    continue
                if not self._message_ready(name, now):
                    continue
                if self._exclusive_blocked(name):
                    continue
                if self._fine_grained_start_blocked(name):
                    continue
                if self._workers_exhausted():
                    continue
                self._start(name, now)
                moved = True

    def execute(self, raise_on_deadlock: bool) -> ExecutionResult:
        now = 0.0
        self._evaluate(now)
        while self._queue:
            time, _seq, kind, payload = heapq.heappop(self._queue)
            now = time
            if kind == "finish":
                if self._fine_grained_finish_blocked(payload):
                    self._held_finishes[payload] = time
                else:
                    self._finish(payload, now)
            elif kind == "callback":
                self._trace.note(now, "callback %s" % payload)
            self._evaluate(now)

        pending = tuple(
            sorted(
                name
                for name, status in self._status.items()
                if status in (_Status.PENDING, _Status.RUNNING)
            )
        )
        deadlocked = bool(pending) or bool(self._held_finishes)
        if deadlocked and raise_on_deadlock:
            raise DeadlockError(
                "execution stalled; unfinished activities: %s"
                % ", ".join(pending or self._held_finishes)
            )
        return ExecutionResult(
            trace=self._trace,
            makespan=self._trace.makespan(),
            constraint_checks=self._checks,
            outcomes=dict(self._outcomes),
            violations=self._services.violations(),
            deadlocked=deadlocked,
            pending_at_deadlock=pending,
        )
