"""Metrics over execution traces: concurrency profiles and comparisons.

Also the *dynamic race oracle* (:func:`conflicting_overlaps`): the
runtime counterpart of the static SYNC001/SYNC002 lint rules, used by the
test suite to confirm that schedules over race-free constraint sets never
overlap conflicting variable accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.model.process import BusinessProcess
from repro.scheduler.events import ExecutionTrace


def concurrency_profile(trace: ExecutionTrace) -> List[Tuple[float, int]]:
    """Step function ``(time, running activities)`` over the run.

    Returns change points only, sorted by time; the count at each point is
    the number of activities running immediately after it.
    """
    deltas: Dict[float, int] = {}
    for record in trace.records.values():
        if record.start is None or record.finish is None:
            continue
        deltas[record.start] = deltas.get(record.start, 0) + 1
        deltas[record.finish] = deltas.get(record.finish, 0) - 1
    profile: List[Tuple[float, int]] = []
    running = 0
    for time in sorted(deltas):
        running += deltas[time]
        profile.append((time, running))
    return profile


def max_concurrency(trace: ExecutionTrace) -> int:
    """Peak number of simultaneously running activities."""
    profile = concurrency_profile(trace)
    return max((count for _time, count in profile), default=0)


def average_concurrency(trace: ExecutionTrace) -> float:
    """Time-averaged number of running activities over the makespan."""
    profile = concurrency_profile(trace)
    if not profile:
        return 0.0
    makespan = trace.makespan()
    if makespan <= 0:
        return 0.0
    area = 0.0
    for (time, count), (next_time, _next_count) in zip(profile, profile[1:]):
        area += count * (next_time - time)
    return area / makespan


@dataclass(frozen=True)
class Overlap:
    """Two overlapping executions with conflicting accesses to a variable."""

    variable: str
    first: str
    second: str
    kind: str  # "write/write" or "read/write"

    def __str__(self) -> str:
        return "%s overlap on %r between %r and %r" % (
            self.kind,
            self.variable,
            self.first,
            self.second,
        )


def conflicting_overlaps(
    trace: ExecutionTrace, process: BusinessProcess
) -> List[Overlap]:
    """Conflicting accesses whose executions overlapped in ``trace``.

    Two executed activities overlap when their ``[start, finish)`` windows
    intersect; the pair conflicts when both touch the same variable and at
    least one writes it.  A race-free constraint set must yield no
    overlaps in any schedule — the dynamic check the static race detector
    (:mod:`repro.lint.races`) promises to make unnecessary.
    """
    accesses: Dict[str, Tuple[frozenset, frozenset]] = {}
    for activity in process.activities:
        accesses[activity.name] = (
            frozenset(activity.reads),
            frozenset(activity.writes),
        )

    executed = [
        record
        for record in trace.records.values()
        if record.start is not None and record.finish is not None
    ]
    executed.sort(key=lambda record: (record.start, record.name))

    overlaps: List[Overlap] = []
    for i, first in enumerate(executed):
        first_reads, first_writes = accesses.get(first.name, (frozenset(), frozenset()))
        for second in executed[i + 1 :]:
            if second.start >= first.finish:
                break  # sorted by start: nothing later can overlap `first`
            second_reads, second_writes = accesses.get(
                second.name, (frozenset(), frozenset())
            )
            write_write = first_writes & second_writes
            read_write = (first_reads & second_writes) | (
                first_writes & second_reads
            )
            names = tuple(sorted((first.name, second.name)))
            for variable in sorted(write_write):
                overlaps.append(Overlap(variable, names[0], names[1], "write/write"))
            for variable in sorted(read_write - write_write):
                overlaps.append(Overlap(variable, names[0], names[1], "read/write"))
    return overlaps


def serialization_overhead(baseline_makespan: float, optimized_makespan: float) -> float:
    """How much longer the baseline takes, as a ratio (1.0 = no overhead)."""
    if optimized_makespan <= 0:
        return 1.0
    return baseline_makespan / optimized_makespan
