"""Metrics over execution traces: concurrency profiles and comparisons."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.scheduler.events import ExecutionTrace


def concurrency_profile(trace: ExecutionTrace) -> List[Tuple[float, int]]:
    """Step function ``(time, running activities)`` over the run.

    Returns change points only, sorted by time; the count at each point is
    the number of activities running immediately after it.
    """
    deltas: Dict[float, int] = {}
    for record in trace.records.values():
        if record.start is None or record.finish is None:
            continue
        deltas[record.start] = deltas.get(record.start, 0) + 1
        deltas[record.finish] = deltas.get(record.finish, 0) - 1
    profile: List[Tuple[float, int]] = []
    running = 0
    for time in sorted(deltas):
        running += deltas[time]
        profile.append((time, running))
    return profile


def max_concurrency(trace: ExecutionTrace) -> int:
    """Peak number of simultaneously running activities."""
    profile = concurrency_profile(trace)
    return max((count for _time, count in profile), default=0)


def average_concurrency(trace: ExecutionTrace) -> float:
    """Time-averaged number of running activities over the makespan."""
    profile = concurrency_profile(trace)
    if not profile:
        return 0.0
    makespan = trace.makespan()
    if makespan <= 0:
        return 0.0
    area = 0.0
    for (time, count), (next_time, _next_count) in zip(profile, profile[1:]):
        area += count * (next_time - time)
    return area / makespan


def serialization_overhead(baseline_makespan: float, optimized_makespan: float) -> float:
    """How much longer the baseline takes, as a ratio (1.0 = no overhead)."""
    if optimized_makespan <= 0:
        return 1.0
    return baseline_makespan / optimized_makespan
