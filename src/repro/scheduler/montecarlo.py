"""Monte-Carlo execution studies: makespan distributions under randomized
durations and latencies.

The deterministic simulator answers "what is the schedule?"; this module
answers "how do two synchronization schemes compare when activity durations
and service latencies are noisy?" — the regime in which over-serialization
actually costs money.  Durations are drawn per run from a log-uniform
jitter around each activity's nominal duration; both schemes are evaluated
on the *same* draws (common random numbers), so the comparison is paired.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.constraints import SynchronizationConstraintSet
from repro.model.activity import Activity
from repro.model.process import BusinessProcess
from repro.scheduler.engine import ConstraintScheduler, OutcomePolicy


def quantile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` with linear interpolation.

    Uses the standard ``(n - 1) * q`` rank convention, so ``q=0.5``
    agrees with :func:`statistics.median` for both odd and even sample
    counts (the upper-median shortcut ``ordered[n // 2]`` is biased high
    on even counts).
    """
    if not samples:
        raise ValueError("quantile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1], got %r" % q)
    ordered = sorted(samples)
    n = len(ordered)
    rank = (n - 1) * q
    low = math.floor(rank)
    high = min(low + 1, n - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


@dataclass(frozen=True)
class MakespanSummary:
    """Summary statistics of one scheme's makespan distribution."""

    runs: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "MakespanSummary":
        ordered = sorted(samples)
        n = len(ordered)
        return cls(
            runs=n,
            mean=statistics.fmean(ordered),
            stdev=statistics.pstdev(ordered) if n > 1 else 0.0,
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=quantile(ordered, 0.5),
            p95=quantile(ordered, 0.95),
        )


def _jittered_process(
    process: BusinessProcess, rng: random.Random, jitter: float
) -> BusinessProcess:
    """A copy of ``process`` with durations scaled by log-uniform noise in
    ``[1/(1+jitter), 1+jitter]``."""
    clone = BusinessProcess(process.name)
    for service in process.services:
        clone.add_service(service)
    for activity in process.activities:
        factor = math.exp(rng.uniform(-math.log1p(jitter), math.log1p(jitter)))
        clone.add_activity(
            Activity(
                name=activity.name,
                kind=activity.kind,
                reads=activity.reads,
                writes=activity.writes,
                port=activity.port,
                outcomes=activity.outcomes if activity.is_guard else frozenset(),
                duration=activity.duration * factor,
            )
        )
    for branch in process.branches:
        clone.add_branch(branch)
    return clone


def compare_schemes(
    process: BusinessProcess,
    schemes: Dict[str, SynchronizationConstraintSet],
    runs: int = 200,
    jitter: float = 0.5,
    outcomes: OutcomePolicy = None,
    seed: int = 0,
) -> Dict[str, MakespanSummary]:
    """Paired Monte-Carlo comparison of several synchronization schemes.

    Every scheme executes the same ``runs`` jittered copies of the process
    (common random numbers), so differences in the summaries are due to the
    schemes alone.
    """
    rng = random.Random(seed)
    samples: Dict[str, List[float]] = {name: [] for name in schemes}
    for _run in range(runs):
        jittered = _jittered_process(process, rng, jitter)
        for name, scheme in schemes.items():
            result = ConstraintScheduler(jittered, scheme).run(outcomes=outcomes)
            samples[name].append(result.makespan)
    return {name: MakespanSummary.of(values) for name, values in samples.items()}
