"""The sequencing-construct execution baseline.

Runs the *same* discrete-event engine on the constraint set rewritten from
a construct tree (:func:`repro.constructs.rewrite.constructs_to_constraints`),
so any makespan difference against the dependency-minimal schedule is pure
over-serialization introduced by the imperative encoding — the quantity the
concurrency benchmark (S2) measures.
"""

from __future__ import annotations


from repro.constructs.ast import Construct
from repro.constructs.rewrite import constructs_to_constraints
from repro.model.process import BusinessProcess
from repro.scheduler.engine import ConstraintScheduler, ExecutionResult, OutcomePolicy


def execute_constructs(
    process: BusinessProcess,
    construct: Construct,
    outcomes: OutcomePolicy = None,
    strict_services: bool = True,
) -> ExecutionResult:
    """Execute an imperative (construct-tree) implementation of ``process``."""
    sc = constructs_to_constraints(process, construct)
    scheduler = ConstraintScheduler(process, sc, strict_services=strict_services)
    return scheduler.run(outcomes=outcomes)
