"""Dataflow scheduling engine and discrete-event simulator.

The engine executes a process directly from its synchronization constraint
set — the "dependency-equal-to-scheduling" style of the paper — with:

* dead-path elimination (activities whose guard resolved the other way are
  skipped and their obligations vacuously satisfied);
* simulated remote services with latencies, including *state-aware*
  services that raise :class:`~repro.errors.ProtocolViolation` when their
  ports are invoked out of order (the runtime symptom of a dropped service
  dependency);
* dynamic enforcement of ``Exclusive`` relations and fine-grained
  (state-level) DSCL constraints, which static optimization leaves alone;
* metrics: makespan, concurrency profile and constraint-monitoring cost —
  the quantities behind the paper's claim that the minimal set yields
  "high concurrency and minimal maintenance cost".

The sequencing-construct baseline (:mod:`repro.scheduler.baseline`) runs
the *same* engine on the constraint set rewritten from a construct tree,
so makespan differences measure over-serialization alone.
"""

from repro.scheduler.events import ActivityRecord, ExecutionTrace
from repro.scheduler.engine import ConstraintScheduler, ExecutionResult
from repro.scheduler.services import ServiceSimulator
from repro.scheduler.metrics import concurrency_profile, max_concurrency
from repro.scheduler.baseline import execute_constructs

__all__ = [
    "ActivityRecord",
    "ConstraintScheduler",
    "ExecutionResult",
    "ExecutionTrace",
    "ServiceSimulator",
    "concurrency_profile",
    "execute_constructs",
    "max_concurrency",
]
